//! Tamper evidence under a malicious storage provider (§II-D, Fig. 6).
//!
//! Threat model: the storage is malicious; the client only remembers the
//! branch-head uids it committed. This example lets the "provider" mount
//! three attacks — bit-rot, content substitution, and history rewriting —
//! and shows each one being detected by re-validation.
//!
//! ```text
//! cargo run --example tamper_detection
//! ```

use bytes::Bytes;
use forkbase::{DbError, ForkBase, PutOptions};
use forkbase_store::{FaultMode, FaultyStore, MemStore};
use forkbase_types::Value;

fn main() {
    // The client talks to storage it does not trust.
    let provider = FaultyStore::new(MemStore::new());
    let db = ForkBase::new(provider);

    // Commit a contract and remember ONLY its uid (that is the client's
    // entire trust anchor).
    let rows: Vec<(Bytes, Bytes)> = (0..500)
        .map(|i| {
            (
                Bytes::from(format!("clause-{i:04}")),
                Bytes::from(format!("the party of the {i}th part shall …")),
            )
        })
        .collect();
    let map = db.new_map(rows).unwrap();
    db.put("contract", map, &PutOptions::default().author("alice"))
        .unwrap();
    db.put(
        "contract",
        Value::string("amendment: clause-0042 voided"),
        &PutOptions::default().author("alice").message("amendment 1"),
    )
    .unwrap();
    let trusted_head = db.head("contract", "master").unwrap();
    println!("client's trust anchor (head uid): {trusted_head}");

    // Baseline: honest storage validates.
    db.verify_branch("contract", "master").unwrap();
    println!("honest provider: verification passes\n");

    // Attack 1: silent bit-rot in a value chunk.
    let mut victims = Vec::new();
    db.store().inner().for_each_chunk(|h, _| victims.push(*h));
    let value_chunk = victims
        .iter()
        .find(|h| **h != trusted_head)
        .copied()
        .unwrap();
    db.store()
        .inject(value_chunk, FaultMode::FlipBit { byte: 7 });
    match db.verify_branch("contract", "master") {
        Err(e) => println!("attack 1 (bit flip in value chunk) DETECTED: {e}"),
        Ok(_) => unreachable!("tampering must not pass"),
    }
    db.store().heal_all();

    // Attack 2: substitute a well-formed but different head FNode (history
    // rewriting — e.g. hiding the amendment).
    let forged = forkbase::FNode {
        key: "contract".into(),
        value: Value::string("amendment: (nothing to see here)"),
        bases: vec![],
        author: "alice".into(),
        message: "amendment 1".into(),
        logical_time: 2,
    };
    db.store().inject(
        trusted_head,
        FaultMode::Substitute(Bytes::from(forged.encode())),
    );
    match db.get("contract", "master") {
        Err(DbError::TamperDetected(msg)) => {
            println!("attack 2 (history rewrite) DETECTED: {msg}")
        }
        other => unreachable!("expected tamper detection, got {other:?}"),
    }
    db.store().heal_all();

    // Attack 3: drop an old version to destroy provenance.
    let parent = db.meta(&trusted_head).unwrap().bases[0];
    db.store().inject(parent, FaultMode::Drop);
    match db.verify_branch("contract", "master") {
        Err(e) => println!("attack 3 (erase history) DETECTED: {e}"),
        Ok(_) => unreachable!(),
    }
    db.store().heal_all();

    println!("\nall three attacks detected from a single remembered uid.");
    println!("(the uid covers value AND derivation history — §II-D)");
}
