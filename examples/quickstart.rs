//! Quickstart: the Git-for-data workflow in eight steps.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use forkbase::{ForkBase, PutOptions, VersionSpec};
use forkbase_postree::MergePolicy;
use forkbase_store::MemStore;
use forkbase_types::Value;

fn main() {
    // 1. Open a database over an in-memory chunk store (use FileStore for
    //    durability; the API is identical).
    let db = ForkBase::new(MemStore::new());

    // 2. Put a value: this creates the "master" branch and returns a
    //    tamper-evident version uid (Base32, RFC 4648).
    let v1 = db
        .put(
            "greeting",
            Value::string("hello world"),
            &PutOptions::default()
                .author("alice")
                .message("first commit"),
        )
        .unwrap();
    println!("committed v1: {}", v1.uid);

    // 3. Every Put appends to history; old versions stay readable forever.
    let v2 = db
        .put(
            "greeting",
            Value::string("hello forkbase"),
            &PutOptions::default().author("alice").message("refine"),
        )
        .unwrap();
    println!("committed v2: {}", v2.uid);
    let old = db.get_version(&v1.uid).unwrap();
    println!("v1 still reads: {:?}", old.value.as_str().unwrap());

    // 4. Branch — O(1), no data copied.
    db.branch("greeting", "master", "experiment").unwrap();
    db.put(
        "greeting",
        Value::string("bonjour forkbase"),
        &PutOptions::on_branch("experiment").author("bob"),
    )
    .unwrap();

    // 5. Branches are isolated…
    println!(
        "master:     {:?}",
        db.get("greeting", "master")
            .unwrap()
            .value
            .as_str()
            .unwrap()
    );
    println!(
        "experiment: {:?}",
        db.get("greeting", "experiment")
            .unwrap()
            .value
            .as_str()
            .unwrap()
    );

    // 6. …and diffable.
    let diff = db
        .diff(
            "greeting",
            &VersionSpec::branch("master"),
            &VersionSpec::branch("experiment"),
        )
        .unwrap();
    println!("diff master..experiment: {diff:?}");

    // 7. Merge with a policy (string values conflict, so pick theirs).
    let merged = db
        .merge(
            "greeting",
            "master",
            "experiment",
            MergePolicy::Theirs,
            &PutOptions::default()
                .author("alice")
                .message("adopt experiment"),
        )
        .unwrap();
    println!("merged -> {}", merged.uid);

    // 8. The whole history is tamper evident: re-validate every version
    //    and every hash link from the head.
    let checked = db.verify_branch("greeting", "master").unwrap();
    println!("verified {checked} versions — history is intact");

    println!("\nfull history of greeting@master:");
    for h in db
        .history("greeting", &VersionSpec::default()) // default = master head
        .unwrap()
    {
        println!("  {}  {} — {}", h.uid, h.author, h.message);
    }

    // 9. Snapshots pin a version: reads against one are immune to
    //    concurrent commits and skip the head lookup on every call.
    let snap = db.snapshot("greeting", &VersionSpec::default()).unwrap();
    db.put(
        "greeting",
        Value::string("moved on"),
        &PutOptions::default().author("alice"),
    )
    .unwrap();
    println!(
        "\nsnapshot still reads {:?} after a later commit",
        snap.value().as_str().unwrap()
    );

    // 10. Write batches commit across keys atomically: both heads swing
    //     together, or neither does.
    let mut batch = db.write_batch();
    batch
        .put(
            "account/alice",
            Value::Int(90),
            &PutOptions::default().author("bank").message("transfer"),
        )
        .put(
            "account/bob",
            Value::Int(110),
            &PutOptions::default().author("bank").message("transfer"),
        );
    let outcomes = batch.commit().unwrap();
    println!(
        "atomic transfer committed {} heads together",
        outcomes.len()
    );
}
