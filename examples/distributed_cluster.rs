//! Multi-servelet deployment: keys partitioned across worker "nodes" by
//! consistent hashing, mirroring the paper's distributed architecture.
//!
//! ```text
//! cargo run --example distributed_cluster
//! ```

use forkbase::cluster::Cluster;
use forkbase::PutOptions;
use forkbase_postree::TreeConfig;

fn main() {
    // Four in-process servelets; requests travel over channels (the
    // simulated network) to whichever node owns each key.
    let cluster = Cluster::new(4, TreeConfig::default_config());

    // Load 40 datasets; placement is automatic.
    for i in 0..40 {
        cluster
            .put_string(
                &format!("dataset-{i:02}"),
                format!("contents of dataset {i}"),
                PutOptions::default().author("loader"),
            )
            .unwrap();
    }
    println!("keys per servelet: {:?}", cluster.key_distribution());

    // Reads route the same way.
    let got = cluster.get("dataset-07", "master").unwrap();
    println!(
        "dataset-07 (served by node {}): {:?}",
        cluster.route("dataset-07"),
        got.value.as_str().unwrap()
    );

    // All versions of a key live on one servelet, so branch/diff/merge
    // never cross nodes — run a full branching workflow "remotely".
    let merged_value = cluster
        .with_key("dataset-07", |db| -> Result<_, forkbase::DbError> {
            db.branch("dataset-07", "master", "edit")?;
            db.put(
                "dataset-07",
                forkbase_types::Value::string("edited contents"),
                &PutOptions::on_branch("edit").author("editor"),
            )?;
            db.merge(
                "dataset-07",
                "master",
                "edit",
                forkbase_postree::MergePolicy::Theirs,
                &PutOptions::default().author("editor"),
            )?;
            Ok(db.get("dataset-07", "master")?.value)
        })
        .unwrap()
        .unwrap();
    println!("after remote merge: {:?}", merged_value.as_str().unwrap());

    // Elastic rebalance: a fifth servelet joins and exactly the keys it
    // now owns migrate to it — full history, byte-identical chunk
    // addresses, hash-verified on arrival.
    let owner_before = cluster.owner_id("dataset-07");
    let new_id = cluster
        .add_servelet(forkbase_store::MemStore::new())
        .unwrap();
    println!(
        "servelet {new_id} joined; keys per servelet now {:?}",
        cluster.key_distribution().unwrap()
    );
    let merged_survives = cluster.get("dataset-07", "master").unwrap();
    println!(
        "dataset-07 owner {} -> {}; merged value still {:?}",
        owner_before,
        cluster.owner_id("dataset-07"),
        merged_survives.value.as_str().unwrap()
    );

    // And it can leave again; its keys rehome to the survivors.
    cluster.remove_servelet(new_id).unwrap();
    assert_eq!(cluster.list_keys().unwrap().len(), 40);
    println!(
        "servelet {new_id} drained and left; {} keys intact",
        cluster.list_keys().unwrap().len()
    );

    println!(
        "cluster-wide storage: {} bytes across {} servelets",
        cluster.total_stored_bytes().unwrap(),
        cluster.len()
    );
}
