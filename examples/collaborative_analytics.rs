//! Collaborative analytics: the paper's motivating scenario (§I, Fig. 1).
//!
//! A shared product dataset is loaded once; two teams fork it, run
//! independent data engineering, inspect each other's changes with
//! multi-scope diffs (Fig. 5), and merge back — all with branch-scoped
//! access control and zero data copying.
//!
//! ```text
//! cargo run --example collaborative_analytics
//! ```

use forkbase::{AccessController, ForkBase, Permission, PutOptions, Role, VersionSpec};
use forkbase_postree::MergePolicy;
use forkbase_store::{ChunkStore, MemStore};
use forkbase_table::TableStore;

fn main() {
    let db = ForkBase::new(MemStore::new());
    let tables = TableStore::new(&db);

    // Access control: one admin, two analysts confined to their branches.
    let acl = AccessController::new();
    acl.add_user("admin", Role::Admin);
    acl.add_user("ana", Role::Member);
    acl.add_user("ben", Role::Member);
    acl.grant("admin", "ana", "products", "team-a", Permission::Write)
        .unwrap();
    acl.grant("admin", "ben", "products", "team-b", Permission::Write)
        .unwrap();
    acl.grant("admin", "ana", "products", "master", Permission::Read)
        .unwrap();
    acl.grant("admin", "ben", "products", "master", Permission::Read)
        .unwrap();

    // The admin loads the shared dataset.
    let mut csv = String::from("sku,name,price,stock\n");
    for i in 0..2000 {
        csv.push_str(&format!(
            "sku-{i:05},widget-{i},{}.99,{}\n",
            i % 90 + 9,
            i % 50
        ));
    }
    acl.check("admin", "products", "master", Permission::Write)
        .unwrap();
    tables
        .load_csv(
            "products",
            &csv,
            0,
            &PutOptions::default()
                .author("admin")
                .message("initial load"),
        )
        .unwrap();
    let base_bytes = db.store().stored_bytes();
    println!("loaded 2000-row dataset ({base_bytes} bytes stored)");

    // Each team forks. Branching copies nothing.
    db.branch("products", "master", "team-a").unwrap();
    db.branch("products", "master", "team-b").unwrap();
    println!(
        "two forks cost {} extra bytes",
        db.store().stored_bytes() - base_bytes
    );

    // Ana (team A) runs a price correction; the ACL confines her.
    acl.check("ana", "products", "team-a", Permission::Write)
        .unwrap();
    assert!(!acl.allows("ana", "products", "master", Permission::Write));
    for sku in ["sku-00010", "sku-00011", "sku-00012"] {
        tables
            .update_cell(
                "products",
                sku,
                "price",
                "24.99",
                &PutOptions::on_branch("team-a")
                    .author("ana")
                    .message("price fix"),
            )
            .unwrap();
    }

    // Ben (team B) restocks a disjoint set of rows.
    acl.check("ben", "products", "team-b", Permission::Write)
        .unwrap();
    for sku in ["sku-01900", "sku-01901"] {
        tables
            .update_cell(
                "products",
                sku,
                "stock",
                "500",
                &PutOptions::on_branch("team-b")
                    .author("ben")
                    .message("restock"),
            )
            .unwrap();
    }

    // The admin reviews each team's work with a multi-scope diff.
    for team in ["team-a", "team-b"] {
        let diff = tables
            .diff(
                "products",
                &VersionSpec::default(), // master head
                &VersionSpec::branch(team),
            )
            .unwrap();
        println!("\n--- review of {team} ---");
        print!("{}", diff.render());
    }

    // A dashboard scans one page of each team's fork through a pinned
    // snapshot: the cursor streams entries in O(chunk) memory, and a
    // concurrent merge cannot shift the page mid-scan.
    let snap = db
        .snapshot("products", &VersionSpec::branch("team-a"))
        .unwrap();
    let page: Vec<_> = snap
        .map_range(b"sku-00010".as_slice()..b"sku-00013".as_slice())
        .unwrap()
        .collect::<Result<_, _>>()
        .unwrap();
    println!(
        "\nteam-a rows sku-00010..sku-00013 ({} entries)",
        page.len()
    );

    // Merge both teams back; edits are disjoint so no conflicts.
    db.merge(
        "products",
        "master",
        "team-a",
        MergePolicy::Fail,
        &PutOptions::default().author("admin"),
    )
    .unwrap();
    db.merge(
        "products",
        "master",
        "team-b",
        MergePolicy::Fail,
        &PutOptions::default().author("admin"),
    )
    .unwrap();

    let merged_row = tables
        .row("products", &VersionSpec::branch("master"), "sku-00010")
        .unwrap()
        .unwrap();
    println!("\nafter merge, sku-00010 price = {}", merged_row[2]);

    // Full audit: every version on master re-validates from the head uid.
    let versions = db.verify_branch("products", "master").unwrap();
    println!("audit passed: {versions} versions verified");
    println!(
        "total storage after the whole workflow: {} bytes ({}x the raw CSV)",
        db.store().stored_bytes(),
        db.store().stored_bytes() / csv.len() as u64
    );
}
