//! Blockchain state storage — the original ForkBase application (the
//! PVLDB'18 engine paper targets "blockchain and forkable applications").
//!
//! Each block applies a batch of transfers to an account-balance map; the
//! POS-Tree root after each block is the *state root* recorded in the
//! block header. Light clients verify balances against roots; forks of
//! the chain share state pages; reorgs are just branch operations.
//!
//! ```text
//! cargo run --release --example blockchain_state
//! ```

use bytes::Bytes;
use forkbase::{ForkBase, PutOptions, VersionSpec};
use forkbase_postree::MapEdit;
use forkbase_store::{ChunkStore, MemStore};

fn balance_key(account: u32) -> Bytes {
    Bytes::from(format!("acct-{account:08}"))
}

fn balance_val(amount: u64) -> Bytes {
    Bytes::from(amount.to_string())
}

fn main() {
    let db = ForkBase::new(MemStore::new());

    // Genesis: 10,000 accounts with initial balances.
    let genesis: Vec<(Bytes, Bytes)> = (0..10_000)
        .map(|a| (balance_key(a), balance_val(1_000)))
        .collect();
    let state = db.new_map(genesis).unwrap();
    let genesis_commit = db
        .put(
            "state",
            state,
            &PutOptions::default().author("genesis").message("block 0"),
        )
        .unwrap();
    println!("block   0 state root: {}", genesis_commit.uid);

    // 50 blocks of 20 transfers each on the canonical chain.
    let mut rng = 0x1234_5678_u64;
    let mut rand = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for block in 1..=50u32 {
        let mut edits = Vec::new();
        for _ in 0..20 {
            let from = (rand() % 10_000) as u32;
            let to = (rand() % 10_000) as u32;
            let amount = rand() % 50;
            // Read-modify-write through the head state.
            let head = db.get("state", "master").unwrap();
            let from_bal: u64 = String::from_utf8_lossy(
                &db.map_get(&head.value, &balance_key(from))
                    .unwrap()
                    .unwrap(),
            )
            .parse()
            .unwrap();
            if from_bal < amount {
                continue;
            }
            let to_bal: u64 = String::from_utf8_lossy(
                &db.map_get(&head.value, &balance_key(to)).unwrap().unwrap(),
            )
            .parse()
            .unwrap();
            edits.push(MapEdit::put(
                balance_key(from),
                balance_val(from_bal - amount),
            ));
            edits.push(MapEdit::put(balance_key(to), balance_val(to_bal + amount)));
        }
        db.put_map_edits(
            "state",
            edits,
            &PutOptions::default()
                .author("validator-1")
                .message(format!("block {block}")),
        )
        .unwrap();
    }
    let canonical_head = db.head("state", "master").unwrap();
    println!("block  50 state root: {canonical_head}");
    println!(
        "51 full historical states stored in {} bytes total",
        db.store().stored_bytes()
    );

    // A competing fork from block 25: reorgs are branches.
    let history = db.history("state", &VersionSpec::branch("master")).unwrap();
    let block25 = &history[history.len() - 26];
    db.branch_from_version("state", &block25.uid, "fork-b")
        .unwrap();
    db.put_map_edits(
        "state",
        vec![MapEdit::put(balance_key(42), balance_val(999_999))],
        &PutOptions::on_branch("fork-b")
            .author("validator-2")
            .message("block 26'"),
    )
    .unwrap();
    println!(
        "fork-b head (alternate block 26'): {}",
        db.head("state", "fork-b").unwrap()
    );

    // Historical balance queries hit old roots directly — no replay.
    let old_state = db.get_version(&block25.uid).unwrap();
    let balance = db
        .map_get(&old_state.value, &balance_key(42))
        .unwrap()
        .unwrap();
    println!(
        "account 42 balance at block 25: {}",
        String::from_utf8_lossy(&balance)
    );

    // Light-client audit: verify the canonical chain of state roots.
    let checked = db.verify_branch("state", "master").unwrap();
    println!("audited {checked} block states — every root authentic");

    // The forked chain shares almost all state pages with the canonical
    // chain: measure what the fork actually cost.
    let stat = db.stat();
    println!(
        "final footprint: {} unique chunks, dedup ratio {:.1}x",
        stat.store.unique_chunks,
        stat.store.dedup_ratio()
    );
}
