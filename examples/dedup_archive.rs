//! Deduplicated archival (Fig. 4 at depth): keep every nightly revision
//! of a dataset forever and watch storage grow sublinearly.
//!
//! Simulates 60 "nightly" revisions of a 3000-row dataset, each touching
//! a handful of rows, and compares the ForkBase footprint against what
//! full copies would cost — then proves any historical night is still
//! retrievable and verifiable.
//!
//! ```text
//! cargo run --release --example dedup_archive
//! ```

use bytes::Bytes;
use forkbase::{ForkBase, PutOptions, VersionSpec};
use forkbase_postree::MapEdit;
use forkbase_store::{ChunkStore, MemStore};

fn main() {
    let db = ForkBase::new(MemStore::new());

    // Night 0: the initial dataset.
    let rows: Vec<(Bytes, Bytes)> = (0..3000)
        .map(|i| {
            (
                Bytes::from(format!("record-{i:06}")),
                Bytes::from(format!(
                    "measurement={} station={} flag=ok",
                    i * 37 % 997,
                    i % 40
                )),
            )
        })
        .collect();
    let map = db.new_map(rows.clone()).unwrap();
    db.put(
        "nightly",
        map,
        &PutOptions::default().author("pipeline").message("night 0"),
    )
    .unwrap();

    let mut logical = db.store().stored_bytes(); // one full copy
    let night0 = db.store().stored_bytes();
    println!("night  0: stored {night0} bytes (full dataset)");

    // Nights 1..59: small updates (5 rows drift per night).
    for night in 1..60u64 {
        let edits: Vec<MapEdit> = (0..5)
            .map(|j| {
                let idx = ((night * 53 + j * 601) % 3000) as usize;
                MapEdit::put(
                    rows[idx].0.clone(),
                    Bytes::from(format!(
                        "measurement={} updated=night{night}",
                        night * 31 + j
                    )),
                )
            })
            .collect();
        db.put_map_edits(
            "nightly",
            edits,
            &PutOptions::default()
                .author("pipeline")
                .message(format!("night {night}")),
        )
        .unwrap();
        logical += night0; // what a copy-per-night scheme would add
        if night % 15 == 0 || night == 59 {
            let stored = db.store().stored_bytes();
            println!(
                "night {night:>2}: stored {stored} bytes — {:.1}x smaller than {} full copies",
                logical as f64 / stored as f64,
                night + 1
            );
        }
    }

    // Any historical night is one lookup away (no delta replay):
    let history = db
        .history("nightly", &VersionSpec::branch("master"))
        .unwrap();
    println!("\nhistory holds {} versions", history.len());
    let night30 = &history[history.len() - 31]; // history is newest-first
    let snapshot = db.get_version(&night30.uid).unwrap();
    let entries = db.map_entries(&snapshot.value).unwrap();
    println!(
        "retrieved {} rows of {:?} in one O(log N) tree walk per row",
        entries.len(),
        night30.message
    );

    // And the whole 60-version chain still verifies from the head uid.
    let checked = db.verify_branch("nightly", "master").unwrap();
    println!("verified all {checked} versions — the archive is tamper-evident");
}
