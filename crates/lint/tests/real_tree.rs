//! The shipped tree itself must be lint-clean: this pins the acceptance
//! criterion that `cargo run -p forkbase-lint` exits zero on the repo,
//! and makes a seeded violation fail `cargo test` too.

use std::path::Path;

#[test]
fn shipped_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = forkbase_lint::run_all(&root, false);
    assert!(
        findings.is_empty(),
        "forkbase-lint findings on the shipped tree:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
