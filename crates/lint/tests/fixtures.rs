//! Per-pass fixture tests: build a minimal synthetic workspace in a
//! temp dir, bless its lockfiles, then seed one violation at a time and
//! assert the right pass flags it (and that the clean tree stays clean).

use std::fs;
use std::path::{Path, PathBuf};

use forkbase_lint::run_all;

/// Write `text` at `root/rel`, creating parent directories.
fn put(root: &Path, rel: &str, text: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, text).unwrap();
}

const WIRE_RS: &str = "crates/core/src/cluster/wire.rs";

const WIRE_SRC: &str = r#"
pub const WIRE_VERSION: u8 = 0x02;
pub const MIN_WIRE_VERSION: u8 = 0x01;
pub const MAX_FRAME_LEN: u32 = 1024;

const REQ_GET: u8 = 0x01;
const REQ_PUT: u8 = 0x02;
const ERR_NO_SUCH_KEY: u8 = 0x01;
const ERR_REMOTE: u8 = 0x0b;
const REP_VALUE: u8 = 0x80;
const OP_PUT: u8 = 0x01;
const OUTCOME_COMMITTED: u8 = 0x01;
const DIFF_IDENTICAL: u8 = 0x01;
const SPEC_HEAD: u8 = 0x00;

pub fn encode_err(e: &DbError) -> u8 {
    match e {
        DbError::NoSuchKey(_) => ERR_NO_SUCH_KEY,
        DbError::Remote { .. } => ERR_REMOTE,
    }
}
"#;

const PROTOCOL_MD: &str = r#"# Protocol

Frame: version byte is WIRE_VERSION 0x02; receivers accept 0x01..=0x02.

| tag  | request |
|------|---------|
| 0x01 | Get     |
| 0x02 | Put     |

| tag  | reply |
|------|-------|
| 0x80 | Value |

| tag  | op  |
|------|-----|
| 0x01 | Put |

| tag  | outcome   |
|------|-----------|
| 0x01 | Committed |

| tag  | diff      |
|------|-----------|
| 0x01 | Identical |

| tag  | error     | code           |
|------|-----------|----------------|
| 0x01 | NoSuchKey | `no_such_key`  |
| 0x0B | Remote    | `remote_error` |

## Version history

| version | notes   |
|---------|---------|
| 1       | initial |
| 2       | current |
"#;

const ERROR_RS: &str = r#"
pub enum DbError {
    NoSuchKey(String),
    Remote { code: String, message: String },
}

impl DbError {
    pub fn code(&self) -> &str {
        match self {
            DbError::NoSuchKey(_) => "no_such_key",
            DbError::Remote { code, .. } => match code.as_str() {
                "no_such_key" => "no_such_key",
                _ => "remote_error",
            },
        }
    }
}
"#;

const REST_RS: &str = r#"
fn respond_error(e: &DbError) -> u16 {
    match e {
        DbError::NoSuchKey(_) => 404,
        DbError::Remote { .. } => 500,
    }
}
"#;

const README_MD: &str = r#"# Fixture

## Error taxonomy

| code | HTTP |
|------|------|
| `no_such_key` | 404 |
| `remote_error` | 500 |
"#;

/// Build a complete minimal workspace that passes every lint, bless its
/// lockfiles, and return its root.
fn fixture(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "forkbase-lint-fixture-{}-{name}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();

    put(&root, "Cargo.toml", "[workspace]\nmembers = []\n");
    put(&root, WIRE_RS, WIRE_SRC);
    put(&root, "PROTOCOL.md", PROTOCOL_MD);
    put(&root, "README.md", README_MD);
    put(&root, "crates/core/src/error.rs", ERROR_RS);
    put(&root, "crates/cli/src/rest.rs", REST_RS);
    put(
        &root,
        "crates/chunk/src/rolling.rs",
        "pub const GAMMA_SEED: u64 = 0x1234;\n",
    );
    put(
        &root,
        "crates/store/src/file.rs",
        "pub const FRAME_MAGIC: &[u8; 4] = b\"FKB1\";\n\
         pub const HEADER_LEN: usize = 4 + 4 + 32;\n\
         pub const MANIFEST_MAGIC: &str = \"packs v1\";\n\
         pub const TOMBSTONES_MAGIC: &str = \"tombs v1\";\n",
    );
    put(
        &root,
        "crates/core/src/api/mod.rs",
        "pub const HEAD_STRIPES: usize = 64;\n",
    );
    put(
        &root,
        "crates/core/src/cluster/mod.rs",
        "pub const TOPOLOGY_MAGIC: &str = \"topology v1\";\n\
         pub fn ring_domain() -> &'static [u8] {\n    b\"forkbase-ring-v1\"\n}\n",
    );
    put(
        &root,
        "crates/core/src/forks/manager.rs",
        "pub const FORKS_MAGIC: &str = \"forks v1\";\n",
    );

    let blessed = run_all(&root, true);
    assert!(blessed.is_empty(), "bless of clean fixture: {blessed:?}");
    root
}

fn findings_of(root: &Path, pass_prefix: &str) -> Vec<String> {
    run_all(root, false)
        .into_iter()
        .filter(|f| f.pass.starts_with(pass_prefix))
        .map(|f| f.to_string())
        .collect()
}

#[test]
fn clean_fixture_has_no_findings() {
    let root = fixture("clean");
    let findings = run_all(&root, false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn p1_retag_without_version_bump_is_flagged() {
    let root = fixture("p1-retag");
    // Re-tag REQ_GET and keep the docs in step, but do NOT bump
    // WIRE_VERSION: the lockfile diff plus the sharper no-bump finding
    // must both fire.
    put(
        &root,
        WIRE_RS,
        &WIRE_SRC.replace("REQ_GET: u8 = 0x01", "REQ_GET: u8 = 0x05"),
    );
    put(
        &root,
        "PROTOCOL.md",
        &PROTOCOL_MD.replace("| 0x01 | Get     |", "| 0x05 | Get     |"),
    );
    let findings = findings_of(&root, "P1");
    assert!(
        findings
            .iter()
            .any(|f| f.contains("wire.lock") && f.contains("REQ_GET")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.contains("WITHOUT a WIRE_VERSION bump")),
        "{findings:?}"
    );
}

#[test]
fn p1_doc_drift_is_flagged_both_directions() {
    let root = fixture("p1-doc");
    put(
        &root,
        "PROTOCOL.md",
        &PROTOCOL_MD.replace("| 0x01 | Get     |", "| 0x01 | Fetch   |"),
    );
    let findings = findings_of(&root, "P1");
    assert!(
        findings
            .iter()
            .any(|f| f.contains("`Get`") && f.contains("no matching")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.contains("`Fetch`") && f.contains("stale")),
        "{findings:?}"
    );
}

#[test]
fn p1_duplicate_tag_is_flagged() {
    let root = fixture("p1-dup");
    put(
        &root,
        WIRE_RS,
        &WIRE_SRC.replace("REQ_PUT: u8 = 0x02", "REQ_PUT: u8 = 0x01"),
    );
    let findings = findings_of(&root, "P1");
    assert!(
        findings.iter().any(|f| f.contains("duplicate tag")),
        "{findings:?}"
    );
}

#[test]
fn p1_bless_roundtrip_accepts_the_new_surface() {
    let root = fixture("p1-bless");
    put(
        &root,
        WIRE_RS,
        &WIRE_SRC
            .replace("REQ_GET: u8 = 0x01", "REQ_GET: u8 = 0x05")
            .replace("WIRE_VERSION: u8 = 0x02", "WIRE_VERSION: u8 = 0x03"),
    );
    put(
        &root,
        "PROTOCOL.md",
        &PROTOCOL_MD
            .replace("| 0x01 | Get     |", "| 0x05 | Get     |")
            .replace("WIRE_VERSION 0x02", "WIRE_VERSION 0x03")
            .replace("0x01..=0x02", "0x01..=0x03")
            .replace(
                "| 2       | current |",
                "| 2       | old |\n| 3       | current |",
            ),
    );
    assert!(!findings_of(&root, "P1").is_empty());
    let blessed = run_all(&root, true);
    assert!(blessed.is_empty(), "{blessed:?}");
    let after = run_all(&root, false);
    assert!(after.is_empty(), "{after:?}");
}

#[test]
fn p2_format_constant_drift_is_flagged() {
    let root = fixture("p2-gamma");
    put(
        &root,
        "crates/chunk/src/rolling.rs",
        "pub const GAMMA_SEED: u64 = 0x9999;\n",
    );
    let findings = findings_of(&root, "P2");
    assert!(
        findings
            .iter()
            .any(|f| f.contains("GAMMA_SEED") && f.contains("changed")),
        "{findings:?}"
    );
}

#[test]
fn p2_ring_domain_drift_is_flagged() {
    let root = fixture("p2-ring");
    put(
        &root,
        "crates/core/src/cluster/mod.rs",
        "pub const TOPOLOGY_MAGIC: &str = \"topology v1\";\n\
         pub fn ring_domain() -> &'static [u8] {\n    b\"forkbase-ring-v2\"\n}\n",
    );
    let findings = findings_of(&root, "P2");
    assert!(
        findings.iter().any(|f| f.contains("RING_DOMAIN")),
        "{findings:?}"
    );
}

#[test]
fn p2_missing_forbid_unsafe_is_flagged() {
    let root = fixture("p2-unsafe");
    put(&root, "crates/core/src/lib.rs", "pub mod api;\n");
    let findings = findings_of(&root, "P2");
    assert!(
        findings.iter().any(|f| f.contains("forbid(unsafe_code)")),
        "{findings:?}"
    );
    put(
        &root,
        "crates/core/src/lib.rs",
        "#![forbid(unsafe_code)]\npub mod api;\n",
    );
    assert!(findings_of(&root, "P2").is_empty());
}

#[test]
fn p3_panic_in_request_path_is_flagged_waiver_and_tests_are_not() {
    let root = fixture("p3-panic");
    let bad = format!(
        "{WIRE_SRC}\npub fn decode(b: &[u8]) -> u8 {{\n    b.first().copied().unwrap()\n}}\n"
    );
    put(&root, WIRE_RS, &bad);
    let findings = findings_of(&root, "P3");
    assert!(
        findings.iter().any(|f| f.contains("unwrap()")),
        "{findings:?}"
    );

    let waived = format!(
        "{WIRE_SRC}\npub fn decode(b: &[u8]) -> u8 {{\n    \
         // forkbase-lint: allow(no-panic): caller checked non-empty\n    \
         b.first().copied().unwrap()\n}}\n"
    );
    put(&root, WIRE_RS, &waived);
    assert!(findings_of(&root, "P3").is_empty());

    let in_tests = format!(
        "{WIRE_SRC}\n#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{\n        \
         Some(1).unwrap();\n    }}\n}}\n"
    );
    put(&root, WIRE_RS, &in_tests);
    assert!(findings_of(&root, "P3").is_empty());
}

#[test]
fn p3_capability_outside_allowlist_is_flagged() {
    let root = fixture("p3-caps");
    put(
        &root,
        "crates/core/src/gc.rs",
        "pub fn sneak(db: &Db) {\n    let mut b = db.branches.write();\n    b.clear();\n}\n",
    );
    let findings = findings_of(&root, "P3");
    assert!(
        findings
            .iter()
            .any(|f| f.contains("gc.rs") && f.contains("head swing")),
        "{findings:?}"
    );
    // The same verb from an allowlisted module is legal.
    put(
        &root,
        "crates/core/src/api/mod.rs",
        "pub const HEAD_STRIPES: usize = 64;\n\
         pub fn swing(db: &Db) {\n    let mut b = db.branches.write();\n    b.clear();\n}\n",
    );
    fs::remove_file(root.join("crates/core/src/gc.rs")).unwrap();
    assert!(findings_of(&root, "P3").is_empty());
}

#[test]
fn p4_unordered_double_stripe_is_flagged() {
    let root = fixture("p4-order");
    put(
        &root,
        "crates/core/src/api/merge.rs",
        "pub fn cross(db: &Db, a: usize, b: usize) {\n    \
         let _ga = db.head_locks[a].lock();\n    \
         let _gb = db.head_locks[b].lock();\n}\n",
    );
    let findings = findings_of(&root, "P4");
    assert!(
        findings.iter().any(|f| f.contains("index-ordering")),
        "{findings:?}"
    );
    // Sorting the stripe set first is the sanctioned idiom.
    put(
        &root,
        "crates/core/src/api/merge.rs",
        "pub fn cross(db: &Db, stripes: &mut Vec<usize>) {\n    \
         stripes.sort_unstable();\n    \
         for s in stripes.iter() {\n        let _g = db.head_locks[*s].lock();\n    }\n    \
         let _g2 = db.head_locks[0].lock();\n}\n",
    );
    assert!(findings_of(&root, "P4").is_empty());
}

#[test]
fn p4_stripe_before_gate_is_flagged() {
    let root = fixture("p4-gate");
    put(
        &root,
        "crates/core/src/api/commit.rs",
        "pub fn inverted(db: &Db, s: usize) {\n    \
         let _g = db.head_locks[s].lock();\n    \
         let _gate = db.gc_gate.read();\n}\n",
    );
    let findings = findings_of(&root, "P4");
    assert!(
        findings
            .iter()
            .any(|f| f.contains("before the GC/rebalance gate")),
        "{findings:?}"
    );
    // Gate first is the sanctioned order.
    put(
        &root,
        "crates/core/src/api/commit.rs",
        "pub fn upright(db: &Db, s: usize) {\n    \
         let _gate = db.gc_gate.read();\n    \
         let _g = db.head_locks[s].lock();\n}\n",
    );
    assert!(findings_of(&root, "P4").is_empty());
}

#[test]
fn p5_variant_without_code_arm_is_flagged() {
    let root = fixture("p5-arm");
    put(
        &root,
        "crates/core/src/error.rs",
        &ERROR_RS.replace(
            "pub enum DbError {",
            "pub enum DbError {\n    BranchExists(String),",
        ),
    );
    let findings = findings_of(&root, "P5");
    assert!(
        findings
            .iter()
            .any(|f| f.contains("BranchExists") && f.contains("no arm")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.contains("BranchExists") && f.contains("HTTP mapping")),
        "{findings:?}"
    );
}

#[test]
fn p5_duplicate_code_is_flagged() {
    let root = fixture("p5-dup");
    put(
        &root,
        "crates/core/src/error.rs",
        &ERROR_RS
            .replace(
                "pub enum DbError {",
                "pub enum DbError {\n    Shadow(String),",
            )
            .replace(
                "match self {",
                "match self {\n            DbError::Shadow(_) => \"no_such_key\",",
            ),
    );
    let findings = findings_of(&root, "P5");
    assert!(
        findings.iter().any(|f| f.contains("collides")),
        "{findings:?}"
    );
}

#[test]
fn p5_readme_rows_must_match_live_codes() {
    let root = fixture("p5-readme");
    put(
        &root,
        "README.md",
        &README_MD.replace("| `remote_error` | 500 |", "| `gone_error` | 500 |"),
    );
    let findings = findings_of(&root, "P5");
    assert!(
        findings
            .iter()
            .any(|f| f.contains("`remote_error`") && f.contains("no row")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.contains("`gone_error`") && f.contains("stale")),
        "{findings:?}"
    );
    put(&root, "README.md", "# Fixture\n\nno table here\n");
    let findings = findings_of(&root, "P5");
    assert!(
        findings
            .iter()
            .any(|f| f.contains("no \"Error taxonomy\" section")),
        "{findings:?}"
    );
}

#[test]
fn lockfile_drift_reports_new_changed_and_removed_keys() {
    let root = fixture("lockdrift");
    // Hand-edit the committed lockfile: the sources are now "ahead".
    let lock_path = root.join("lint/format.lock");
    let text = fs::read_to_string(&lock_path).unwrap();
    let edited = text.replace(
        "crates/chunk/src/rolling.rs GAMMA_SEED = 0x1234",
        "crates/chunk/src/rolling.rs GAMMA_SEED = 0xdead\nold/file.rs GONE = 1",
    );
    fs::write(&lock_path, edited).unwrap();
    let findings = findings_of(&root, "P2");
    assert!(
        findings.iter().any(|f| f.contains("changed")),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.contains("gone from the sources")),
        "{findings:?}"
    );
}

#[test]
fn missing_lockfiles_are_reported() {
    let root = fixture("nolock");
    fs::remove_file(root.join("lint/wire.lock")).unwrap();
    fs::remove_file(root.join("lint/format.lock")).unwrap();
    let findings = run_all(&root, false);
    assert!(
        findings
            .iter()
            .any(|f| f.pass.starts_with("P1") && f.message.contains("lockfile missing")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.pass.starts_with("P2") && f.message.contains("lockfile missing")),
        "{findings:?}"
    );
}
