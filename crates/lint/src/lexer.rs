//! A lightweight lexical view of a Rust source file.
//!
//! The passes never need a real parse tree — they need to search *code*
//! without tripping over the same tokens inside comments, string
//! literals, or `#[cfg(test)]` regions. [`Masked`] provides that: a
//! byte-for-byte copy of the source where comment bodies and
//! string/char-literal contents are replaced by spaces, so offsets and
//! line numbers in the masked copy map 1:1 onto the original.

/// A source file plus its comment/string-masked shadow copy.
pub struct Masked {
    /// The original source, untouched (used to read literal values and
    /// waiver comments).
    pub raw: String,
    /// Same length as `raw`; comment bodies and string/char contents are
    /// spaces, everything else is identical.
    pub code: String,
    /// Byte offset of the start of each line (0-based lines).
    line_starts: Vec<usize>,
}

impl Masked {
    /// Lex `raw`, blanking comments and literal contents.
    pub fn new(raw: String) -> Masked {
        let code = mask_source(&raw);
        let mut line_starts = vec![0];
        for (i, b) in raw.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Masked {
            raw,
            code,
            line_starts,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// The raw text of 1-based line `line` (empty if out of range).
    pub fn raw_line(&self, line: usize) -> &str {
        if line == 0 || line > self.line_starts.len() {
            return "";
        }
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.raw.len());
        self.raw[start..end].trim_end_matches('\n')
    }

    /// A copy of `code` with every `#[cfg(test)]` item (and everything it
    /// encloses) additionally blanked, for passes that lint only shipped
    /// code paths.
    pub fn code_without_tests(&self) -> String {
        let mut out = self.code.clone().into_bytes();
        let needle = b"#[cfg(test)]";
        let bytes = self.code.as_bytes();
        let mut i = 0;
        while let Some(pos) = find_from(bytes, needle, i) {
            let region_end = cfg_test_region_end(bytes, pos + needle.len());
            for b in &mut out[pos..region_end] {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
            i = region_end;
        }
        String::from_utf8(out).expect("masking only writes ASCII spaces")
    }

    /// True when 1-based `line` or the line above it carries a
    /// `forkbase-lint: allow(<rule>)` waiver comment.
    pub fn has_waiver(&self, line: usize, rule: &str) -> bool {
        let tag = format!("forkbase-lint: allow({rule})");
        self.raw_line(line).contains(&tag) || line > 1 && self.raw_line(line - 1).contains(&tag)
    }
}

fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// End offset of the item a `#[cfg(test)]` attribute (ending at `after`)
/// covers: skip further attributes and whitespace, then either the first
/// `;` (extern/use items) or the matching close of the first `{`.
fn cfg_test_region_end(code: &[u8], after: usize) -> usize {
    let mut i = after;
    // Skip whitespace and any further `#[...]` attributes.
    loop {
        while i < code.len() && code[i].is_ascii_whitespace() {
            i += 1;
        }
        if i + 1 < code.len() && code[i] == b'#' && code[i + 1] == b'[' {
            let mut depth = 0usize;
            while i < code.len() {
                match code[i] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            break;
        }
    }
    // Scan to the item body: first `{` at paren depth 0, or a bare `;`.
    let mut paren = 0usize;
    while i < code.len() {
        match code[i] {
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren = paren.saturating_sub(1),
            b';' if paren == 0 => return i + 1,
            b'{' if paren == 0 => {
                let mut depth = 0usize;
                while i < code.len() {
                    match code[i] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return code.len();
            }
            _ => {}
        }
        i += 1;
    }
    code.len()
}

/// Blank comment bodies and string/char-literal contents, preserving
/// length and newlines. Handles line and nested block comments, plain /
/// raw / byte strings, and char literals vs lifetimes.
fn mask_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for x in &mut out[from..to] {
            if *x != b'\n' {
                *x = b' ';
            }
        }
    };
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 0usize;
                while i < b.len() {
                    if i + 1 < b.len() && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < b.len() && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                // r"..", r#".."#, br".." etc. Skip prefix to the hashes.
                let mut j = i + 1;
                if b[i] == b'b' && j < b.len() && b[j] == b'r' {
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                // j is at the opening quote.
                let content = j + 1;
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                let end = find_from(b, &closer, content).unwrap_or(b.len());
                blank(&mut out, content, end);
                i = (end + closer.len()).min(b.len());
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'"' => {
                let end = skip_string(b, i + 1);
                blank(&mut out, i + 2, end.saturating_sub(1));
                i = end;
            }
            b'"' => {
                let end = skip_string(b, i);
                blank(&mut out, i + 1, end.saturating_sub(1));
                i = end;
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'\'' => {
                let end = skip_char_or_lifetime(b, i + 1);
                blank(&mut out, i + 2, end.saturating_sub(1));
                i = end;
            }
            b'\'' => {
                let end = skip_char_or_lifetime(b, i);
                if end > i + 1 {
                    blank(&mut out, i + 1, end.saturating_sub(1));
                }
                i = end.max(i + 1);
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).unwrap_or_else(|e| {
        // Masking never splits UTF-8 sequences outside literals; blanked
        // regions may have held multi-byte chars, so rebuild lossily.
        String::from_utf8_lossy(e.as_bytes()).into_owned()
    })
}

/// Is `i` the start of a raw-string literal (`r"`, `r#`, `br"`, `br#`)?
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // Not a raw string if the r/b is the tail of an identifier.
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j >= b.len() || b[j] != b'r' {
            return false;
        }
    }
    if b[j] != b'r' {
        return false;
    }
    j += 1;
    let mut saw_hash = false;
    while j < b.len() && b[j] == b'#' {
        saw_hash = true;
        j += 1;
    }
    // `r#ident` is a raw identifier, not a string.
    j < b.len() && b[j] == b'"' && (!saw_hash || !b[j].is_ascii_alphabetic())
}

/// Skip a `"..."` string starting at the opening quote; returns the
/// offset just past the closing quote.
fn skip_string(b: &[u8], open: usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// Distinguish `'c'` / `'\n'` char literals from `'lifetime`. Returns the
/// offset past the literal, or `open + 1` when it is a lifetime.
fn skip_char_or_lifetime(b: &[u8], open: usize) -> usize {
    let i = open + 1;
    if i >= b.len() {
        return open + 1;
    }
    if b[i] == b'\\' {
        let mut j = i + 2;
        // Escapes like \x7f or \u{...} run until the closing quote.
        while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
            j += 1;
        }
        return if j < b.len() && b[j] == b'\'' {
            j + 1
        } else {
            open + 1
        };
    }
    // `'x'` (single char, possibly multi-byte UTF-8) then a quote.
    let mut j = i + 1;
    while j < b.len() && j < i + 5 && (b[j] & 0xC0) == 0x80 {
        j += 1; // UTF-8 continuation bytes
    }
    if j < b.len() && b[j] == b'\'' {
        j + 1
    } else {
        open + 1 // a lifetime: leave the identifier visible
    }
}

/// Find `pattern` in `code` ignoring whitespace inside the pattern match
/// (so a call chain broken across lines still matches). Returns match
/// start offsets.
pub fn find_pattern_ws(code: &str, pattern: &str) -> Vec<usize> {
    let code_b = code.as_bytes();
    let pat: Vec<u8> = pattern
        .bytes()
        .filter(|b| !b.is_ascii_whitespace())
        .collect();
    let mut hits = Vec::new();
    if pat.is_empty() {
        return hits;
    }
    let mut i = 0;
    while i < code_b.len() {
        if code_b[i] == pat[0] {
            let mut ci = i;
            let mut pi = 0;
            while ci < code_b.len() && pi < pat.len() {
                if code_b[ci].is_ascii_whitespace() {
                    if pi == 0 {
                        break;
                    }
                    ci += 1;
                    continue;
                }
                if code_b[ci] != pat[pi] {
                    break;
                }
                ci += 1;
                pi += 1;
            }
            if pi == pat.len() {
                hits.push(i);
                i = ci;
                continue;
            }
        }
        i += 1;
    }
    hits
}

/// Function bodies found in a (test-masked) code view: `(name, header
/// offset, body byte range)`.
pub fn function_bodies(code: &str) -> Vec<(String, usize, std::ops::Range<usize>)> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = find_from(b, b"fn ", i) {
        // Word boundary on the left (`fn` not the tail of an ident).
        if pos > 0 && (b[pos - 1].is_ascii_alphanumeric() || b[pos - 1] == b'_') {
            i = pos + 3;
            continue;
        }
        let mut j = pos + 3;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        let name = code[name_start..j].to_string();
        // Find the body `{` at bracket depth 0, or a `;` (trait decl).
        let mut paren = 0usize;
        let mut body = None;
        while j < b.len() {
            match b[j] {
                b'(' | b'[' | b'<' => paren += 1,
                b')' | b']' | b'>' => paren = paren.saturating_sub(1),
                b';' if paren == 0 => break,
                b'{' if paren == 0 => {
                    let mut depth = 0usize;
                    let open = j;
                    while j < b.len() {
                        match b[j] {
                            b'{' => depth += 1,
                            b'}' => {
                                depth -= 1;
                                if depth == 0 {
                                    body = Some(open..j + 1);
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(range) = body {
            let end = range.end;
            out.push((name, pos, range));
            i = end;
        } else {
            i = j.max(pos + 3);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let m = Masked::new(
            "let a = \"unwrap()\"; // unwrap()\n/* panic! */ let b = 'x'; let c: &'a str = r#\"expect(\"#;\n"
                .to_string(),
        );
        assert!(!m.code.contains("unwrap"));
        assert!(!m.code.contains("panic"));
        assert!(!m.code.contains("expect"));
        assert!(m.code.contains("let b ="));
        assert!(m.code.contains("&'a str"), "lifetimes survive: {}", m.code);
        assert_eq!(m.raw.len(), m.code.len());
    }

    #[test]
    fn masks_cfg_test_regions() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn more() {}\n";
        let m = Masked::new(src.to_string());
        let shipped = m.code_without_tests();
        assert_eq!(shipped.matches("unwrap").count(), 1);
        assert!(shipped.contains("fn more"));
    }

    #[test]
    fn line_numbers_map() {
        let m = Masked::new("a\nb\nc\n".to_string());
        assert_eq!(m.line_of(0), 1);
        assert_eq!(m.line_of(2), 2);
        assert_eq!(m.line_of(4), 3);
        assert_eq!(m.raw_line(2), "b");
    }

    #[test]
    fn pattern_search_ignores_whitespace() {
        let hits = find_pattern_ws("self . topology()\n  .encode()", "topology().encode()");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn finds_function_bodies() {
        let fns = function_bodies("impl X { fn a(&self) -> u8 { 1 } }\nfn b() { { } }\n");
        let names: Vec<_> = fns.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
