#![forbid(unsafe_code)]
//! `forkbase-lint`: the workspace invariant checker.
//!
//! The repo carries invariants that `rustc` cannot see: wire tags are
//! frozen (PROTOCOL.md § Compatibility), chunk/format constants are
//! on-disk format (ROADMAP "Format invariants"), stripe locks must be
//! taken in index order under the GC gate, privileged storage verbs are
//! only legal from a handful of modules, and every `DbError` must map
//! consistently onto a wire error, an HTTP status, and the documented
//! code tables. Each pass checks one of those surfaces against the
//! sources, the docs, and a committed lockfile snapshot, and reports
//! machine-readable findings (`file:line: [pass/rule] text`).
//!
//! Passes:
//!
//! * **P1 `wire`** — wire-protocol drift: tag constants and versions in
//!   `cluster/wire.rs` vs `PROTOCOL.md` vs `lint/wire.lock`.
//! * **P2 `format`** — format-constant freeze: `GAMMA_SEED`, frame
//!   layout, `HEAD_STRIPES`, ring derivation, record magics vs
//!   `lint/format.lock`; plus the `#![forbid(unsafe_code)]` crate-root
//!   check.
//! * **P3 `caps`** — capability lint: privileged verbs only from
//!   allowlisted modules; no `unwrap`/`expect`/`panic!` in the
//!   RPC/net/replication request paths.
//! * **P4 `locks`** — lock-order: two head stripes only via the
//!   index-ordering idiom; never a stripe before the GC gate.
//! * **P5 `errors`** — error-taxonomy consistency across `DbError`,
//!   the wire codec, the REST status map, and the doc tables.
//!
//! Lockfiles are regenerated with `--bless` (in its own commit — see
//! README § Static analysis for the unlock procedure).

pub mod lexer;
pub mod passes;

use std::path::{Path, PathBuf};

/// One rule violation, printable as `file:line: [pass/rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-root-relative path of the offending file.
    pub file: String,
    /// 1-based line (0 when the finding is file- or table-level).
    pub line: usize,
    /// Pass id, e.g. `P3/no-panic`.
    pub pass: String,
    /// Human-readable rule text.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.message
        )
    }
}

impl Finding {
    pub(crate) fn new(
        file: impl Into<String>,
        line: usize,
        pass: &str,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            file: file.into(),
            line,
            pass: pass.to_string(),
            message: message.into(),
        }
    }
}

/// Run every pass over the workspace at `root`. With `bless`, the
/// lockfiles are rewritten to match the current sources instead of being
/// diffed against them (doc/source consistency checks still run).
pub fn run_all(root: &Path, bless: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(passes::wire::run(root, bless));
    findings.extend(passes::format::run(root, bless));
    findings.extend(passes::caps::run(root));
    findings.extend(passes::locks::run(root));
    findings.extend(passes::errors::run(root));
    findings
}

/// Read a workspace file into a [`lexer::Masked`] view, or report its
/// absence as a finding (a moved invariant-bearing file must update the
/// lint, not silently drop out of coverage).
pub(crate) fn read_masked(
    root: &Path,
    rel: &str,
    pass: &str,
    findings: &mut Vec<Finding>,
) -> Option<lexer::Masked> {
    match std::fs::read_to_string(root.join(rel)) {
        Ok(text) => Some(lexer::Masked::new(text)),
        Err(e) => {
            findings.push(Finding::new(
                rel,
                0,
                pass,
                format!("cannot read invariant-bearing file: {e} (moved it? update crates/lint)"),
            ));
            None
        }
    }
}

/// Every `.rs` file under `root/<rel>` (recursive, sorted), as
/// root-relative path strings.
pub(crate) fn rust_files_under(root: &Path, rel: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.join(rel)];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
