//! Frozen-surface lockfiles: a sorted `key = value` text snapshot of an
//! invariant surface, committed under `lint/`. A pass extracts the live
//! surface from the sources, and any difference from the committed
//! snapshot is a finding unless the run is `--bless`ing (which rewrites
//! the file instead).

use std::collections::BTreeMap;
use std::path::Path;

use crate::Finding;

/// Parse a lockfile body: `key = value` lines, `#` comments ignored.
pub fn parse(text: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((k, v)) = line.split_once(" = ") {
            out.insert(k.trim().to_string(), v.trim().to_string());
        }
    }
    out
}

/// Serialize `entries` under a fixed header comment.
pub fn render(header: &str, entries: &BTreeMap<String, String>) -> String {
    let mut out = String::new();
    for line in header.lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    for (k, v) in entries {
        out.push_str(&format!("{k} = {v}\n"));
    }
    out
}

/// Diff the live surface against the committed lockfile at
/// `root/<rel>`, or rewrite it when `bless` is set. `unlock_hint` tells
/// the developer what a legitimate change requires (it is appended to
/// every drift finding).
#[allow(clippy::too_many_arguments)] // two call sites, both named-constant heavy
pub fn check(
    root: &Path,
    rel: &str,
    pass: &str,
    header: &str,
    live: &BTreeMap<String, String>,
    bless: bool,
    unlock_hint: &str,
    findings: &mut Vec<Finding>,
) {
    let path = root.join(rel);
    if bless {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, render(header, live)) {
            findings.push(Finding::new(
                rel,
                0,
                pass,
                format!("cannot write lockfile: {e}"),
            ));
        }
        return;
    }
    let committed = match std::fs::read_to_string(&path) {
        Ok(text) => parse(&text),
        Err(_) => {
            findings.push(Finding::new(
                rel,
                0,
                pass,
                format!("lockfile missing; generate it with `cargo run -p forkbase-lint -- --bless` ({unlock_hint})"),
            ));
            return;
        }
    };
    for (k, v) in live {
        match committed.get(k) {
            None => findings.push(Finding::new(
                rel,
                0,
                pass,
                format!("`{k}` ({v}) is new and not in the lockfile; {unlock_hint}"),
            )),
            Some(old) if old != v => findings.push(Finding::new(
                rel,
                0,
                pass,
                format!("`{k}` changed: lockfile has {old}, sources have {v}; {unlock_hint}"),
            )),
            Some(_) => {}
        }
    }
    for (k, v) in &committed {
        if !live.contains_key(k) {
            findings.push(Finding::new(
                rel,
                0,
                pass,
                format!("`{k}` ({v}) is in the lockfile but gone from the sources; {unlock_hint}"),
            ));
        }
    }
}
