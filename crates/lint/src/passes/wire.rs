//! P1 — wire-protocol drift.
//!
//! Extracts every `Request`/`Reply`/`WireError` (and batch-op, outcome,
//! diff, spec) tag constant plus `WIRE_VERSION`/`MIN_WIRE_VERSION`/
//! `MAX_FRAME_LEN` from `crates/core/src/cluster/wire.rs`, then checks:
//!
//! * tag uniqueness within each family;
//! * presence and value agreement against `PROTOCOL.md`'s tag tables,
//!   in both directions (a stale doc row is as much a finding as a
//!   missing one);
//! * the PROTOCOL.md version lines agree with the constants, and the
//!   version-history table has a row for the current `WIRE_VERSION`;
//! * byte-for-byte agreement with the committed `lint/wire.lock`
//!   snapshot, so a tag/encoding change without a `--bless` (and the
//!   version bump the bless procedure demands) is a hard failure.

use std::collections::BTreeMap;
use std::path::Path;

use super::lockfile;
use super::rust_src::{self, pascal_case};
use crate::{read_masked, Finding};

const PASS: &str = "P1/wire-drift";
pub(crate) const WIRE_RS: &str = "crates/core/src/cluster/wire.rs";
const PROTOCOL_MD: &str = "PROTOCOL.md";
pub(crate) const LOCK: &str = "lint/wire.lock";

/// Tag families: lockfile prefix, constant prefix, whether PROTOCOL.md
/// documents the family as `| 0xNN | Name |` table rows.
const FAMILIES: &[(&str, &str, bool)] = &[
    ("req", "REQ_", true),
    ("err", "ERR_", true),
    ("rep", "REP_", true),
    ("op", "OP_", true),
    ("outcome", "OUTCOME_", true),
    ("diff", "DIFF_", true),
    // Spec discriminants are documented prose-style in the type table,
    // not as a tag table, so they are locked but not row-checked.
    ("spec", "SPEC_", false),
];

const LOCK_HEADER: &str = "forkbase-lint P1: frozen wire surface (tags, versions, frame cap).\n\
Regenerate ONLY with `cargo run -p forkbase-lint -- --bless`, in its own\n\
commit, together with a WIRE_VERSION bump and a PROTOCOL.md version-history\n\
row (see PROTOCOL.md \u{a7} Compatibility and README \u{a7} Static analysis).";

const UNLOCK_HINT: &str = "a wire-surface change requires a WIRE_VERSION bump, a PROTOCOL.md \
history row, and a `--bless`ed lint/wire.lock in its own commit";

/// Run the pass. `bless` rewrites the lockfile instead of diffing it.
pub fn run(root: &Path, bless: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(wire) = read_masked(root, WIRE_RS, PASS, &mut findings) else {
        return findings;
    };
    let Some(proto) = std::fs::read_to_string(root.join(PROTOCOL_MD)).ok() else {
        findings.push(Finding::new(
            PROTOCOL_MD,
            0,
            PASS,
            "cannot read PROTOCOL.md",
        ));
        return findings;
    };

    let consts = rust_src::consts(&wire);
    let mut lock: BTreeMap<String, String> = BTreeMap::new();

    // Versions and the frame cap.
    let mut wire_version: Option<u8> = None;
    let mut min_version: Option<u8> = None;
    for want in ["WIRE_VERSION", "MIN_WIRE_VERSION", "MAX_FRAME_LEN"] {
        match consts.iter().find(|c| c.name == want) {
            Some(c) => {
                lock.insert(format!("version {want}"), c.value.clone());
                if want != "MAX_FRAME_LEN" {
                    match rust_src::parse_u8(&c.value) {
                        Some(v) if want == "WIRE_VERSION" => wire_version = Some(v),
                        Some(v) => min_version = Some(v),
                        None => findings.push(Finding::new(
                            WIRE_RS,
                            c.line,
                            PASS,
                            format!("`{want}` must be a literal u8, found `{}`", c.value),
                        )),
                    }
                }
            }
            None => findings.push(Finding::new(
                WIRE_RS,
                0,
                PASS,
                format!("`{want}` constant not found (renamed? update crates/lint)"),
            )),
        }
    }

    // Tag families: collect, check uniqueness, build the lock image and
    // the set of (tag, name) pairs the docs must agree with.
    let mut documented_pairs: Vec<(u8, String, usize)> = Vec::new();
    for (lock_prefix, const_prefix, in_docs) in FAMILIES {
        let mut seen: BTreeMap<u8, (&str, usize)> = BTreeMap::new();
        for c in consts.iter().filter(|c| c.name.starts_with(const_prefix)) {
            if c.ty != "u8" {
                continue;
            }
            let Some(tag) = rust_src::parse_u8(&c.value) else {
                findings.push(Finding::new(
                    WIRE_RS,
                    c.line,
                    PASS,
                    format!(
                        "tag constant `{}` is not a u8 literal: `{}`",
                        c.name, c.value
                    ),
                ));
                continue;
            };
            if let Some((other, _)) = seen.get(&tag) {
                findings.push(Finding::new(
                    WIRE_RS,
                    c.line,
                    PASS,
                    format!(
                        "duplicate tag {tag:#04x} in family `{const_prefix}*`: `{}` collides with `{other}`",
                        c.name
                    ),
                ));
            } else {
                seen.insert(tag, (&c.name, c.line));
            }
            lock.insert(format!("{lock_prefix} {}", c.name), format!("{tag:#04x}"));
            if *in_docs {
                let suffix = &c.name[const_prefix.len()..];
                documented_pairs.push((tag, pascal_case(suffix), c.line));
            }
        }
        if seen.is_empty() {
            findings.push(Finding::new(
                WIRE_RS,
                0,
                PASS,
                format!("no `{const_prefix}*` tag constants found (renamed? update crates/lint)"),
            ));
        }
    }

    // PROTOCOL.md tag-table rows: `| 0xNN | Name | ... |`.
    let doc_rows = protocol_tag_rows(&proto);
    for (tag, name, line) in &documented_pairs {
        if !doc_rows.iter().any(|(t, n, _)| t == tag && n == name) {
            findings.push(Finding::new(
                WIRE_RS,
                *line,
                PASS,
                format!("tag {tag:#04x} `{name}` has no matching `| {tag:#04x} | {name} |` row in PROTOCOL.md"),
            ));
        }
    }
    for (tag, name, doc_line) in &doc_rows {
        if !documented_pairs
            .iter()
            .any(|(t, n, _)| t == tag && n == name)
        {
            findings.push(Finding::new(
                PROTOCOL_MD,
                *doc_line,
                PASS,
                format!("documented tag {tag:#04x} `{name}` has no matching constant in {WIRE_RS} (stale row?)"),
            ));
        }
    }

    // Version lines: the frame-layout spec must name the current version
    // and accept range, and the history table must have a row for it.
    if let (Some(v), Some(min)) = (wire_version, min_version) {
        let accept = format!("0x{min:02x}..=0x{v:02x}");
        if !proto
            .lines()
            .any(|l| l.contains("WIRE_VERSION") && l.contains(&format!("0x{v:02x}")))
        {
            findings.push(Finding::new(
                PROTOCOL_MD,
                0,
                PASS,
                format!("no frame-spec line states version 0x{v:02x} (WIRE_VERSION)"),
            ));
        }
        if !proto.contains(&accept) {
            findings.push(Finding::new(
                PROTOCOL_MD,
                0,
                PASS,
                format!("accepted-version range `{accept}` not documented"),
            ));
        }
        let has_history_row = proto.lines().any(|l| {
            let mut cells = l.split('|').map(str::trim);
            cells.next() == Some("") && cells.next() == Some(&v.to_string())
        });
        if !has_history_row {
            findings.push(Finding::new(
                PROTOCOL_MD,
                0,
                PASS,
                format!("version-history table has no row for wire version {v}"),
            ));
        }
    }

    lockfile::check(
        root,
        LOCK,
        PASS,
        LOCK_HEADER,
        &lock,
        bless,
        UNLOCK_HINT,
        &mut findings,
    );
    // The sharper message when the surface moved but the version did not:
    // compare the blessed/committed WIRE_VERSION against the live one.
    if !bless {
        if let (Some(live), Ok(text)) = (wire_version, std::fs::read_to_string(root.join(LOCK))) {
            let committed = lockfile::parse(&text);
            let lock_version = committed
                .get("version WIRE_VERSION")
                .and_then(|v| rust_src::parse_u8(v));
            let surface_drifted = findings.iter().any(|f| f.file == LOCK);
            if surface_drifted && lock_version == Some(live) {
                findings.push(Finding::new(
                    WIRE_RS,
                    0,
                    PASS,
                    "wire surface changed WITHOUT a WIRE_VERSION bump — re-tagging silently is a \
                     format break (PROTOCOL.md \u{a7} Compatibility)",
                ));
            }
        }
    }
    findings
}

/// Extract `(tag, name, line)` from every markdown table row whose first
/// cell is a `0xNN` byte and second cell a bare identifier.
fn protocol_tag_rows(proto: &str) -> Vec<(u8, String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in proto.lines().enumerate() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() < 2 {
            continue;
        }
        let Some(hex) = cells[0].strip_prefix("0x") else {
            continue;
        };
        let Ok(tag) = u8::from_str_radix(hex, 16) else {
            continue;
        };
        let name = cells[1];
        if !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && name.chars().all(|c| c.is_ascii_alphanumeric())
        {
            out.push((tag, name.to_string(), idx + 1));
        }
    }
    out
}
