//! Shared helpers for pulling declarations out of a masked source view.

use crate::lexer::Masked;

/// A `const NAME: TYPE = VALUE;` extracted from a source file.
pub struct ConstDecl {
    pub name: String,
    /// Declared type, whitespace-normalized (e.g. `u8`, `&[u8; 4]`).
    pub ty: String,
    /// Right-hand side, whitespace-normalized, read from the *raw*
    /// source so string/byte literals keep their contents.
    pub value: String,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// Every `const` item in the file (masked scan, raw values).
pub fn consts(m: &Masked) -> Vec<ConstDecl> {
    let code = m.code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = find_word(&m.code, "const", i) {
        i = pos + 5;
        let mut j = i;
        while j < code.len() && code[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < code.len() && (code[j].is_ascii_alphanumeric() || code[j] == b'_') {
            j += 1;
        }
        let name = m.code[name_start..j].to_string();
        if name.is_empty() || name == "fn" {
            continue; // `const fn`
        }
        // Expect `: TYPE = VALUE;` — scan (in masked text) to `=` then `;`.
        while j < code.len() && code[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= code.len() || code[j] != b':' {
            continue; // not a const item (e.g. `const` in a path)
        }
        let ty_start = j + 1;
        let Some(eq) = m.code[ty_start..].find('=').map(|p| p + ty_start) else {
            continue;
        };
        let ty = normalize_ws(&m.code[ty_start..eq]);
        // Find the terminating `;` at bracket depth 0 in the masked view.
        let mut depth = 0i32;
        let mut end = None;
        for (off, b) in code[eq + 1..].iter().enumerate() {
            match b {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b';' if depth == 0 => {
                    end = Some(eq + 1 + off);
                    break;
                }
                _ => {}
            }
        }
        let Some(end) = end else { continue };
        out.push(ConstDecl {
            name,
            ty,
            value: normalize_ws(&m.raw[eq + 1..end]),
            line: m.line_of(name_start),
        });
        i = end;
    }
    out
}

/// Find `word` at `from` or later, requiring identifier boundaries on
/// both sides.
pub fn find_word(code: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut i = from;
    while let Some(p) = code.get(i..)?.find(word) {
        let pos = i + p;
        let left_ok =
            pos == 0 || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_');
        let after = pos + word.len();
        let right_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if left_ok && right_ok {
            return Some(pos);
        }
        i = pos + word.len();
    }
    None
}

/// Collapse whitespace runs to single spaces and trim.
pub fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Parse a `u8` tag literal like `0x2A` or `42` (underscores allowed).
pub fn parse_u8(value: &str) -> Option<u8> {
    let v = value.replace('_', "");
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// `SOME_TAG_NAME` → `SomeTagName`.
pub fn pascal_case(upper_snake: &str) -> String {
    upper_snake
        .split('_')
        .filter(|p| !p.is_empty())
        .map(|p| {
            let mut c = p.chars();
            match c.next() {
                Some(f) => f.to_ascii_uppercase().to_string() + &c.as_str().to_ascii_lowercase(),
                None => String::new(),
            }
        })
        .collect()
}
