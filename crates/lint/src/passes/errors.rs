//! P5 — error-taxonomy consistency.
//!
//! `DbError` is the one error type clients see, across four surfaces
//! that must agree: the `code()` string a client branches on, the wire
//! form (`cluster/wire.rs`), the HTTP status both REST gateways emit
//! (`cli/src/rest.rs` — one shared mapping), and the documented tables
//! (PROTOCOL.md wire errors, README error taxonomy). The pass checks:
//!
//! * every enum variant has an arm in `code()`, and every dedicated
//!   code is unique;
//! * every variant is explicitly handled in the REST status map (the
//!   match is wildcard-free, so a new variant cannot silently inherit
//!   a default status);
//! * every variant either has a dedicated wire form in `wire.rs` or its
//!   code is documented in PROTOCOL.md as carried through the `Remote`
//!   wire error;
//! * every code appears in PROTOCOL.md, and the README "Error taxonomy"
//!   table lists exactly the live code set (stale rows are findings
//!   too).

use std::collections::BTreeSet;
use std::path::Path;

use crate::lexer::Masked;
use crate::{read_masked, Finding};

const PASS: &str = "P5/error-taxonomy";
const ERROR_RS: &str = "crates/core/src/error.rs";
const WIRE_RS: &str = "crates/core/src/cluster/wire.rs";
const REST_RS: &str = "crates/cli/src/rest.rs";
const README: &str = "README.md";
const PROTOCOL: &str = "PROTOCOL.md";

/// Run the pass.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(err_src) = read_masked(root, ERROR_RS, PASS, &mut findings) else {
        return findings;
    };
    let Some(wire_src) = read_masked(root, WIRE_RS, PASS, &mut findings) else {
        return findings;
    };
    let Some(rest_src) = read_masked(root, REST_RS, PASS, &mut findings) else {
        return findings;
    };
    let readme = std::fs::read_to_string(root.join(README)).unwrap_or_default();
    let proto = std::fs::read_to_string(root.join(PROTOCOL)).unwrap_or_default();

    let variants = enum_variants(&err_src, "DbError");
    if variants.is_empty() {
        findings.push(Finding::new(ERROR_RS, 0, PASS, "enum DbError not found"));
        return findings;
    }
    let Some(code_body) = fn_body(&err_src, "code") else {
        findings.push(Finding::new(ERROR_RS, 0, PASS, "fn code() not found"));
        return findings;
    };
    let arms = match_arms(&err_src, code_body.clone());

    // (a) every variant has a code() arm; no stale arms.
    for (v, line) in &variants {
        if !arms.iter().any(|(av, _, _)| av == v) {
            findings.push(Finding::new(
                ERROR_RS,
                *line,
                PASS,
                format!("variant `{v}` has no arm in DbError::code()"),
            ));
        }
    }
    for (av, _, line) in &arms {
        if !variants.iter().any(|(v, _)| v == av) {
            findings.push(Finding::new(
                ERROR_RS,
                *line,
                PASS,
                format!("code() matches `DbError::{av}` which is not a variant"),
            ));
        }
    }

    // (b) dedicated codes are unique.
    let mut seen: Vec<(&str, &str)> = Vec::new();
    for (av, code, line) in &arms {
        if let Some(code) = code {
            if let Some((other, _)) = seen.iter().find(|(_, c)| c == code) {
                findings.push(Finding::new(
                    ERROR_RS,
                    *line,
                    PASS,
                    format!("code \"{code}\" of `{av}` collides with `{other}`"),
                ));
            }
            seen.push((av, code));
        }
    }

    // (c) the REST status map names every variant explicitly.
    for (v, line) in &variants {
        if !rest_src.code.contains(&format!("DbError::{v}")) {
            findings.push(Finding::new(
                REST_RS,
                0,
                PASS,
                format!(
                    "`DbError::{v}` (declared {ERROR_RS}:{line}) has no explicit HTTP mapping in \
                     the REST gateways' status match"
                ),
            ));
        }
    }

    // (d) wire mapping: a dedicated wire form, or a documented carried code.
    for (v, line) in &variants {
        let has_wire_form = wire_src.code.contains(&format!("DbError::{v}"));
        let code = arms
            .iter()
            .find(|(av, _, _)| av == v)
            .and_then(|(_, c, _)| c.clone());
        let carried_documented = code
            .as_deref()
            .is_some_and(|c| proto.contains(&format!("`{c}`")));
        if !has_wire_form && !carried_documented {
            findings.push(Finding::new(
                ERROR_RS,
                *line,
                PASS,
                format!(
                    "variant `{v}` has neither a dedicated wire form in {WIRE_RS} nor a \
                     PROTOCOL.md entry documenting its code as carried via the Remote wire error"
                ),
            ));
        }
    }

    // (e)+(f): the full code set (dedicated + carried/interned literals
    // inside code()) against the doc tables.
    let codes: BTreeSet<String> = string_literals(&err_src, code_body)
        .into_iter()
        .filter(|s| !s.is_empty() && s.chars().all(|c| c == '_' || c.is_ascii_lowercase()))
        .collect();
    for code in &codes {
        if !proto.contains(&format!("`{code}`")) {
            findings.push(Finding::new(
                PROTOCOL,
                0,
                PASS,
                format!("error code `{code}` is not documented in PROTOCOL.md"),
            ));
        }
    }
    match readme_error_rows(&readme) {
        None => findings.push(Finding::new(
            README,
            0,
            PASS,
            "README has no \"Error taxonomy\" section with a code table",
        )),
        Some(rows) => {
            for code in &codes {
                if !rows.iter().any(|(c, _)| c == code) {
                    findings.push(Finding::new(
                        README,
                        0,
                        PASS,
                        format!(
                            "error code `{code}` has no row in the README error-taxonomy table"
                        ),
                    ));
                }
            }
            for (code, line) in &rows {
                if !codes.contains(code) {
                    findings.push(Finding::new(
                        README,
                        *line,
                        PASS,
                        format!("README error-taxonomy row `{code}` matches no live DbError code (stale?)"),
                    ));
                }
            }
        }
    }
    findings
}

/// `(variant, line)` pairs of `enum <name>`'s top-level variants.
fn enum_variants(m: &Masked, name: &str) -> Vec<(String, usize)> {
    let Some(pos) = m.code.find(&format!("enum {name}")) else {
        return Vec::new();
    };
    let Some(open) = m.code[pos..].find('{').map(|p| p + pos) else {
        return Vec::new();
    };
    let bytes = m.code.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    let mut expecting = true; // at `{` or after a top-level `,`
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'(' | b'[' => depth += 1,
            b'}' | b')' | b']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            b',' if depth == 1 => expecting = true,
            c if depth == 1 && expecting && c.is_ascii_uppercase() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((m.code[start..i].to_string(), m.line_of(start)));
                expecting = false;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Body byte range of `fn <name>` in the masked view.
fn fn_body(m: &Masked, name: &str) -> Option<std::ops::Range<usize>> {
    crate::lexer::function_bodies(&m.code)
        .into_iter()
        .find(|(n, _, _)| n == name)
        .map(|(_, _, body)| body)
}

/// Top-level `DbError::Variant => …` arms of the outer `match` inside
/// `body`: `(variant, dedicated code if the arm maps straight to a
/// string literal, line)`.
fn match_arms(m: &Masked, body: std::ops::Range<usize>) -> Vec<(String, Option<String>, usize)> {
    let text = &m.code[body.clone()];
    let Some(mstart) = text.find("match") else {
        return Vec::new();
    };
    let Some(open) = text[mstart..].find('{').map(|p| p + mstart) else {
        return Vec::new();
    };
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'(' | b'[' => depth += 1,
            b'}' | b')' | b']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            b'D' if depth == 1 && text[i..].starts_with("DbError::") => {
                let start = i + "DbError::".len();
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let variant = text[start..j].to_string();
                let abs = body.start + i;
                // What does the arm map to? Scan past the pattern and
                // `=>`: a `"` means a dedicated code literal; `match`
                // means a carried/interned nested mapping.
                let code = arm_code(m, body.start, text, j);
                out.push((variant, code, m.line_of(abs)));
                i = j;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// For an arm whose pattern ends near `from`, find what follows `=>`:
/// `Some(code)` for a string literal, `None` for anything else.
fn arm_code(m: &Masked, base: usize, text: &str, from: usize) -> Option<String> {
    let bytes = text.as_bytes();
    let arrow = text[from..].find("=>").map(|p| p + from)?;
    let mut i = arrow + 2;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'"' {
        // Read the literal's contents from the raw source.
        let end = m.raw[base + i + 1..].find('"')? + base + i + 1;
        return Some(m.raw[base + i + 1..end].to_string());
    }
    None
}

/// All string-literal contents within `body` (read from raw; the masked
/// view keeps the quote characters in place).
fn string_literals(m: &Masked, body: std::ops::Range<usize>) -> Vec<String> {
    let bytes = m.code.as_bytes();
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end {
        if bytes[i] == b'"' {
            if let Some(close) = m.code[i + 1..body.end].find('"') {
                let end = i + 1 + close;
                out.push(m.raw[i + 1..end].to_string());
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Rows of the README "Error taxonomy" table: `(code, line)`. `None`
/// when the section is missing entirely.
fn readme_error_rows(readme: &str) -> Option<Vec<(String, usize)>> {
    let mut rows = Vec::new();
    let mut in_section = false;
    let mut found = false;
    for (idx, line) in readme.lines().enumerate() {
        if line.starts_with("##") {
            in_section = line.to_ascii_lowercase().contains("error taxonomy");
            found |= in_section;
            continue;
        }
        if !in_section {
            continue;
        }
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let first = trimmed
            .trim_matches('|')
            .split('|')
            .next()
            .unwrap_or("")
            .trim();
        if let Some(code) = first.strip_prefix('`').and_then(|s| s.strip_suffix('`')) {
            if !code.is_empty() && code.chars().all(|c| c == '_' || c.is_ascii_lowercase()) {
                rows.push((code.to_string(), idx + 1));
            }
        }
    }
    found.then_some(rows)
}
