//! P4 — lock-order pass.
//!
//! The concurrency model (README "Concurrency model") rests on two
//! orderings that nothing but convention enforces:
//!
//! * A function that acquires **two or more head stripes** must take
//!   them in stripe-index order — the shared total order that makes
//!   crossing multi-stripe writers (merge, `WriteBatch`) deadlock-free.
//!   The two sanctioned idioms are sorting the stripe set
//!   (`sort_unstable`) or the two-stripe `min`/`max` pair; a function
//!   with multiple acquisitions and neither idiom is flagged.
//! * The **GC/rebalance gate comes first**: a function that takes a head
//!   stripe and then the gate inverts the order GC relies on
//!   (gate-exclusive ⇒ no stripe holder can be mid-commit) and can
//!   deadlock against `gc::collect`.
//!
//! Scope is all of `crates/core/src` (shipped code; `#[cfg(test)]`
//! regions are ignored). A deliberate exception can carry a
//! `// forkbase-lint: allow(lock-order): <why>` waiver on the `fn` line.

use std::path::Path;

use crate::lexer::{function_bodies, Masked};
use crate::{rust_files_under, Finding};

const PASS: &str = "P4/lock-order";

const STRIPE_TOKEN: &str = "head_locks[";
const GATE_TOKENS: &[&str] = &[
    "gc_gate.read()",
    "gc_gate.write()",
    "gc_shared()",
    "gc_exclusive()",
    "rebalance_gate.read()",
    "rebalance_gate.write()",
];
const ORDER_TOKENS: &[&str] = &["sort_unstable", ".min(", ".max("];

/// Run the pass over `crates/core/src`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rel in rust_files_under(root, "crates/core/src") {
        let Ok(text) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let m = Masked::new(text);
        let shipped = m.code_without_tests();
        for (name, header_off, body) in function_bodies(&shipped) {
            let body_text = &shipped[body.clone()];
            let header_line = m.line_of(header_off);
            if m.has_waiver(header_line, "lock-order") {
                continue;
            }
            let stripe_hits: Vec<usize> = find_all(body_text, STRIPE_TOKEN);
            if stripe_hits.is_empty() {
                continue;
            }
            if stripe_hits.len() >= 2 {
                let first = stripe_hits[0];
                let ordered = ORDER_TOKENS.iter().any(|t| body_text[..first].contains(t));
                if !ordered {
                    findings.push(Finding::new(
                        rel.clone(),
                        m.line_of(body.start + stripe_hits[1]),
                        PASS,
                        format!(
                            "`{name}` acquires {} head stripes without the index-ordering idiom \
                             (sort the stripe set, or min/max a pair) — crossing writers can deadlock",
                            stripe_hits.len()
                        ),
                    ));
                }
            }
            let first_stripe = stripe_hits[0];
            if let Some(first_gate) = GATE_TOKENS.iter().filter_map(|t| body_text.find(t)).min() {
                if first_stripe < first_gate {
                    findings.push(Finding::new(
                        rel.clone(),
                        m.line_of(body.start + first_stripe),
                        PASS,
                        format!(
                            "`{name}` takes a head stripe before the GC/rebalance gate — the gate \
                             must always be acquired first (GC relies on gate ⇒ quiescent stripes)"
                        ),
                    ));
                }
            }
        }
    }
    findings
}

fn find_all(text: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(p) = text[i..].find(token) {
        out.push(i + p);
        i += p + token.len();
    }
    out
}
