//! P3 — capability lint.
//!
//! Two rule groups, both scanned over shipped (non-`#[cfg(test)]`) code:
//!
//! * **Privileged verbs** are only legal from an allowlisted set of
//!   modules: direct ref-table head swings (`branches.write()`),
//!   chunk installs (everything goes through `put_batch`, and only the
//!   batch committer and the bundle importer may call it; raw
//!   single-chunk `store.put(…)` is legal nowhere in core/cli),
//!   `install_ref` (hash-verified bundle import only), and persisting
//!   the `TOPOLOGY` / `FORKS` records.
//! * **No panics in request paths**: `unwrap()` / `expect(` / `panic!`
//!   are denied in the RPC, net, wire, replication, and rate-limit
//!   modules, where a poisoned worker thread kills a servelet. A
//!   genuinely unreachable case can carry a
//!   `// forkbase-lint: allow(no-panic): <why>` waiver on its own or
//!   the preceding line.

use std::path::Path;

use crate::lexer::{find_pattern_ws, Masked};
use crate::{rust_files_under, Finding};

const PASS: &str = "P3/caps";

/// Request-path modules where a panic kills a servelet worker.
const NO_PANIC_FILES: &[&str] = &[
    "crates/core/src/cluster/rpc.rs",
    "crates/core/src/cluster/net.rs",
    "crates/core/src/cluster/wire.rs",
    "crates/core/src/cluster/replication.rs",
    "crates/core/src/cluster/ratelimit.rs",
];

const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect(", "panic!"];

/// Privileged patterns (whitespace-insensitive) and the module
/// allowlists they are legal from.
const CAPABILITIES: &[(&str, &str, &[&str])] = &[
    (
        "branches.write()",
        "raw ref-table head swing",
        &[
            "crates/core/src/api/mod.rs",
            "crates/core/src/api/verbs.rs",
            "crates/core/src/api/batch.rs",
        ],
    ),
    (
        ".put_batch(",
        "chunk install",
        &["crates/core/src/api/batch.rs", "crates/core/src/bundle.rs"],
    ),
    (
        "store.put(",
        "raw single-chunk install (use put_batch)",
        &[],
    ),
    (
        "store().put(",
        "raw single-chunk install (use put_batch)",
        &[],
    ),
    (
        "install_ref(",
        "direct branch-ref install",
        &["crates/core/src/api/mod.rs", "crates/core/src/bundle.rs"],
    ),
    (
        "topology().encode()",
        "TOPOLOGY record write",
        &["crates/cli/src/cluster_cmd.rs"],
    ),
    (
        "topology.encode()",
        "TOPOLOGY record write",
        &["crates/cli/src/cluster_cmd.rs"],
    ),
    (
        "forks.dump()",
        "FORKS record write",
        &["crates/cli/src/cluster_cmd.rs", "crates/cli/src/session.rs"],
    ),
];

/// Run the pass over `crates/core` and `crates/cli` sources.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();

    for rel in NO_PANIC_FILES {
        let Ok(text) = std::fs::read_to_string(root.join(rel)) else {
            continue; // absence is P1/P2's concern, not a panic risk
        };
        let m = Masked::new(text);
        let shipped = m.code_without_tests();
        for token in PANIC_TOKENS {
            for off in find_pattern_ws(&shipped, token) {
                let line = m.line_of(off);
                if m.has_waiver(line, "no-panic") {
                    continue;
                }
                findings.push(Finding::new(
                    *rel,
                    line,
                    PASS,
                    format!(
                        "`{}` in a servelet request path — return a DbError instead (a panic \
                         kills the worker); a provably unreachable case may carry \
                         `// forkbase-lint: allow(no-panic): <why>`",
                        token.trim_start_matches('.')
                    ),
                ));
            }
        }
    }

    let mut files = rust_files_under(root, "crates/core/src");
    files.extend(rust_files_under(root, "crates/cli/src"));
    for rel in &files {
        let Ok(text) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        let m = Masked::new(text);
        let shipped = m.code_without_tests();
        for (pattern, what, allowed) in CAPABILITIES {
            if allowed.contains(&rel.as_str()) {
                continue;
            }
            for off in find_pattern_ws(&shipped, pattern) {
                // Skip the definition site (`fn install_ref(`): a
                // capability is about *calls*.
                if is_definition(&shipped, off) {
                    continue;
                }
                let line = m.line_of(off);
                if m.has_waiver(line, "caps") {
                    continue;
                }
                findings.push(Finding::new(
                    rel.clone(),
                    line,
                    PASS,
                    format!(
                        "{what} (`{pattern}`) outside its allowlisted modules [{}]",
                        allowed.join(", ")
                    ),
                ));
            }
        }
    }
    findings
}

/// Is the pattern occurrence at `off` a `fn name(` definition rather
/// than a call?
fn is_definition(code: &str, off: usize) -> bool {
    let before = &code.as_bytes()[..off];
    let mut i = before.len();
    while i > 0 && (before[i - 1].is_ascii_whitespace()) {
        i -= 1;
    }
    i >= 2
        && &before[i - 2..i] == b"fn"
        && (i == 2 || !(before[i - 3].is_ascii_alphanumeric() || before[i - 3] == b'_'))
}
