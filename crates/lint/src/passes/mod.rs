//! The five lint passes. Each is independently callable with a
//! workspace root, which is how the fixture tests drive them against
//! synthetic trees.

pub mod caps;
pub mod errors;
pub mod format;
pub mod locks;
pub mod wire;

pub(crate) mod lockfile;
pub(crate) mod rust_src;
