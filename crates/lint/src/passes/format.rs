//! P2 — format-constant freeze.
//!
//! The constants pinned here are **on-disk format** (ROADMAP "Format
//! invariants"): changing any of them strands or corrupts every existing
//! store. They are snapshotted in `lint/format.lock`; any drift without
//! an explicit `--bless` (the documented unlock procedure) is a hard
//! failure:
//!
//! * `GAMMA_SEED` — seeds the Γ table; moves every chunk boundary.
//! * The CRC frame layout constants in the pack-file store
//!   (`FRAME_MAGIC`, `HEADER_LEN` = magic(4) len(4) hash(32)) plus the
//!   manifest/tombstone record magics.
//! * `HEAD_STRIPES` — the stripe count the lock-order pass (P4) and the
//!   striped-commit design assume.
//! * The consistent-hash ring-point derivation domain string — moving it
//!   re-routes every key in every persisted topology.
//! * The `TOPOLOGY` and `FORKS` record magics.
//!
//! The pass also enforces the crate-root hygiene rule that rides along
//! with the freeze: every non-vendor crate root carries
//! `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]` with an inline
//! rationale comment when a vendored shim forces an exception).

use std::collections::BTreeMap;
use std::path::Path;

use super::lockfile;
use super::rust_src;
use crate::{read_masked, Finding};

const PASS: &str = "P2/format-freeze";
pub(crate) const LOCK: &str = "lint/format.lock";

/// (file, constant) pairs frozen into the lockfile.
const FROZEN: &[(&str, &str)] = &[
    ("crates/chunk/src/rolling.rs", "GAMMA_SEED"),
    ("crates/store/src/file.rs", "FRAME_MAGIC"),
    ("crates/store/src/file.rs", "HEADER_LEN"),
    ("crates/store/src/file.rs", "MANIFEST_MAGIC"),
    ("crates/store/src/file.rs", "TOMBSTONES_MAGIC"),
    ("crates/core/src/api/mod.rs", "HEAD_STRIPES"),
    ("crates/core/src/cluster/mod.rs", "TOPOLOGY_MAGIC"),
    ("crates/core/src/forks/manager.rs", "FORKS_MAGIC"),
];

/// The ring-point derivation domain prefix: the full literal is captured
/// from the source and locked.
const RING_FILE: &str = "crates/core/src/cluster/mod.rs";
const RING_PREFIX: &str = "b\"forkbase-ring-";

const LOCK_HEADER: &str = "forkbase-lint P2: frozen on-disk format constants.\n\
These values determine chunk boundaries, frame bytes, and key routing in\n\
every existing store. Regenerate ONLY with `cargo run -p forkbase-lint --\n\
--bless` in its own commit, and only for a deliberate, documented format\n\
break (new store-format version + migration story — see README \u{a7} Static\n\
analysis for the unlock procedure).";

const UNLOCK_HINT: &str = "changing an on-disk format constant is a breaking format change; the \
unlock procedure (README \u{a7} Static analysis) requires a deliberate migration story and a \
`--bless`ed lint/format.lock in its own commit";

/// Run the pass. `bless` rewrites the lockfile instead of diffing it.
pub fn run(root: &Path, bless: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut lock: BTreeMap<String, String> = BTreeMap::new();

    let mut files: Vec<&str> = FROZEN.iter().map(|(f, _)| *f).collect();
    files.dedup();
    for file in files {
        let Some(m) = read_masked(root, file, PASS, &mut findings) else {
            continue;
        };
        let consts = rust_src::consts(&m);
        for (_, name) in FROZEN.iter().filter(|(f, _)| *f == file) {
            match consts.iter().find(|c| c.name == *name) {
                Some(c) => {
                    lock.insert(format!("{file} {name}"), c.value.clone());
                }
                None => findings.push(Finding::new(
                    file,
                    0,
                    PASS,
                    format!(
                        "frozen format constant `{name}` not found (renamed? update crates/lint)"
                    ),
                )),
            }
        }
        if file == RING_FILE {
            match extract_literal(&m.raw, RING_PREFIX) {
                Some(lit) => {
                    lock.insert(format!("{file} RING_DOMAIN"), lit);
                }
                None => findings.push(Finding::new(
                    file,
                    0,
                    PASS,
                    format!("ring-point domain literal `{RING_PREFIX}…\"` not found (derivation moved? update crates/lint)"),
                )),
            }
        }
    }

    lockfile::check(
        root,
        LOCK,
        PASS,
        LOCK_HEADER,
        &lock,
        bless,
        UNLOCK_HINT,
        &mut findings,
    );
    forbid_unsafe(root, &mut findings);
    findings
}

/// Capture the full string literal starting with `prefix` (through its
/// closing quote) from raw source text.
fn extract_literal(raw: &str, prefix: &str) -> Option<String> {
    let start = raw.find(prefix)?;
    let rest = &raw[start + prefix.len()..];
    let end = rest.find('"')?;
    Some(format!("{prefix}{}\"", &rest[..end]))
}

/// Crate-root hygiene: `#![forbid(unsafe_code)]` on every non-vendor
/// crate root (libs and binaries).
fn forbid_unsafe(root: &Path, findings: &mut Vec<Finding>) {
    let mut roots: Vec<String> = Vec::new();
    if root.join("src/lib.rs").exists() {
        roots.push("src/lib.rs".into());
    }
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crate_dirs: Vec<_> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "vendor"))
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let name = dir
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            for candidate in ["src/lib.rs", "src/main.rs"] {
                if dir.join(candidate).exists() {
                    roots.push(format!("crates/{name}/{candidate}"));
                }
            }
            if let Ok(bins) = std::fs::read_dir(dir.join("src/bin")) {
                let mut bin_files: Vec<_> = bins
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                    .collect();
                bin_files.sort();
                for bin in bin_files {
                    let file = bin
                        .file_name()
                        .unwrap_or_default()
                        .to_string_lossy()
                        .to_string();
                    roots.push(format!("crates/{name}/src/bin/{file}"));
                }
            }
        }
    }
    for rel in roots {
        let Ok(text) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        if text.contains("#![forbid(unsafe_code)]") {
            continue;
        }
        if let Some(line) = text.lines().find(|l| l.contains("#![deny(unsafe_code)]")) {
            if line.contains("//") {
                continue; // deny with an inline allowlist rationale
            }
            findings.push(Finding::new(
                rel,
                0,
                PASS,
                "`#![deny(unsafe_code)]` needs an inline comment explaining why `forbid` is impossible",
            ));
            continue;
        }
        findings.push(Finding::new(
            rel,
            0,
            PASS,
            "crate root is missing `#![forbid(unsafe_code)]`",
        ));
    }
}
