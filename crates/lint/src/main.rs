#![forbid(unsafe_code)]
//! `forkbase-lint` CLI. See the library docs (`forkbase_lint`) and
//! README § Static analysis for the pass catalogue and the `--bless`
//! unlock procedure.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
forkbase-lint — workspace invariant checker

USAGE:
    cargo run --release -p forkbase-lint [-- OPTIONS]

OPTIONS:
    --bless        Regenerate lint/wire.lock and lint/format.lock from the
                   current sources instead of diffing against them. Run it
                   in its own commit; P1 additionally requires a
                   WIRE_VERSION bump + PROTOCOL.md history row, and P2 a
                   documented format-break migration story.
    --root PATH    Workspace root (default: walk up from the current
                   directory to the first [workspace] Cargo.toml).
    --out PATH     Also write the findings to PATH (CI uploads this as an
                   artifact on failure).
    -h, --help     This text.

Findings are machine-readable, one per line:
    <file>:<line>: [<pass>/<rule>] <message>

Exit status: 0 clean, 1 findings, 2 usage or I/O error.";

fn main() -> ExitCode {
    let mut bless = false;
    let mut root: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bless" => bless = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--out" => match args.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage_error("--out needs a path"),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match forkbase_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    return usage_error("no [workspace] Cargo.toml above the current directory")
                }
            }
        }
    };

    let findings = forkbase_lint::run_all(&root, bless);
    let mut report = String::new();
    for f in &findings {
        report.push_str(&f.to_string());
        report.push('\n');
    }
    print!("{report}");
    if let Some(path) = &out {
        if let Err(e) = std::fs::File::create(path).and_then(|mut f| f.write_all(report.as_bytes()))
        {
            eprintln!("forkbase-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if findings.is_empty() {
        if bless {
            println!(
                "forkbase-lint: lockfiles blessed; commit lint/*.lock in this change's own commit"
            );
        } else {
            println!("forkbase-lint: all invariants hold");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("forkbase-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("forkbase-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
