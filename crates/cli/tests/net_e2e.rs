//! Networked-cluster end-to-end test: real `forkbase serve --servelet`
//! child processes on loopback TCP, a pure-router cluster in this
//! process, a SIGKILL mid-run, and a supervised restart — asserting that
//! **every acked write survives** the crash.
//!
//! Servelet stdout/stderr land in `target/net-e2e/servelet-N.log`; on
//! failure the test leaves logs and data directories in place so the CI
//! `net` job can upload them as artifacts.

use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use forkbase::{Cluster, ClusterTopology, PutOptions, RpcConfig, Supervisor, TopoRole};
use forkbase_postree::TreeConfig;
use forkbase_store::MemStore;

/// `target/net-e2e/` at the workspace root (a stable path CI can upload).
fn e2e_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/net-e2e")
        .join(format!("run-{}", std::process::id()))
}

fn spawn_servelet(data: &Path, log: &Path, addr: &str) -> Child {
    let logf = OpenOptions::new()
        .create(true)
        .append(true)
        .open(log)
        .expect("open servelet log");
    Command::new(env!("CARGO_BIN_EXE_forkbase"))
        .arg("serve")
        .arg("--servelet")
        .arg(addr)
        .arg("--data")
        .arg(data)
        .stdin(Stdio::null())
        .stdout(Stdio::from(logf.try_clone().expect("clone log handle")))
        .stderr(Stdio::from(logf))
        .spawn()
        .expect("spawn servelet process")
}

/// Poll the servelet's log until it prints its resolved listen address.
fn wait_for_addr(log: &Path) -> String {
    let give_up = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(log) {
            if let Some(line) = text
                .lines()
                .find(|l| l.starts_with("forkbase servelet listening on "))
            {
                return line
                    .trim_start_matches("forkbase servelet listening on ")
                    .trim()
                    .to_string();
            }
        }
        assert!(
            Instant::now() < give_up,
            "servelet never reported its address; log: {log:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Kills every child on drop so a failing assert never leaks processes
/// (the logs and data directories stay behind for artifact upload).
struct Fleet(Arc<Mutex<Vec<Child>>>);

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in self.0.lock().unwrap().iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[test]
fn networked_cluster_survives_kill_and_restart_without_losing_acked_writes() {
    let root = e2e_root();
    std::fs::create_dir_all(&root).unwrap();
    let datas: Vec<PathBuf> = (0..2).map(|i| root.join(format!("servelet-{i}"))).collect();
    let logs: Vec<PathBuf> = (0..2)
        .map(|i| root.join(format!("servelet-{i}.log")))
        .collect();

    // Two standalone servelet processes over their own durable stores.
    let children = Arc::new(Mutex::new(Vec::new()));
    let fleet = Fleet(Arc::clone(&children));
    let mut addrs = Vec::new();
    for i in 0..2usize {
        let child = spawn_servelet(&datas[i], &logs[i], "127.0.0.1:0");
        children.lock().unwrap().push(child);
        addrs.push(wait_for_addr(&logs[i]));
    }

    // A pure router: no local store at all, every verb crosses the wire.
    let topology = ClusterTopology {
        servelet_ids: vec![0, 1],
        addrs: addrs.iter().cloned().map(Some).collect(),
        roles: vec![
            TopoRole::Primary { anchor: 0 },
            TopoRole::Primary { anchor: 1 },
        ],
        next_id: 2,
    };
    let cluster: Arc<Cluster<MemStore>> =
        Arc::new(Cluster::connect(&topology, TreeConfig::default()).unwrap());
    cluster.set_rpc_config(RpcConfig {
        control_deadline: Duration::from_secs(20),
        ..RpcConfig::default()
    });

    // Supervised restarts re-exec the dead servelet's process on its old
    // address over its old (durable) data directory.
    {
        let children = Arc::clone(&children);
        let datas = datas.clone();
        let root = root.clone();
        cluster.set_remote_respawn(move |id, addr| {
            let log = root.join(format!("servelet-{id}.log"));
            let child = spawn_servelet(&datas[id as usize], &log, addr);
            children.lock().unwrap().push(child);
            Ok(())
        });
    }

    // Acked writes: anything put_string returns Ok for MUST survive.
    let mut acked = Vec::new();
    for i in 0..40 {
        let key = format!("net-key-{i:02}");
        let val = format!("payload {i} written before the crash");
        cluster
            .put_string(&key, val.clone(), PutOptions::default())
            .unwrap();
        acked.push((key, val));
    }
    // The workload must span both servelets or the kill proves nothing.
    let owners: std::collections::HashSet<u64> =
        acked.iter().map(|(k, _)| cluster.owner_id(k)).collect();
    assert_eq!(owners.len(), 2, "workload landed on one servelet only");

    // SIGKILL the servelet owning the first key — no shutdown hook, no
    // final flush: exactly the crash the ack-after-persist rule is for.
    let victim_key = acked[0].0.clone();
    let victim_id = cluster.owner_id(&victim_key);
    {
        let mut kids = children.lock().unwrap();
        let victim = &mut kids[victim_id as usize];
        victim.kill().unwrap();
        victim.wait().unwrap();
    }

    // While down: structured unavailability naming the victim, and the
    // surviving servelet keeps serving reads and writes.
    let err = cluster.get(&victim_key, "master").unwrap_err();
    assert_eq!(err.code(), "servelet_unavailable", "got {err}");
    let survivor_entry = acked
        .iter()
        .find(|(k, _)| cluster.owner_id(k) != victim_id)
        .unwrap();
    assert_eq!(
        cluster
            .get(&survivor_entry.0, "master")
            .unwrap()
            .value
            .as_str(),
        Some(survivor_entry.1.as_str())
    );
    let live_key = (0..)
        .map(|i| format!("during-outage-{i}"))
        .find(|k| cluster.owner_id(k) != victim_id)
        .unwrap();
    cluster
        .put_string(
            &live_key,
            "written during the outage".into(),
            PutOptions::default(),
        )
        .unwrap();
    acked.push((live_key, "written during the outage".into()));

    // Supervisor heals the cluster: probe → dead → remote respawn on the
    // same address → probe until live again.
    let supervisor = Supervisor::spawn(Arc::clone(&cluster), Duration::from_millis(200));
    let give_up = Instant::now() + Duration::from_secs(30);
    loop {
        if cluster.get(&victim_key, "master").is_ok() {
            break;
        }
        assert!(
            Instant::now() < give_up,
            "servelet {victim_id} never came back after the kill"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    supervisor.stop();

    // Zero acked writes lost: every Ok'd put reads back byte-identical,
    // including everything the killed servelet acked before dying.
    for (key, val) in &acked {
        let got = cluster.get(key, "master").unwrap();
        assert_eq!(
            got.value.as_str(),
            Some(val.as_str()),
            "acked write {key} lost across the crash"
        );
    }
    // And the restarted servelet still accepts new writes.
    cluster
        .put_string(
            &victim_key,
            "written after the restart".into(),
            PutOptions::default(),
        )
        .unwrap();
    assert_eq!(
        cluster.get(&victim_key, "master").unwrap().value.as_str(),
        Some("written after the restart")
    );

    // Success: tear down and clean up (failures leave everything behind
    // for the CI artifact upload).
    drop(fleet);
    let _ = std::fs::remove_dir_all(&root);
}
