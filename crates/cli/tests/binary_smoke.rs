//! True end-to-end smoke tests: drive the compiled `forkbase` binary as a
//! subprocess against a durable on-disk store, exactly as a user would.

use std::path::PathBuf;
use std::process::Command;

fn temp_data(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fkb-bin-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(data: &std::path::Path, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_forkbase"))
        .arg("--data")
        .arg(data)
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn full_workflow_across_process_restarts() {
    let data = temp_data("workflow");

    // Each command is a separate PROCESS: state must round-trip disk.
    let (ok, out, err) = run(&data, &["put", "greeting", "hello from process 1"]);
    assert!(ok, "put failed: {err}");
    assert!(out.contains("master -> "));

    let (ok, out, _) = run(&data, &["get", "greeting"]);
    assert!(ok);
    assert!(out.contains("hello from process 1"));

    let (ok, _, _) = run(&data, &["branch", "greeting", "dev"]);
    assert!(ok);
    let (ok, _, _) = run(
        &data,
        &["put", "greeting", "dev version", "--branch", "dev"],
    );
    assert!(ok);

    let (ok, out, _) = run(&data, &["diff", "greeting", "dev"]);
    assert!(ok);
    assert!(out.contains("dev version"));

    let (ok, out, _) = run(&data, &["history", "greeting", "--branch", "dev"]);
    assert!(ok);
    assert_eq!(out.trim().lines().count(), 2, "history: {out}");

    let (ok, out, _) = run(&data, &["verify", "greeting", "--branch", "dev"]);
    assert!(ok);
    assert!(out.contains("OK: verified 2"));

    let (ok, out, _) = run(&data, &["stat"]);
    assert!(ok);
    assert!(out.contains("keys:          1"));

    std::fs::remove_dir_all(&data).unwrap();
}

#[test]
fn csv_file_loading_via_at_syntax() {
    let data = temp_data("csvfile");
    let csv_path = std::env::temp_dir().join(format!("fkb-bin-csv-{}.csv", std::process::id()));
    std::fs::write(&csv_path, "id,name\n1,alpha\n2,beta\n").unwrap();

    let (ok, out, err) = run(
        &data,
        &["load-csv", "ds", &format!("@{}", csv_path.display())],
    );
    assert!(ok, "load-csv failed: {err}");
    assert!(out.contains("loaded -> "));

    let (ok, out, _) = run(&data, &["export-csv", "ds"]);
    assert!(ok);
    assert!(out.contains("1,alpha"));
    assert!(out.contains("2,beta"));

    let (ok, out, _) = run(&data, &["prove", "ds", "2"]);
    assert!(ok, "prove failed");
    assert!(out.contains("present"));

    std::fs::remove_file(&csv_path).unwrap();
    std::fs::remove_dir_all(&data).unwrap();
}

#[test]
fn bundle_transfer_between_data_dirs() {
    let src = temp_data("bundle-src");
    let dst = temp_data("bundle-dst");
    let bundle = std::env::temp_dir().join(format!("fkb-bin-bundle-{}", std::process::id()));

    run(&src, &["put", "doc", "shared document"]);
    let (ok, _, err) = run(&src, &["bundle-export", "doc", bundle.to_str().unwrap()]);
    assert!(ok, "export failed: {err}");

    let (ok, out, err) = run(&dst, &["bundle-import", bundle.to_str().unwrap()]);
    assert!(ok, "import failed: {err}");
    assert!(out.contains("doc@master"));

    let (ok, out, _) = run(&dst, &["get", "doc"]);
    assert!(ok);
    assert!(out.contains("shared document"));

    std::fs::remove_file(&bundle).unwrap();
    std::fs::remove_dir_all(&src).unwrap();
    std::fs::remove_dir_all(&dst).unwrap();
}

#[test]
fn bad_usage_exits_nonzero() {
    let data = temp_data("badusage");
    let (ok, _, err) = run(&data, &["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("usage"));
    let (ok, _, err) = run(&data, &["get", "missing-key"]);
    assert!(!ok);
    assert!(err.contains("no such key"));
    std::fs::remove_dir_all(&data).unwrap();
}

#[test]
fn cluster_workflow_across_process_restarts() {
    let data = temp_data("cluster");

    let (ok, out, err) = run(&data, &["cluster", "init", "3"]);
    assert!(ok, "init failed: {err}");
    assert!(out.contains("initialized 3-servelet cluster"));
    // Re-init is refused.
    let (ok, _, err) = run(&data, &["cluster", "init", "2"]);
    assert!(!ok, "double init must fail");
    assert!(err.contains("already initialized"));

    // Each command is a separate PROCESS: topology, refs, and chunks must
    // all round-trip disk, and routing must stay identical.
    for i in 0..12 {
        let (ok, out, err) = run(
            &data,
            &[
                "cluster",
                "put",
                &format!("doc-{i}"),
                &format!("payload {i}"),
            ],
        );
        assert!(ok, "cluster put failed: {err}");
        assert!(out.contains("servelet "), "{out}");
    }
    let (ok, out, _) = run(&data, &["cluster", "keys"]);
    assert!(ok);
    assert_eq!(out.trim().lines().count(), 12);

    // Atomic per-servelet batch from a fresh process.
    let (ok, out, _) = run(
        &data,
        &["cluster", "batch", "put:doc-0=edited", "put:extra=new"],
    );
    assert!(ok, "{out}");

    // Live rebalance: grow, then shrink, across process boundaries.
    let (ok, out, err) = run(&data, &["cluster", "add"]);
    assert!(ok, "add failed: {err}");
    assert!(out.contains("servelet 3 joined"), "{out}");
    let (ok, out, err) = run(&data, &["cluster", "remove", "0"]);
    assert!(ok, "remove failed: {err}");
    assert!(out.contains("servelet 0 drained"), "{out}");

    // Every key survived the moves and still reads correctly.
    let (ok, out, _) = run(&data, &["cluster", "get", "doc-0"]);
    assert!(ok);
    assert!(out.contains("edited"), "{out}");
    for i in 1..12 {
        let (ok, out, _) = run(&data, &["cluster", "get", &format!("doc-{i}")]);
        assert!(ok);
        assert!(out.contains(&format!("payload {i}")), "{out}");
    }
    let (ok, out, _) = run(&data, &["cluster", "stats"]);
    assert!(ok);
    assert!(out.contains("cluster: 3 servelet(s), 13 key(s)"), "{out}");

    // The single-node verbs still work beside the cluster tree.
    let (ok, _, _) = run(&data, &["put", "solo", "standalone"]);
    assert!(ok);

    std::fs::remove_dir_all(&data).unwrap();
}
