#![forbid(unsafe_code)]
//! Command-line and RESTful interfaces for ForkBase (paper Fig. 1,
//! "Semantic Views": *Command Line scripting* and *RESTful* access).
//!
//! The [`commands`] module implements the verb set as a pure function
//! from argument vectors to output text, so the same code path serves the
//! binary, the tests, and the REST server. The [`rest`] module is a
//! deliberately small HTTP/1.1 server on `std::net` — no async stack, one
//! thread per connection — exposing the core verbs at predictable paths.

pub mod cluster_cmd;
pub mod commands;
pub mod fork_cmd;
pub mod rest;
pub mod session;

pub use cluster_cmd::{run_cluster_command, serve_servelet, ClusterSession};
pub use commands::run_command;
pub use fork_cmd::run_fork_command;
pub use rest::{ClusterRestServer, RestServer};
pub use session::Session;
