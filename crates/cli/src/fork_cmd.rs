//! The `forkbase fork …` verb family: leased writable sandboxes.
//!
//! ```text
//! fork create [--base BRANCH | --version UID] [--ttl SECS] [--id ID]
//! fork list
//! fork info ID
//! fork touch ID [--ttl SECS]
//! fork drop ID
//! fork diff ID
//! fork get ID KEY
//! fork put ID KEY VALUE [--author A] [--message M]
//! ```
//!
//! Implemented as a pure function over any [`ForkBackend`], so the same
//! code path drives a single-node [`forkbase::ForkBase`] session and a
//! [`forkbase::Cluster`] session (`forkbase cluster fork …`). The fork
//! registry itself lives in the caller's [`ForkService`], which the CLI
//! sessions persist to a `FORKS` record next to the branch heads — a
//! reopened session resumes every lease where it left off.

use forkbase::{DbError, DbResult, ForkBackend, ForkInfo, ForkService, PutOptions, VersionSpec};
use forkbase_types::Value;

/// Run one `fork` subcommand against `backend`, returning its textual
/// output. `args` excludes the `fork` verb itself.
pub fn run_fork_command<B: ForkBackend + ?Sized>(
    forks: &ForkService,
    backend: &B,
    args: &[&str],
) -> DbResult<String> {
    let usage = || -> DbError {
        DbError::InvalidInput(
            "usage: fork create [--base BRANCH | --version UID] [--ttl SECS] [--id ID] | \
             fork list | fork info ID | fork touch ID [--ttl SECS] | fork drop ID | \
             fork diff ID | fork get ID KEY | fork put ID KEY VALUE"
                .into(),
        )
    };
    let Some((&verb, rest)) = args.split_first() else {
        return Err(usage());
    };
    // Flag parsing mirrors the main verb set: positionals plus
    // `--base/--version/--ttl/--id/--author/--message` options.
    let mut positional = Vec::new();
    let mut base: Option<String> = None;
    let mut version: Option<String> = None;
    let mut ttl: Option<u64> = None;
    let mut id_flag: Option<String> = None;
    let mut author = "cli".to_string();
    let mut message = String::new();
    let mut it = rest.iter();
    while let Some(&a) = it.next() {
        let mut value = |flag: &str| -> DbResult<String> {
            it.next()
                .map(|v| v.to_string())
                .ok_or_else(|| DbError::InvalidInput(format!("{flag} needs a value")))
        };
        match a {
            "--base" => base = Some(value("--base")?),
            "--version" => version = Some(value("--version")?),
            "--ttl" => {
                ttl = Some(value("--ttl")?.parse().map_err(|_| {
                    DbError::InvalidInput("--ttl must be a number of seconds".into())
                })?)
            }
            "--id" => id_flag = Some(value("--id")?),
            "--author" => author = value("--author")?,
            "--message" => message = value("--message")?,
            other => positional.push(other),
        }
    }
    let pos = |i: usize| -> DbResult<&str> { positional.get(i).copied().ok_or_else(usage) };
    let now = forks.clock().now();

    match verb {
        "create" => {
            let base = match (version, base) {
                (Some(v), _) => VersionSpec::Version(
                    forkbase::Uid::from_base32(&v)
                        .or_else(|| forkbase::Uid::from_hex(&v))
                        .ok_or_else(|| DbError::InvalidInput(format!("not a version id: {v:?}")))?,
                ),
                (None, b) => VersionSpec::Branch(b.unwrap_or_else(|| "master".to_string())),
            };
            let info = forks.create(base, ttl, id_flag)?;
            Ok(format!(
                "created fork {} (branch {}, expires in {} s)",
                info.id,
                info.branch(),
                info.lease.remaining_at(now)
            ))
        }
        "list" => {
            let mut out = String::new();
            for info in forks.list() {
                out.push_str(&render_info(&info, now));
                out.push('\n');
            }
            Ok(out)
        }
        "info" => Ok(render_info(&forks.info(pos(0)?)?, now)),
        "touch" => {
            let info = forks.touch(pos(0)?, ttl)?;
            Ok(format!(
                "fork {} renewed, expires in {} s",
                info.id,
                info.lease.remaining_at(now)
            ))
        }
        "drop" => {
            let id = pos(0)?;
            let n = forks.drop_fork(backend, id)?;
            Ok(format!("dropped fork {id} ({n} branch(es) deleted)"))
        }
        "diff" => {
            let diff = forks.diff(backend, pos(0)?)?;
            let mut out = format!(
                "fork {}: {} changed key(s) of {}\n",
                diff.fork,
                diff.changed_keys(),
                diff.keys.len()
            );
            for k in &diff.keys {
                let what = match (&k.base, &k.summary) {
                    (None, _) => "created".to_string(),
                    (Some(_), Some(s)) if s.is_identical() => "identical".to_string(),
                    (Some(_), Some(s)) => match s.map_changes() {
                        Some(n) => format!("{n} entr(ies) changed"),
                        None => "modified".to_string(),
                    },
                    (Some(_), None) => "modified".to_string(),
                };
                out.push_str(&format!("{}\t{}\t{}\n", k.key, k.head, what));
            }
            Ok(out)
        }
        "get" => {
            let got = forks.get(backend, pos(0)?, pos(1)?)?;
            Ok(format!("{}\n(version {})", got.value.summary(), got.uid))
        }
        "put" => {
            let opts = PutOptions {
                branch: String::new(), // the service owns branch placement
                author,
                message,
            };
            let commit = forks.put(backend, pos(0)?, pos(1)?, Value::string(pos(2)?), &opts)?;
            Ok(format!("{} -> {}", commit.branch, commit.uid))
        }
        _ => Err(usage()),
    }
}

/// One registry line: id, branch, liveness, lease budget, write count.
fn render_info(info: &ForkInfo, now: u64) -> String {
    let state = if info.lease.live_at(now) {
        format!("live, {} s left", info.lease.remaining_at(now))
    } else {
        "expired (awaiting reaper)".to_string()
    };
    let base = match &info.base {
        VersionSpec::Branch(b) => format!("branch {b}"),
        VersionSpec::Version(u) => format!("version {u}"),
    };
    format!(
        "{}\t{}\tbase {}\t{}\t{} write(s), {} key(s)",
        info.id,
        info.branch(),
        base,
        state,
        info.writes,
        info.touched.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase::ForkBase;
    use forkbase_postree::TreeConfig;
    use forkbase_store::MemStore;

    fn db() -> ForkBase<MemStore> {
        ForkBase::with_config(MemStore::new(), TreeConfig::test_config())
    }

    #[test]
    fn fork_verb_family_end_to_end() {
        let db = db();
        let forks = ForkService::new();
        crate::run_command(&db, &["put", "doc", "base"]).unwrap();

        let out =
            run_fork_command(&forks, &db, &["create", "--id", "scratch", "--ttl", "300"]).unwrap();
        assert!(out.contains("created fork scratch"), "{out}");
        assert!(out.contains("fork/scratch"), "{out}");

        // Pass-through read, then an isolated write.
        let out = run_fork_command(&forks, &db, &["get", "scratch", "doc"]).unwrap();
        assert!(out.contains("base"), "{out}");
        let out = run_fork_command(&forks, &db, &["put", "scratch", "doc", "edited"]).unwrap();
        assert!(out.starts_with("fork/scratch -> "), "{out}");
        assert!(crate::run_command(&db, &["get", "doc"])
            .unwrap()
            .contains("base"));

        let out = run_fork_command(&forks, &db, &["list"]).unwrap();
        assert!(out.contains("scratch") && out.contains("live"), "{out}");
        let out = run_fork_command(&forks, &db, &["diff", "scratch"]).unwrap();
        assert!(out.contains("1 changed key(s) of 1"), "{out}");

        let out = run_fork_command(&forks, &db, &["touch", "scratch", "--ttl", "900"]).unwrap();
        assert!(out.contains("900"), "{out}");
        let out = run_fork_command(&forks, &db, &["drop", "scratch"]).unwrap();
        assert!(out.contains("1 branch(es) deleted"), "{out}");
        assert!(db.list_branches("doc").unwrap().len() == 1);
    }

    #[test]
    fn fork_errors_are_reported() {
        let db = db();
        let forks = ForkService::new();
        assert!(run_fork_command(&forks, &db, &[]).is_err());
        assert!(run_fork_command(&forks, &db, &["bogus"]).is_err());
        assert!(run_fork_command(&forks, &db, &["create", "--ttl", "abc"]).is_err());
        assert!(run_fork_command(&forks, &db, &["create", "--version", "zz"]).is_err());
        let err = run_fork_command(&forks, &db, &["get", "ghost", "k"]).unwrap_err();
        assert_eq!(err.code(), "fork_expired");
    }
}
