#![forbid(unsafe_code)]
//! The `forkbase` command-line tool.
//!
//! ```text
//! forkbase --data DIR <verb> [args…]        run one verb against a durable store
//! forkbase --data DIR fork <sub> [args…]    manage leased fork sandboxes
//!                                           (create | list | info | touch | drop |
//!                                            diff | get | put)
//! forkbase --data DIR serve [PORT]          start the REST server
//! forkbase serve --servelet ADDR --data DIR run a standalone servelet process
//!                                           (wire protocol on ADDR, FileStore at DIR)
//! forkbase --data DIR cluster <sub> [args]  drive the elastic sharded cluster
//!                                           (init N | put | get | batch | range |
//!                                            add | add-remote ADDR | remove ID |
//!                                            add-replica PID | add-remote-replica PID ADDR |
//!                                            promote ID | replication-status |
//!                                            keys | stats | gc | topology |
//!                                            health | restart ID | serve [PORT] |
//!                                            fork <sub> …)
//! ```
//!
//! Run with no arguments for the verb list. The data directory defaults to
//! `.forkbase` (or `$FORKBASE_DATA`).

use std::process::ExitCode;

use forkbase_cli::{
    run_cluster_command, run_command, run_fork_command, ClusterRestServer, ClusterSession,
    RestServer, Session,
};

/// Default per-peer admission policy for the REST gateways: generous
/// enough that a human or a well-behaved script never sees it, tight
/// enough that one runaway client cannot monopolize the thread-per-
/// connection server. Shed requests answer `429` + `retry-after`.
fn gateway_rate_limiter() -> std::sync::Arc<forkbase::RateLimiter> {
    std::sync::Arc::new(forkbase::RateLimiter::new(forkbase::RateLimit::new(
        500.0, 1000.0,
    )))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut data_dir = std::env::var("FORKBASE_DATA").unwrap_or_else(|_| ".forkbase".into());
    let mut rest: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--data" {
            match it.next() {
                Some(d) => data_dir = d.clone(),
                None => {
                    eprintln!("--data needs a directory");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            rest.push(a.as_str());
        }
    }

    // The cluster verb family manages its own multi-servelet layout under
    // the data directory; it never opens the single-node store.
    if rest.first().copied() == Some("cluster") {
        return cluster_main(&data_dir, &rest[1..]);
    }

    // A standalone servelet process: no REST, no routing — just the wire
    // protocol on a socket over its own durable store. Routers reach it
    // via `cluster add-remote ADDR` or a TOPOLOGY record with addresses.
    if rest.first().copied() == Some("serve") && rest.get(1).copied() == Some("--servelet") {
        let Some(addr) = rest.get(2) else {
            eprintln!("error: serve --servelet needs an address (e.g. 127.0.0.1:8700)");
            return ExitCode::FAILURE;
        };
        let server = match forkbase_cli::serve_servelet(addr, &data_dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to start servelet on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("forkbase servelet listening on {}", server.addr());
        println!("data directory: {data_dir}");
        println!("press Ctrl-C to stop");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(60));
        }
    }

    let session = match Session::open(&data_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to open database at {data_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if rest.first().copied() == Some("serve") {
        let port: u16 = rest.get(1).and_then(|p| p.parse().ok()).unwrap_or(8642);
        let server = match RestServer::start_configured(
            session.db_arc(),
            port,
            session.forks_arc(),
            Some(gateway_rate_limiter()),
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to bind port {port}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("forkbase REST server listening on http://{}", server.addr());
        println!("data directory: {data_dir}");
        println!("press Ctrl-C to stop");
        // Persist refs periodically so a Ctrl-C loses at most 5 s of head
        // movement (chunks themselves are always durable). The same beat
        // reaps expired fork sandboxes — their branches are deleted and
        // the next `gc` reclaims their chunks.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(5));
            let report = session.forks().reap_expired(session.db());
            if !report.reaped.is_empty() {
                println!(
                    "reaped {} expired fork(s): {}",
                    report.reaped.len(),
                    report.reaped.join(", ")
                );
            }
            if let Err(e) = session.save() {
                eprintln!("warning: failed to persist refs: {e}");
            }
        }
    }

    if rest.first().copied() == Some("fork") {
        return match run_fork_command(session.forks(), session.db(), &rest[1..]) {
            Ok(output) => {
                if !output.is_empty() {
                    println!("{output}");
                }
                if let Err(e) = session.save() {
                    eprintln!("warning: failed to persist state: {e}");
                    return ExitCode::FAILURE;
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match run_command(session.db(), &rest) {
        Ok(output) => {
            if !output.is_empty() {
                println!("{output}");
            }
            if let Err(e) = session.save() {
                eprintln!("warning: failed to persist refs: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cluster_main(data_dir: &str, args: &[&str]) -> ExitCode {
    let session = if args.first().copied() == Some("init") {
        let Some(n) = args.get(1).and_then(|n| n.parse::<usize>().ok()) else {
            eprintln!("error: cluster init needs a servelet count (cluster init N)");
            return ExitCode::FAILURE;
        };
        match ClusterSession::init(data_dir, n) {
            Ok(s) => {
                println!("initialized {n}-servelet cluster under {data_dir}/cluster");
                s
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match ClusterSession::open(data_dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    if args.first().copied() == Some("serve") {
        let port: u16 = args.get(1).and_then(|p| p.parse().ok()).unwrap_or(8643);
        let server = match ClusterRestServer::start_configured(
            session.cluster_arc(),
            port,
            forkbase_cli::rest::DEFAULT_CONNECTION_LIMIT,
            session.forks_arc(),
            Some(gateway_rate_limiter()),
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to bind port {port}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Self-heal while serving: probe every 2 s and restart dead
        // servelets from their durable backends (packs + refs files).
        // After 5 consecutive failed probes (~10 s down) a primary with a
        // caught-up replica is failed over instead of restarted in place.
        // The fork-sandbox reaper rides the same tick: expired leases are
        // collected every pass, their branches dropped cluster-wide.
        session.cluster_arc().set_failover_threshold(Some(5));
        let reaper_forks = session.forks_arc();
        let _supervisor = forkbase::Supervisor::spawn_with_tick(
            session.cluster_arc(),
            std::time::Duration::from_secs(2),
            move |cluster| {
                let _ = reaper_forks.reap_expired(cluster);
            },
        );
        println!(
            "forkbase cluster gateway listening on http://{}",
            server.addr()
        );
        println!("data directory: {data_dir}/cluster (supervised)");
        println!("press Ctrl-C to stop");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(5));
            if let Err(e) = session.save() {
                eprintln!("warning: failed to persist cluster state: {e}");
            }
        }
    }

    let output = if args.first().copied() == Some("init") {
        Ok(String::new())
    } else {
        run_cluster_command(&session, args)
    };
    // Persist even when the command failed: a routed batch commits per
    // servelet (groups on earlier slots stay committed on error by
    // contract), and those heads must survive the process. A successful
    // `remove` already saved (it must, before deleting the drained
    // directory) — don't repeat the full sync.
    let saved = if args.first().copied() == Some("remove") && output.is_ok() {
        Ok(())
    } else {
        session.save()
    };
    match output {
        Ok(output) => {
            if !output.is_empty() {
                println!("{output}");
            }
            if let Err(e) = saved {
                eprintln!("warning: failed to persist cluster state: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            if let Err(e) = saved {
                eprintln!("warning: failed to persist cluster state: {e}");
            }
            ExitCode::FAILURE
        }
    }
}
