//! The `forkbase` command-line tool.
//!
//! ```text
//! forkbase --data DIR <verb> [args…]     run one verb against a durable store
//! forkbase --data DIR serve [PORT]       start the REST server
//! ```
//!
//! Run with no arguments for the verb list. The data directory defaults to
//! `.forkbase` (or `$FORKBASE_DATA`).

use std::process::ExitCode;

use forkbase_cli::{run_command, RestServer, Session};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut data_dir = std::env::var("FORKBASE_DATA").unwrap_or_else(|_| ".forkbase".into());
    let mut rest: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--data" {
            match it.next() {
                Some(d) => data_dir = d.clone(),
                None => {
                    eprintln!("--data needs a directory");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            rest.push(a.as_str());
        }
    }

    let session = match Session::open(&data_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to open database at {data_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if rest.first().copied() == Some("serve") {
        let port: u16 = rest.get(1).and_then(|p| p.parse().ok()).unwrap_or(8642);
        let server = match RestServer::start(session.db_arc(), port) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to bind port {port}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("forkbase REST server listening on http://{}", server.addr());
        println!("data directory: {data_dir}");
        println!("press Ctrl-C to stop");
        // Persist refs periodically so a Ctrl-C loses at most 5 s of head
        // movement (chunks themselves are always durable).
        loop {
            std::thread::sleep(std::time::Duration::from_secs(5));
            if let Err(e) = session.save() {
                eprintln!("warning: failed to persist refs: {e}");
            }
        }
    }

    match run_command(session.db(), &rest) {
        Ok(output) => {
            if !output.is_empty() {
                println!("{output}");
            }
            if let Err(e) = session.save() {
                eprintln!("warning: failed to persist refs: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
