//! The `cluster` verb family: an elastic sharded ForkBase over a
//! directory of durable [`FileStore`] servelets.
//!
//! Layout under `<root>/cluster/`:
//!
//! ```text
//! <root>/cluster/TOPOLOGY               — servelet ids + next id (stable routing)
//! <root>/cluster/servelet-<id>/chunks/  — that servelet's pack files
//! <root>/cluster/servelet-<id>/refs     — that servelet's branch heads
//! ```
//!
//! Every servelet runs its own worker thread with a private
//! `ForkBase<FileStore>`; the topology record makes routing a pure
//! function of the persisted servelet ids, so reopening the directory
//! routes every key exactly as before. `add`/`remove` rebalance live:
//! only the keys whose ring owner changed migrate, each with its full
//! branch/version history and byte-identical chunk addresses.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use forkbase::{Cluster, ClusterTopology, DbError, DbResult, PutOptions};
use forkbase_store::FileStore;
use forkbase_types::Value;

fn io_err(e: std::io::Error) -> DbError {
    DbError::Store(forkbase_store::StoreError::Io(e))
}

/// Durably replace `path` with `contents`: write a tmp file, fsync it,
/// atomically rename it into place, then fsync the parent directory —
/// the same protocol the chunk store uses for its MANIFEST. Required
/// here because cluster rebalance deletes the migrated keys' previous
/// on-disk copy right after these files are written.
fn write_durable(path: &Path, contents: &str) -> DbResult<()> {
    let tmp = path.with_extension("tmp");
    (|| -> std::io::Result<()> {
        {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, contents.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            std::fs::File::open(parent)?.sync_all()?;
        }
        Ok(())
    })()
    .map_err(io_err)
}

/// Start a standalone servelet process: a [`forkbase::ServeletServer`]
/// executing wire requests against a durable [`FileStore`] under `root`
/// (layout `<root>/chunks` + `<root>/refs`, the single-node session
/// layout). Every mutating request syncs the store and durably rewrites
/// the refs file **before** it is acked — kill -9 after an ack never
/// loses the write. This is what `forkbase serve --servelet ADDR` runs.
pub fn serve_servelet(addr: &str, root: impl AsRef<Path>) -> DbResult<forkbase::ServeletServer> {
    let root = root.as_ref().to_path_buf();
    let store = FileStore::open(root.join("chunks"))?;
    let db = Arc::new(forkbase::ForkBase::new(store));
    let refs_path = root.join("refs");
    if refs_path.exists() {
        let text = std::fs::read_to_string(&refs_path).map_err(io_err)?;
        db.load_refs(&text)?;
    }
    let persist: forkbase::PersistFn<FileStore> = Arc::new(move |db| {
        forkbase_store::ChunkStore::sync(db.store())?;
        write_durable(&refs_path, &db.dump_refs())
    });
    forkbase::ServeletServer::spawn(addr, db, Some(persist))
}

/// A durable cluster bound to an on-disk directory.
pub struct ClusterSession {
    cluster: Arc<Cluster<FileStore>>,
    root: PathBuf,
}

impl ClusterSession {
    fn cluster_dir(root: &Path) -> PathBuf {
        root.join("cluster")
    }

    fn topology_path(root: &Path) -> PathBuf {
        Self::cluster_dir(root).join("TOPOLOGY")
    }

    fn servelet_dir(root: &Path, id: u64) -> PathBuf {
        Self::cluster_dir(root).join(format!("servelet-{id}"))
    }

    /// Initialize a fresh cluster of `n` servelets under `root`. Refuses
    /// to clobber an existing topology.
    pub fn init(root: impl AsRef<Path>, n: usize) -> DbResult<ClusterSession> {
        let root = root.as_ref();
        if n == 0 {
            return Err(DbError::InvalidInput(
                "a cluster needs at least one servelet".into(),
            ));
        }
        let topo_path = Self::topology_path(root);
        if topo_path.exists() {
            return Err(DbError::InvalidInput(format!(
                "cluster already initialized at {}",
                topo_path.display()
            )));
        }
        std::fs::create_dir_all(Self::cluster_dir(root)).map_err(io_err)?;
        let topology = ClusterTopology::local((0..n as u64).collect(), n as u64);
        std::fs::write(&topo_path, topology.encode()).map_err(io_err)?;
        Self::open(root)
    }

    /// Open the cluster persisted under `root`.
    pub fn open(root: impl AsRef<Path>) -> DbResult<ClusterSession> {
        let root = root.as_ref().to_path_buf();
        let topo_path = Self::topology_path(&root);
        let text = std::fs::read_to_string(&topo_path).map_err(|e| {
            DbError::InvalidInput(format!(
                "no cluster at {} ({e}); run `cluster init N` first",
                topo_path.display()
            ))
        })?;
        let topology = ClusterTopology::parse(&text)?;
        let open_root = root.clone();
        let cluster = Cluster::from_topology(
            &topology,
            forkbase_postree::TreeConfig::default_config(),
            move |id| {
                Ok(FileStore::open(
                    Self::servelet_dir(&open_root, id).join("chunks"),
                )?)
            },
        )?;
        // Load each LOCAL servelet's branch heads (validated against its
        // store). Remote servelets own their stores and refs — their
        // `forkbase serve` process loads them on startup.
        for slot in 0..cluster.len() {
            let id = cluster.ids()[slot];
            if cluster.servelet_addr(id).is_some() {
                continue;
            }
            let refs_path = Self::servelet_dir(&root, id).join("refs");
            if refs_path.exists() {
                let text = std::fs::read_to_string(&refs_path).map_err(io_err)?;
                cluster.on_node(slot, move |db| db.load_refs(&text))??;
            }
        }
        // Supervised restarts reopen the packs AND restore the persisted
        // branch heads — richer than the bare `open` factory above.
        let respawn_root = root.clone();
        cluster.set_respawn(move |id| {
            let dir = Self::servelet_dir(&respawn_root, id);
            let store = FileStore::open(dir.join("chunks"))?;
            let refs = match std::fs::read_to_string(dir.join("refs")) {
                Ok(text) => Some(text),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
                Err(e) => return Err(io_err(e)),
            };
            Ok(forkbase::Respawned { store, refs })
        });
        Ok(ClusterSession {
            cluster: Arc::new(cluster),
            root,
        })
    }

    /// The cluster handle.
    pub fn cluster(&self) -> &Cluster<FileStore> {
        &self.cluster
    }

    /// A shared handle to the cluster — what the REST gateway and the
    /// supervisor hold while the session keeps persisting state.
    pub fn cluster_arc(&self) -> Arc<Cluster<FileStore>> {
        Arc::clone(&self.cluster)
    }

    /// Persist the topology record plus every servelet's branch heads,
    /// syncing each chunk store first.
    pub fn save(&self) -> DbResult<()> {
        let topology = self.cluster.topology();
        for (slot, id) in topology.servelet_ids.iter().enumerate() {
            // Remote servelets persist on their own side (ack-implies-
            // durable); only the topology entry is ours to record.
            if topology.addr_of(*id).is_some() {
                continue;
            }
            let refs = self.cluster.on_node(slot, |db| {
                forkbase_store::ChunkStore::sync(db.store())?;
                Ok::<_, DbError>(db.dump_refs())
            })??;
            let dir = Self::servelet_dir(&self.root, *id);
            std::fs::create_dir_all(&dir).map_err(io_err)?;
            write_durable(&dir.join("refs"), &refs)?;
        }
        write_durable(&Self::topology_path(&self.root), &topology.encode())?;
        Ok(())
    }

    /// Add a servelet (provisioning its data directory) and migrate the
    /// keys it now owns. Returns the new servelet's id.
    pub fn add_servelet(&self) -> DbResult<u64> {
        let id = self.cluster.next_servelet_id();
        let dir = Self::servelet_dir(&self.root, id);
        let store = FileStore::open(dir.join("chunks"))?;
        let assigned = match self.cluster.add_servelet(store) {
            Ok(assigned) => assigned,
            Err(e) => {
                // The id is burned (ids are never reused) and migration
                // rolled back; drop the freshly provisioned directory so a
                // failed add does not leak partial packs on disk.
                let _ = std::fs::remove_dir_all(&dir);
                return Err(e);
            }
        };
        debug_assert_eq!(assigned, id);
        // Durability order matters: the new servelet's refs (it holds the
        // migrated keys now) and the TOPOLOGY that makes reopen load it
        // must be on disk BEFORE any source refs lacking those keys are
        // rewritten (the caller's save()). A crash between here and that
        // save leaves at worst a shadowed duplicate on the sources —
        // routing prefers the new owner — never a lost key.
        let slot = self
            .cluster
            .ids()
            .iter()
            .position(|&i| i == assigned)
            .expect("just added");
        let refs = self.cluster.on_node(slot, |db| {
            forkbase_store::ChunkStore::sync(db.store())?;
            Ok::<_, DbError>(db.dump_refs())
        })??;
        write_durable(&dir.join("refs"), &refs)?;
        write_durable(
            &Self::topology_path(&self.root),
            &self.cluster.topology().encode(),
        )?;
        Ok(assigned)
    }

    /// Join a **remote** servelet process (already listening via
    /// `forkbase serve --servelet ADDR`) and migrate the keys it now
    /// owns across the wire. Persists the updated topology so a reopen
    /// routes to it again.
    pub fn add_remote_servelet(&self, addr: &str) -> DbResult<u64> {
        let id = self.cluster.add_remote_servelet(addr)?;
        write_durable(
            &Self::topology_path(&self.root),
            &self.cluster.topology().encode(),
        )?;
        Ok(id)
    }

    /// Remove servelet `id` after migrating its keys away, then delete its
    /// drained data directory.
    pub fn remove_servelet(&self, id: u64) -> DbResult<()> {
        self.cluster.remove_servelet(id)?;
        // Make the migrated keys durable on their destinations (sync +
        // refs + topology) BEFORE deleting the victim's directory — until
        // this save the victim held the only on-disk copy.
        self.save()?;
        let dir = Self::servelet_dir(&self.root, id);
        if dir.exists() {
            std::fs::remove_dir_all(&dir).map_err(io_err)?;
        }
        Ok(())
    }
}

/// Run one `cluster` subcommand against `session`, returning its textual
/// output. `args` excludes the leading `cluster` (e.g. `["put", "k", "v"]`).
pub fn run_cluster_command(session: &ClusterSession, args: &[&str]) -> DbResult<String> {
    let usage = || -> DbError {
        DbError::InvalidInput(
            "usage: cluster init N | put KEY VALUE | get KEY | batch put:K=V|del:K … | \
             range KEY [START [END]] [--limit N] | add | add-remote ADDR | remove ID | \
             keys | stats | gc | topology | \
             health | restart ID | serve [PORT] \
             [--branch B --author A --message M] (see README \"Sharding & elasticity\")"
                .into(),
        )
    };
    let Some((&verb, rest)) = args.split_first() else {
        return Err(usage());
    };
    let mut positional = Vec::new();
    let mut branch = "master".to_string();
    let mut author = "cli".to_string();
    let mut message = String::new();
    let mut limit = 1000usize;
    let mut it = rest.iter();
    while let Some(&a) = it.next() {
        let mut flag = |name: &str| -> DbResult<String> {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| DbError::InvalidInput(format!("{name} needs a value")))
        };
        match a {
            "--branch" => branch = flag("--branch")?,
            "--author" => author = flag("--author")?,
            "--message" => message = flag("--message")?,
            "--limit" => {
                limit = flag("--limit")?
                    .parse()
                    .map_err(|_| DbError::InvalidInput("--limit must be a number".into()))?;
            }
            other => positional.push(other),
        }
    }
    let opts = PutOptions {
        branch: branch.clone(),
        author,
        message,
    };
    let pos = |i: usize| -> DbResult<&str> { positional.get(i).copied().ok_or_else(usage) };
    let cluster = session.cluster();

    match verb {
        "put" => {
            let key = pos(0)?;
            let value = pos(1)?;
            let commit = cluster.put(key, Value::string(value), opts)?;
            Ok(format!(
                "servelet {} {} -> {}",
                cluster.owner_id(key),
                commit.branch,
                commit.uid
            ))
        }
        "get" => {
            let key = pos(0)?;
            let got = cluster.get(key, &branch)?;
            Ok(format!(
                "{}\n(version {} on servelet {})",
                got.value.summary(),
                got.uid,
                cluster.owner_id(key)
            ))
        }
        "batch" => {
            // Same spec syntax as the single-node `batch` verb; ops are
            // grouped per owning servelet and each group commits
            // atomically there (no cross-servelet atomicity — see README).
            if positional.is_empty() {
                return Err(DbError::InvalidInput(
                    "batch needs at least one op: put:KEY=VALUE or del:KEY".into(),
                ));
            }
            let mut wb = cluster.write_batch();
            for spec in &positional {
                if let Some(rest) = spec.strip_prefix("put:") {
                    let (key, value) = rest.split_once('=').ok_or_else(|| {
                        DbError::InvalidInput(format!("batch put op needs KEY=VALUE: {spec:?}"))
                    })?;
                    wb.put(key, Value::string(value), &opts);
                } else if let Some(key) = spec.strip_prefix("del:") {
                    wb.delete_branch(key, &branch);
                } else {
                    return Err(DbError::InvalidInput(format!(
                        "unknown batch op {spec:?} (put:KEY=VALUE | del:KEY)"
                    )));
                }
            }
            let outcomes = wb.commit()?;
            let mut out = String::new();
            for o in outcomes {
                match o {
                    forkbase::BatchOutcome::Committed(c) => {
                        out.push_str(&format!("{} -> {}\n", c.branch, c.uid));
                    }
                    forkbase::BatchOutcome::Deleted { key, branch } => {
                        out.push_str(&format!("deleted {key}@{branch}\n"));
                    }
                }
            }
            Ok(out)
        }
        "range" => {
            let key = pos(0)?;
            let start = positional.get(1).map(|s| bytes::Bytes::from(s.to_string()));
            let end = positional.get(2).map(|s| bytes::Bytes::from(s.to_string()));
            let page = cluster.map_range(key, &branch, start, end, limit)?;
            let mut out = String::new();
            for (k, v) in &page.entries {
                out.push_str(&format!(
                    "{}\t{}\n",
                    String::from_utf8_lossy(k),
                    String::from_utf8_lossy(v)
                ));
            }
            if page.truncated {
                out.push_str("… (truncated; raise --limit or narrow the range)\n");
            }
            Ok(out)
        }
        "add" => {
            let id = session.add_servelet()?;
            Ok(format!(
                "servelet {id} joined; keys per servelet now {:?}",
                cluster.key_distribution()?
            ))
        }
        "add-remote" => {
            let addr = pos(0)?;
            let id = session.add_remote_servelet(addr)?;
            Ok(format!(
                "remote servelet {id} ({addr}) joined; keys per servelet now {:?}",
                cluster.key_distribution()?
            ))
        }
        "topology" => {
            let topo = cluster.topology();
            let mut out = String::new();
            for id in &topo.servelet_ids {
                match topo.addr_of(*id) {
                    Some(addr) => out.push_str(&format!("servelet {id}\tremote\t{addr}\n")),
                    None => out.push_str(&format!("servelet {id}\tin-process\n")),
                }
            }
            Ok(out)
        }
        "remove" => {
            let id: u64 = pos(0)?
                .parse()
                .map_err(|_| DbError::InvalidInput("remove needs a servelet id".into()))?;
            session.remove_servelet(id)?;
            Ok(format!(
                "servelet {id} drained and removed; keys per servelet now {:?}",
                cluster.key_distribution()?
            ))
        }
        "keys" => Ok(cluster.list_keys()?.join("\n")),
        "stats" => Ok(cluster.stats()?.to_string()),
        "gc" => {
            let report = cluster.gc()?;
            let mut out = String::new();
            for (id, report) in report.reports {
                out.push_str(&format!("servelet {id}:\n{report}\n"));
            }
            if !report.degraded.is_empty() {
                out.push_str(&format!(
                    "skipped unreachable servelet(s) {:?}; their dead chunks survive \
                     until a later pass finds them alive\n",
                    report.degraded
                ));
            }
            Ok(out)
        }
        "health" => {
            let mut out = String::new();
            for h in cluster.health() {
                out.push_str(&format!("servelet {}\t{}", h.servelet, h.state.as_str()));
                if h.consecutive_failures > 0 {
                    out.push_str(&format!("\tfailures={}", h.consecutive_failures));
                }
                if let Some(err) = &h.last_error {
                    out.push_str(&format!("\t{err}"));
                }
                out.push('\n');
            }
            Ok(out)
        }
        "restart" => {
            let id: u64 = pos(0)?
                .parse()
                .map_err(|_| DbError::InvalidInput("restart needs a servelet id".into()))?;
            cluster.restart_servelet(id)?;
            Ok(format!("servelet {id} restarted from its durable backend"))
        }
        _ => Err(usage()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("forkbase-cluster-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cluster_state_survives_reopen_and_routes_identically() {
        let root = temp_root("reopen");
        let owners: Vec<(String, u64)>;
        {
            let s = ClusterSession::init(&root, 3).unwrap();
            for i in 0..30 {
                run_cluster_command(&s, &["put", &format!("k{i}"), &format!("v{i}")]).unwrap();
            }
            owners = (0..30)
                .map(|i| {
                    let k = format!("k{i}");
                    let owner = s.cluster().owner_id(&k);
                    (k, owner)
                })
                .collect();
            s.save().unwrap();
        }
        let s = ClusterSession::open(&root).unwrap();
        for (key, owner) in owners {
            assert_eq!(
                s.cluster().owner_id(&key),
                owner,
                "routing drifted for {key}"
            );
            let out = run_cluster_command(&s, &["get", &key]).unwrap();
            assert!(out.contains(&format!("servelet {owner}")));
        }
        // Double-init is refused.
        assert!(ClusterSession::init(&root, 2).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn cluster_rebalance_via_commands() {
        let root = temp_root("rebalance");
        let s = ClusterSession::init(&root, 2).unwrap();
        for i in 0..40 {
            run_cluster_command(&s, &["put", &format!("k{i}"), &format!("v{i}")]).unwrap();
        }
        let out = run_cluster_command(&s, &["add"]).unwrap();
        assert!(out.contains("servelet 2 joined"), "{out}");
        assert!(ClusterSession::servelet_dir(&root, 2).exists());
        let keys = run_cluster_command(&s, &["keys"]).unwrap();
        assert_eq!(keys.lines().count(), 40);

        let out = run_cluster_command(&s, &["remove", "0"]).unwrap();
        assert!(out.contains("servelet 0 drained"), "{out}");
        assert!(
            !ClusterSession::servelet_dir(&root, 0).exists(),
            "drained directory deleted"
        );
        for i in 0..40 {
            let got = run_cluster_command(&s, &["get", &format!("k{i}")]).unwrap();
            assert!(got.contains(&format!("\"v{i}\"")), "{got}");
        }
        let stats = run_cluster_command(&s, &["stats"]).unwrap();
        assert!(
            stats.contains("cluster: 2 servelet(s), 40 key(s)"),
            "{stats}"
        );
        s.save().unwrap();

        // Reopen after elasticity: topology reflects the changes.
        drop(s);
        let s = ClusterSession::open(&root).unwrap();
        assert_eq!(s.cluster().ids(), vec![1, 2]);
        assert_eq!(
            run_cluster_command(&s, &["keys"]).unwrap().lines().count(),
            40
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn batch_range_and_errors() {
        let root = temp_root("batch");
        let s = ClusterSession::init(&root, 2).unwrap();
        let out = run_cluster_command(&s, &["batch", "put:a=1", "put:b=2", "put:a=1b"]).unwrap();
        assert_eq!(out.lines().count(), 3);
        let got = run_cluster_command(&s, &["get", "a"]).unwrap();
        assert!(got.contains("1b"));

        // A table-ish map for range.
        s.cluster()
            .with_key("tbl", |db| {
                let pairs = (0..50)
                    .map(|i| {
                        (
                            bytes::Bytes::from(format!("r{i:03}")),
                            bytes::Bytes::from(format!("x{i}")),
                        )
                    })
                    .collect();
                let map = db.new_map(pairs)?;
                db.put("tbl", map, &PutOptions::default())
            })
            .unwrap()
            .unwrap();
        let page =
            run_cluster_command(&s, &["range", "tbl", "r010", "r020", "--limit", "5"]).unwrap();
        assert!(page.contains("r010\t"));
        assert!(page.contains("truncated"), "{page}");

        assert!(run_cluster_command(&s, &[]).is_err());
        assert!(run_cluster_command(&s, &["bogus"]).is_err());
        assert!(run_cluster_command(&s, &["get", "missing"]).is_err());
        assert!(run_cluster_command(&s, &["remove", "not-a-number"]).is_err());
        assert!(run_cluster_command(&s, &["batch", "zap:x"]).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
