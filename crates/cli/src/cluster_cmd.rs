//! The `cluster` verb family: an elastic sharded ForkBase over a
//! directory of durable [`FileStore`] servelets.
//!
//! Layout under `<root>/cluster/`:
//!
//! ```text
//! <root>/cluster/TOPOLOGY               — servelet ids, roles + next id (stable routing)
//! <root>/cluster/FORKS                  — fork-sandbox registry (leases resume on reopen)
//! <root>/cluster/REPLICAS_SYNCED        — replicas proven caught-up at last clean save
//! <root>/cluster/servelet-<id>/chunks/  — that servelet's pack files
//! <root>/cluster/servelet-<id>/refs     — that servelet's branch heads
//! ```
//!
//! Every servelet runs its own worker thread with a private
//! `ForkBase<FileStore>`; the topology record makes routing a pure
//! function of the persisted ring anchors, so reopening the directory
//! routes every key exactly as before. `add`/`remove` rebalance live:
//! only the keys whose ring owner changed migrate, each with its full
//! branch/version history and byte-identical chunk addresses. Replicas
//! (`add-replica`, `promote`, `replication-status`) use the same
//! `servelet-<id>/` layout and are re-attached on reopen.
//!
//! `REPLICAS_SYNCED` is the cross-process half of the zero-acked-write-
//! loss story: a (re)attached replica is conservatively marked for full
//! resync, which needs a live primary — so promoting a dead primary's
//! replica from a *fresh* process would be refused. The marker, written
//! durably at every clean [`ClusterSession::save`] for exactly the
//! replicas the ship left at lag 0 (refs already persisted), and
//! **consumed (deleted) on open**, lets those replicas re-attach
//! caught-up: `cluster promote` then works with the primary dead,
//! draining an empty log. Any unclean exit leaves no marker and the next
//! open falls back to the conservative resync.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use forkbase::{Cluster, ClusterTopology, DbError, DbResult, PutOptions};
use forkbase_store::FileStore;
use forkbase_types::Value;

fn io_err(e: std::io::Error) -> DbError {
    DbError::Store(forkbase_store::StoreError::Io(e))
}

/// First line of the `REPLICAS_SYNCED` marker; an unrecognized magic is
/// ignored (conservative: the replicas just resync in full).
const SYNCED_MARKER_MAGIC: &str = "forkbase-cluster-replicas-synced-v1";

/// Durably replace `path` with `contents`: write a tmp file, fsync it,
/// atomically rename it into place, then fsync the parent directory —
/// the same protocol the chunk store uses for its MANIFEST. Required
/// here because cluster rebalance deletes the migrated keys' previous
/// on-disk copy right after these files are written.
fn write_durable(path: &Path, contents: &str) -> DbResult<()> {
    let tmp = path.with_extension("tmp");
    (|| -> std::io::Result<()> {
        {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, contents.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            std::fs::File::open(parent)?.sync_all()?;
        }
        Ok(())
    })()
    .map_err(io_err)
}

/// Start a standalone servelet process: a [`forkbase::ServeletServer`]
/// executing wire requests against a durable [`FileStore`] under `root`
/// (layout `<root>/chunks` + `<root>/refs`, the single-node session
/// layout). Every mutating request syncs the store and durably rewrites
/// the refs file **before** it is acked — kill -9 after an ack never
/// loses the write. This is what `forkbase serve --servelet ADDR` runs.
pub fn serve_servelet(addr: &str, root: impl AsRef<Path>) -> DbResult<forkbase::ServeletServer> {
    let root = root.as_ref().to_path_buf();
    let store = FileStore::open(root.join("chunks"))?;
    let db = Arc::new(forkbase::ForkBase::new(store));
    let refs_path = root.join("refs");
    if refs_path.exists() {
        let text = std::fs::read_to_string(&refs_path).map_err(io_err)?;
        db.load_refs(&text)?;
    }
    let persist: forkbase::PersistFn<FileStore> = Arc::new(move |db| {
        forkbase_store::ChunkStore::sync(db.store())?;
        write_durable(&refs_path, &db.dump_refs())
    });
    // Per-peer admission control: a chatty router cannot monopolize the
    // servelet's worker threads; shed frames answer a structured
    // `WireError::RateLimited` with a retry hint, connection kept open.
    let limiter = Arc::new(forkbase::RateLimiter::new(forkbase::RateLimit::new(
        2000.0, 4000.0,
    )));
    forkbase::ServeletServer::spawn_limited(addr, db, Some(persist), Some(limiter))
}

/// A durable cluster bound to an on-disk directory.
pub struct ClusterSession {
    cluster: Arc<Cluster<FileStore>>,
    forks: Arc<forkbase::ForkService>,
    root: PathBuf,
}

impl ClusterSession {
    fn cluster_dir(root: &Path) -> PathBuf {
        root.join("cluster")
    }

    fn topology_path(root: &Path) -> PathBuf {
        Self::cluster_dir(root).join("TOPOLOGY")
    }

    fn forks_path(root: &Path) -> PathBuf {
        Self::cluster_dir(root).join("FORKS")
    }

    fn servelet_dir(root: &Path, id: u64) -> PathBuf {
        Self::cluster_dir(root).join(format!("servelet-{id}"))
    }

    fn synced_marker_path(root: &Path) -> PathBuf {
        Self::cluster_dir(root).join("REPLICAS_SYNCED")
    }

    /// Initialize a fresh cluster of `n` servelets under `root`. Refuses
    /// to clobber an existing topology.
    pub fn init(root: impl AsRef<Path>, n: usize) -> DbResult<ClusterSession> {
        let root = root.as_ref();
        if n == 0 {
            return Err(DbError::InvalidInput(
                "a cluster needs at least one servelet".into(),
            ));
        }
        let topo_path = Self::topology_path(root);
        if topo_path.exists() {
            return Err(DbError::InvalidInput(format!(
                "cluster already initialized at {}",
                topo_path.display()
            )));
        }
        std::fs::create_dir_all(Self::cluster_dir(root)).map_err(io_err)?;
        let topology = ClusterTopology::local((0..n as u64).collect(), n as u64);
        std::fs::write(&topo_path, topology.encode()).map_err(io_err)?;
        Self::open(root)
    }

    /// Open the cluster persisted under `root`.
    pub fn open(root: impl AsRef<Path>) -> DbResult<ClusterSession> {
        let root = root.as_ref().to_path_buf();
        let topo_path = Self::topology_path(&root);
        let text = std::fs::read_to_string(&topo_path).map_err(|e| {
            DbError::InvalidInput(format!(
                "no cluster at {} ({e}); run `cluster init N` first",
                topo_path.display()
            ))
        })?;
        let topology = ClusterTopology::parse(&text)?;
        let open_root = root.clone();
        let cluster = Cluster::from_topology(
            &topology,
            forkbase_postree::TreeConfig::default_config(),
            move |id| {
                Ok(FileStore::open(
                    Self::servelet_dir(&open_root, id).join("chunks"),
                )?)
            },
        )?;
        // Load each LOCAL servelet's branch heads (validated against its
        // store). Remote servelets own their stores and refs — their
        // `forkbase serve` process loads them on startup.
        for slot in 0..cluster.len() {
            let id = cluster.ids()[slot];
            if cluster.servelet_addr(id).is_some() {
                continue;
            }
            let refs_path = Self::servelet_dir(&root, id).join("refs");
            if refs_path.exists() {
                let text = std::fs::read_to_string(&refs_path).map_err(io_err)?;
                cluster.on_node(slot, move |db| db.load_refs(&text))??;
            }
        }
        // Local replicas restore their mirrored heads the same way — the
        // catch-up marker below can only vouch for a replica whose
        // persisted refs are actually loaded.
        for (rid, _) in cluster.replica_ids() {
            if cluster.servelet_addr(rid).is_some() {
                continue;
            }
            let refs_path = Self::servelet_dir(&root, rid).join("refs");
            if refs_path.exists() {
                let text = std::fs::read_to_string(&refs_path).map_err(io_err)?;
                cluster.on_replica(rid, move |db| db.load_refs(&text))??;
            }
        }
        // Consume the catch-up marker: replicas the last clean save
        // proved at lag 0 (with refs persisted) re-attach caught-up, so
        // `promote` works even when their primary never comes back. The
        // marker is deleted BEFORE any command runs — a crash from here
        // on leaves no marker, and the next open resyncs conservatively.
        let marker_path = Self::synced_marker_path(&root);
        match std::fs::read_to_string(&marker_path) {
            Ok(text) => {
                let mut lines = text.lines();
                if lines.next() == Some(SYNCED_MARKER_MAGIC) {
                    let attached: Vec<u64> =
                        cluster.replica_ids().iter().map(|&(rid, _)| rid).collect();
                    for line in lines {
                        if let Ok(rid) = line.trim().parse::<u64>() {
                            if attached.contains(&rid) {
                                cluster.mark_replica_synced(rid)?;
                            }
                        }
                    }
                }
                std::fs::remove_file(&marker_path).map_err(io_err)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(e)),
        }
        // Supervised restarts reopen the packs AND restore the persisted
        // branch heads — richer than the bare `open` factory above.
        let respawn_root = root.clone();
        cluster.set_respawn(move |id| {
            let dir = Self::servelet_dir(&respawn_root, id);
            let store = FileStore::open(dir.join("chunks"))?;
            let refs = match std::fs::read_to_string(dir.join("refs")) {
                Ok(text) => Some(text),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
                Err(e) => return Err(io_err(e)),
            };
            Ok(forkbase::Respawned { store, refs })
        });
        // Resume fork leases from the FORKS record next to TOPOLOGY —
        // absolute unix-second leases keep their promised expiry across
        // a gateway restart.
        let forks = Arc::new(forkbase::ForkService::new());
        let forks_path = Self::forks_path(&root);
        if forks_path.exists() {
            let text = std::fs::read_to_string(&forks_path).map_err(io_err)?;
            forks.load(&text)?;
        }
        Ok(ClusterSession {
            cluster: Arc::new(cluster),
            forks,
            root,
        })
    }

    /// The cluster handle.
    pub fn cluster(&self) -> &Cluster<FileStore> {
        &self.cluster
    }

    /// A shared handle to the cluster — what the REST gateway and the
    /// supervisor hold while the session keeps persisting state.
    pub fn cluster_arc(&self) -> Arc<Cluster<FileStore>> {
        Arc::clone(&self.cluster)
    }

    /// The fork-sandbox registry this session persists.
    pub fn forks(&self) -> &forkbase::ForkService {
        &self.forks
    }

    /// Shared handle to the fork registry (held by the gateway and the
    /// supervisor's reaper tick).
    pub fn forks_arc(&self) -> Arc<forkbase::ForkService> {
        Arc::clone(&self.forks)
    }

    /// Persist the topology record plus every servelet's branch heads,
    /// syncing each chunk store first. Ships the replication log first
    /// (best-effort), so replicas are as fresh as possible at the
    /// durability point.
    pub fn save(&self) -> DbResult<()> {
        let _ = self.cluster.ship_replication();
        let topology = self.cluster.topology();
        // Primaries, by slot (the topology record lists primaries in slot
        // order, replicas after them).
        for (slot, id) in self.cluster.ids().into_iter().enumerate() {
            // Remote servelets persist on their own side (ack-implies-
            // durable); only the topology entry is ours to record.
            if topology.addr_of(id).is_some() {
                continue;
            }
            let refs = self.cluster.on_node(slot, |db| {
                forkbase_store::ChunkStore::sync(db.store())?;
                Ok::<_, DbError>(db.dump_refs())
            })??;
            let dir = Self::servelet_dir(&self.root, id);
            std::fs::create_dir_all(&dir).map_err(io_err)?;
            write_durable(&dir.join("refs"), &refs)?;
        }
        // Local replicas persist their mirrors the same way.
        for (rid, _) in self.cluster.replica_ids() {
            if topology.addr_of(rid).is_some() {
                continue;
            }
            let refs = self.cluster.on_replica(rid, |db| {
                forkbase_store::ChunkStore::sync(db.store())?;
                Ok::<_, DbError>(db.dump_refs())
            })??;
            let dir = Self::servelet_dir(&self.root, rid);
            std::fs::create_dir_all(&dir).map_err(io_err)?;
            write_durable(&dir.join("refs"), &refs)?;
        }
        write_durable(&Self::topology_path(&self.root), &topology.encode())?;
        write_durable(&Self::forks_path(&self.root), &self.forks.dump())?;
        // Record which replicas this save proved caught-up (shipped to
        // lag 0 above, refs now durable): they may re-attach without a
        // full resync on the next open — see the module doc. Written
        // last: the marker must never assert more than what is on disk.
        let caught_up: Vec<String> = self
            .cluster
            .replication_status()
            .primaries
            .iter()
            .flat_map(|p| &p.replicas)
            .filter(|r| r.lag == 0 && r.pending == 0 && !r.needs_full_sync)
            .map(|r| r.id.to_string())
            .collect();
        let marker_path = Self::synced_marker_path(&self.root);
        if caught_up.is_empty() {
            match std::fs::remove_file(&marker_path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(e)),
            }
        } else {
            write_durable(
                &marker_path,
                &format!("{SYNCED_MARKER_MAGIC}\n{}\n", caught_up.join("\n")),
            )?;
        }
        Ok(())
    }

    /// Add a servelet (provisioning its data directory) and migrate the
    /// keys it now owns. Returns the new servelet's id.
    pub fn add_servelet(&self) -> DbResult<u64> {
        let id = self.cluster.next_servelet_id();
        let dir = Self::servelet_dir(&self.root, id);
        let store = FileStore::open(dir.join("chunks"))?;
        let assigned = match self.cluster.add_servelet(store) {
            Ok(assigned) => assigned,
            Err(e) => {
                // The id is burned (ids are never reused) and migration
                // rolled back; drop the freshly provisioned directory so a
                // failed add does not leak partial packs on disk.
                let _ = std::fs::remove_dir_all(&dir);
                return Err(e);
            }
        };
        debug_assert_eq!(assigned, id);
        // Durability order matters: the new servelet's refs (it holds the
        // migrated keys now) and the TOPOLOGY that makes reopen load it
        // must be on disk BEFORE any source refs lacking those keys are
        // rewritten (the caller's save()). A crash between here and that
        // save leaves at worst a shadowed duplicate on the sources —
        // routing prefers the new owner — never a lost key.
        let slot = self
            .cluster
            .ids()
            .iter()
            .position(|&i| i == assigned)
            .expect("just added");
        let refs = self.cluster.on_node(slot, |db| {
            forkbase_store::ChunkStore::sync(db.store())?;
            Ok::<_, DbError>(db.dump_refs())
        })??;
        write_durable(&dir.join("refs"), &refs)?;
        write_durable(
            &Self::topology_path(&self.root),
            &self.cluster.topology().encode(),
        )?;
        Ok(assigned)
    }

    /// Join a **remote** servelet process (already listening via
    /// `forkbase serve --servelet ADDR`) and migrate the keys it now
    /// owns across the wire. Persists the updated topology so a reopen
    /// routes to it again.
    pub fn add_remote_servelet(&self, addr: &str) -> DbResult<u64> {
        let id = self.cluster.add_remote_servelet(addr)?;
        write_durable(
            &Self::topology_path(&self.root),
            &self.cluster.topology().encode(),
        )?;
        Ok(id)
    }

    /// Attach a new local replica (provisioning its data directory) to
    /// primary `primary_id`, fully synced before this returns. Persists
    /// the topology so a reopen re-attaches it.
    pub fn add_replica(&self, primary_id: u64) -> DbResult<u64> {
        let id = self.cluster.next_servelet_id();
        let dir = Self::servelet_dir(&self.root, id);
        let store = FileStore::open(dir.join("chunks"))?;
        let assigned = match self.cluster.add_replica(primary_id, store) {
            Ok(assigned) => assigned,
            Err(e) => {
                // The id is burned; drop the freshly provisioned directory.
                let _ = std::fs::remove_dir_all(&dir);
                return Err(e);
            }
        };
        debug_assert_eq!(assigned, id);
        let refs = self.cluster.on_replica(assigned, |db| {
            forkbase_store::ChunkStore::sync(db.store())?;
            Ok::<_, DbError>(db.dump_refs())
        })??;
        write_durable(&dir.join("refs"), &refs)?;
        write_durable(
            &Self::topology_path(&self.root),
            &self.cluster.topology().encode(),
        )?;
        Ok(assigned)
    }

    /// Attach a **remote** replica process (already listening via
    /// `forkbase serve --servelet ADDR`) to primary `primary_id` and
    /// persist the topology.
    pub fn add_remote_replica(&self, primary_id: u64, addr: &str) -> DbResult<u64> {
        let id = self.cluster.add_remote_replica(primary_id, addr)?;
        write_durable(
            &Self::topology_path(&self.root),
            &self.cluster.topology().encode(),
        )?;
        Ok(id)
    }

    /// Promote replica `id` to primary of its slot (see
    /// [`Cluster::promote_replica`]) and persist the swung topology.
    /// The retired primary's data directory is left on disk — its id is
    /// burned, so nothing will ever route to it; delete it by hand once
    /// you no longer want the forensic copy. Returns the retired id.
    pub fn promote_replica(&self, id: u64) -> DbResult<u64> {
        let old = self.cluster.promote_replica(id)?;
        self.save()?;
        Ok(old)
    }

    /// Remove servelet `id` after migrating its keys away, then delete its
    /// drained data directory.
    pub fn remove_servelet(&self, id: u64) -> DbResult<()> {
        self.cluster.remove_servelet(id)?;
        // Make the migrated keys durable on their destinations (sync +
        // refs + topology) BEFORE deleting the victim's directory — until
        // this save the victim held the only on-disk copy.
        self.save()?;
        let dir = Self::servelet_dir(&self.root, id);
        if dir.exists() {
            std::fs::remove_dir_all(&dir).map_err(io_err)?;
        }
        Ok(())
    }
}

/// Run one `cluster` subcommand against `session`, returning its textual
/// output. `args` excludes the leading `cluster` (e.g. `["put", "k", "v"]`).
pub fn run_cluster_command(session: &ClusterSession, args: &[&str]) -> DbResult<String> {
    let usage = || -> DbError {
        DbError::InvalidInput(
            "usage: cluster init N | put KEY VALUE | get KEY | batch put:K=V|del:K … | \
             range KEY [START [END]] [--limit N] | add | add-remote ADDR | remove ID | \
             add-replica PRIMARY_ID | add-remote-replica PRIMARY_ID ADDR | \
             promote REPLICA_ID | replication-status | keys | stats | gc | topology | \
             health | restart ID | serve [PORT] | fork <sub> … \
             [--branch B --author A --message M] (see README \"Sharding & elasticity\")"
                .into(),
        )
    };
    let Some((&verb, rest)) = args.split_first() else {
        return Err(usage());
    };
    // The fork family parses its own flags (`--ttl`, `--id`, …) — hand
    // it the raw argument tail before the generic flag pass consumes
    // anything. Fork verbs route through the cluster like normal verbs.
    if verb == "fork" {
        return crate::fork_cmd::run_fork_command(session.forks(), session.cluster(), rest);
    }
    let mut positional = Vec::new();
    let mut branch = "master".to_string();
    let mut author = "cli".to_string();
    let mut message = String::new();
    let mut limit = 1000usize;
    let mut it = rest.iter();
    while let Some(&a) = it.next() {
        let mut flag = |name: &str| -> DbResult<String> {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| DbError::InvalidInput(format!("{name} needs a value")))
        };
        match a {
            "--branch" => branch = flag("--branch")?,
            "--author" => author = flag("--author")?,
            "--message" => message = flag("--message")?,
            "--limit" => {
                limit = flag("--limit")?
                    .parse()
                    .map_err(|_| DbError::InvalidInput("--limit must be a number".into()))?;
            }
            other => positional.push(other),
        }
    }
    let opts = PutOptions {
        branch: branch.clone(),
        author,
        message,
    };
    let pos = |i: usize| -> DbResult<&str> { positional.get(i).copied().ok_or_else(usage) };
    let cluster = session.cluster();

    match verb {
        "put" => {
            let key = pos(0)?;
            let value = pos(1)?;
            let commit = cluster.put(key, Value::string(value), opts)?;
            Ok(format!(
                "servelet {} {} -> {}",
                cluster.owner_id(key),
                commit.branch,
                commit.uid
            ))
        }
        "get" => {
            let key = pos(0)?;
            let got = cluster.get(key, &branch)?;
            Ok(format!(
                "{}\n(version {} on servelet {})",
                got.value.summary(),
                got.uid,
                cluster.owner_id(key)
            ))
        }
        "batch" => {
            // Same spec syntax as the single-node `batch` verb; ops are
            // grouped per owning servelet and each group commits
            // atomically there (no cross-servelet atomicity — see README).
            if positional.is_empty() {
                return Err(DbError::InvalidInput(
                    "batch needs at least one op: put:KEY=VALUE or del:KEY".into(),
                ));
            }
            let mut wb = cluster.write_batch();
            for spec in &positional {
                if let Some(rest) = spec.strip_prefix("put:") {
                    let (key, value) = rest.split_once('=').ok_or_else(|| {
                        DbError::InvalidInput(format!("batch put op needs KEY=VALUE: {spec:?}"))
                    })?;
                    wb.put(key, Value::string(value), &opts);
                } else if let Some(key) = spec.strip_prefix("del:") {
                    wb.delete_branch(key, &branch);
                } else {
                    return Err(DbError::InvalidInput(format!(
                        "unknown batch op {spec:?} (put:KEY=VALUE | del:KEY)"
                    )));
                }
            }
            let outcomes = wb.commit()?;
            let mut out = String::new();
            for o in outcomes {
                match o {
                    forkbase::BatchOutcome::Committed(c) => {
                        out.push_str(&format!("{} -> {}\n", c.branch, c.uid));
                    }
                    forkbase::BatchOutcome::Deleted { key, branch } => {
                        out.push_str(&format!("deleted {key}@{branch}\n"));
                    }
                }
            }
            Ok(out)
        }
        "range" => {
            let key = pos(0)?;
            let start = positional.get(1).map(|s| bytes::Bytes::from(s.to_string()));
            let end = positional.get(2).map(|s| bytes::Bytes::from(s.to_string()));
            let page = cluster.map_range(key, &branch, start, end, limit)?;
            let mut out = String::new();
            for (k, v) in &page.entries {
                out.push_str(&format!(
                    "{}\t{}\n",
                    String::from_utf8_lossy(k),
                    String::from_utf8_lossy(v)
                ));
            }
            if page.truncated {
                out.push_str("… (truncated; raise --limit or narrow the range)\n");
            }
            Ok(out)
        }
        "add" => {
            let id = session.add_servelet()?;
            Ok(format!(
                "servelet {id} joined; keys per servelet now {:?}",
                cluster.key_distribution()?
            ))
        }
        "add-remote" => {
            let addr = pos(0)?;
            let id = session.add_remote_servelet(addr)?;
            Ok(format!(
                "remote servelet {id} ({addr}) joined; keys per servelet now {:?}",
                cluster.key_distribution()?
            ))
        }
        "topology" => {
            // Columns 1–2 (and the remote address) are unchanged from the
            // pre-replication output; the role is appended as a NEW last
            // column so existing consumers keep parsing by prefix.
            let topo = cluster.topology();
            let mut out = String::new();
            for id in &topo.servelet_ids {
                match topo.addr_of(*id) {
                    Some(addr) => out.push_str(&format!("servelet {id}\tremote\t{addr}")),
                    None => out.push_str(&format!("servelet {id}\tin-process")),
                }
                match topo.role_of(*id) {
                    Some(forkbase::TopoRole::Primary { anchor }) if anchor == id => {
                        out.push_str("\tprimary")
                    }
                    Some(forkbase::TopoRole::Primary { anchor }) => {
                        out.push_str(&format!("\tprimary (anchor {anchor})"))
                    }
                    Some(forkbase::TopoRole::Replica { primary }) => {
                        out.push_str(&format!("\treplica of {primary}"))
                    }
                    None => {}
                }
                out.push('\n');
            }
            Ok(out)
        }
        "add-replica" => {
            let primary: u64 = pos(0)?
                .parse()
                .map_err(|_| DbError::InvalidInput("add-replica needs a primary id".into()))?;
            let id = session.add_replica(primary)?;
            Ok(format!(
                "replica {id} attached to primary {primary} (synced)"
            ))
        }
        "add-remote-replica" => {
            let primary: u64 = pos(0)?.parse().map_err(|_| {
                DbError::InvalidInput("add-remote-replica needs a primary id".into())
            })?;
            let addr = pos(1)?;
            let id = session.add_remote_replica(primary, addr)?;
            Ok(format!(
                "remote replica {id} ({addr}) attached to primary {primary} (synced)"
            ))
        }
        "promote" => {
            let id: u64 = pos(0)?
                .parse()
                .map_err(|_| DbError::InvalidInput("promote needs a replica id".into()))?;
            let old = session.promote_replica(id)?;
            Ok(format!(
                "replica {id} promoted; primary {old} retired (its id is burned; \
                 its directory remains on disk until you delete it)"
            ))
        }
        "replication-status" => {
            let status = cluster.replication_status();
            let mut out = String::new();
            for p in &status.primaries {
                out.push_str(&format!(
                    "primary {}\tanchor {}\tseq {}\n",
                    p.primary, p.anchor, p.seq
                ));
                for r in &p.replicas {
                    out.push_str(&format!(
                        "  replica {}\tlag {}\tpending {}{}{}\n",
                        r.id,
                        r.lag,
                        r.pending,
                        if r.needs_full_sync { "\tresyncing" } else { "" },
                        match &r.addr {
                            Some(a) => format!("\t{a}"),
                            None => String::new(),
                        },
                    ));
                }
                if p.replicas.is_empty() {
                    out.push_str("  (no replicas)\n");
                }
            }
            Ok(out)
        }
        "remove" => {
            let id: u64 = pos(0)?
                .parse()
                .map_err(|_| DbError::InvalidInput("remove needs a servelet id".into()))?;
            session.remove_servelet(id)?;
            Ok(format!(
                "servelet {id} drained and removed; keys per servelet now {:?}",
                cluster.key_distribution()?
            ))
        }
        "keys" => Ok(cluster.list_keys()?.join("\n")),
        "stats" => Ok(cluster.stats()?.to_string()),
        "gc" => {
            let report = cluster.gc()?;
            let mut out = String::new();
            for (id, report) in report.reports {
                out.push_str(&format!("servelet {id}:\n{report}\n"));
            }
            if !report.degraded.is_empty() {
                out.push_str(&format!(
                    "skipped unreachable servelet(s) {:?}; their dead chunks survive \
                     until a later pass finds them alive\n",
                    report.degraded
                ));
            }
            Ok(out)
        }
        "health" => {
            let mut out = String::new();
            for h in cluster.health() {
                out.push_str(&format!("servelet {}\t{}", h.servelet, h.state.as_str()));
                if h.consecutive_failures > 0 {
                    out.push_str(&format!("\tfailures={}", h.consecutive_failures));
                }
                if let Some(err) = &h.last_error {
                    out.push_str(&format!("\t{err}"));
                }
                out.push('\n');
            }
            Ok(out)
        }
        "restart" => {
            let id: u64 = pos(0)?
                .parse()
                .map_err(|_| DbError::InvalidInput("restart needs a servelet id".into()))?;
            cluster.restart_servelet(id)?;
            Ok(format!("servelet {id} restarted from its durable backend"))
        }
        _ => Err(usage()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("forkbase-cluster-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cluster_state_survives_reopen_and_routes_identically() {
        let root = temp_root("reopen");
        let owners: Vec<(String, u64)>;
        {
            let s = ClusterSession::init(&root, 3).unwrap();
            for i in 0..30 {
                run_cluster_command(&s, &["put", &format!("k{i}"), &format!("v{i}")]).unwrap();
            }
            owners = (0..30)
                .map(|i| {
                    let k = format!("k{i}");
                    let owner = s.cluster().owner_id(&k);
                    (k, owner)
                })
                .collect();
            s.save().unwrap();
        }
        let s = ClusterSession::open(&root).unwrap();
        for (key, owner) in owners {
            assert_eq!(
                s.cluster().owner_id(&key),
                owner,
                "routing drifted for {key}"
            );
            let out = run_cluster_command(&s, &["get", &key]).unwrap();
            assert!(out.contains(&format!("servelet {owner}")));
        }
        // Double-init is refused.
        assert!(ClusterSession::init(&root, 2).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn cluster_rebalance_via_commands() {
        let root = temp_root("rebalance");
        let s = ClusterSession::init(&root, 2).unwrap();
        for i in 0..40 {
            run_cluster_command(&s, &["put", &format!("k{i}"), &format!("v{i}")]).unwrap();
        }
        let out = run_cluster_command(&s, &["add"]).unwrap();
        assert!(out.contains("servelet 2 joined"), "{out}");
        assert!(ClusterSession::servelet_dir(&root, 2).exists());
        let keys = run_cluster_command(&s, &["keys"]).unwrap();
        assert_eq!(keys.lines().count(), 40);

        let out = run_cluster_command(&s, &["remove", "0"]).unwrap();
        assert!(out.contains("servelet 0 drained"), "{out}");
        assert!(
            !ClusterSession::servelet_dir(&root, 0).exists(),
            "drained directory deleted"
        );
        for i in 0..40 {
            let got = run_cluster_command(&s, &["get", &format!("k{i}")]).unwrap();
            assert!(got.contains(&format!("\"v{i}\"")), "{got}");
        }
        let stats = run_cluster_command(&s, &["stats"]).unwrap();
        assert!(
            stats.contains("cluster: 2 servelet(s), 40 key(s)"),
            "{stats}"
        );
        s.save().unwrap();

        // Reopen after elasticity: topology reflects the changes.
        drop(s);
        let s = ClusterSession::open(&root).unwrap();
        assert_eq!(s.cluster().ids(), vec![1, 2]);
        assert_eq!(
            run_cluster_command(&s, &["keys"]).unwrap().lines().count(),
            40
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn replication_via_commands_survives_reopen_and_promotes() {
        let root = temp_root("replication");
        let s = ClusterSession::init(&root, 2).unwrap();
        for i in 0..20 {
            run_cluster_command(&s, &["put", &format!("k{i}"), &format!("v{i}")]).unwrap();
        }
        let pid = s.cluster().ids()[0];
        let out = run_cluster_command(&s, &["add-replica", &pid.to_string()]).unwrap();
        assert!(out.contains(&format!("attached to primary {pid}")), "{out}");
        let rid = s.cluster().replica_ids()[0].0;
        assert!(ClusterSession::servelet_dir(&root, rid).exists());

        // The topology output renders the new role column after the
        // unchanged legacy columns.
        let topo = run_cluster_command(&s, &["topology"]).unwrap();
        assert!(
            topo.contains(&format!("servelet {pid}\tin-process\tprimary\n")),
            "{topo}"
        );
        assert!(
            topo.contains(&format!("servelet {rid}\tin-process\treplica of {pid}\n")),
            "{topo}"
        );
        let status = run_cluster_command(&s, &["replication-status"]).unwrap();
        assert!(
            status.contains(&format!("replica {rid}\tlag 0")),
            "{status}"
        );
        s.save().unwrap();
        // The clean save proved the replica caught-up and recorded it.
        let marker = std::fs::read_to_string(ClusterSession::synced_marker_path(&root)).unwrap();
        assert!(marker.contains(&rid.to_string()), "{marker}");
        drop(s);

        // Reopen re-attaches the replica. The catch-up marker is consumed
        // (deleted) and the replica re-attaches already caught-up — no
        // full resync, so the dead-primary promote below can work.
        let s = ClusterSession::open(&root).unwrap();
        assert!(!ClusterSession::synced_marker_path(&root).exists());
        assert_eq!(s.cluster().replica_ids(), vec![(rid, pid)]);
        let status = s.cluster().replication_status();
        assert!(
            !status.primaries[0].replicas[0].needs_full_sync,
            "{status:?}"
        );

        // Kill the primary FIRST, then promote via the CLI — the runbook
        // scenario: the primary never comes back, and the fresh process
        // can still fail over because the marker vouched for the replica.
        let slot = s.cluster().ids().iter().position(|&i| i == pid).unwrap();
        s.cluster().kill_servelet(slot).unwrap();
        let out = run_cluster_command(&s, &["promote", &rid.to_string()]).unwrap();
        assert!(out.contains(&format!("replica {rid} promoted")), "{out}");
        for i in 0..20 {
            let got = run_cluster_command(&s, &["get", &format!("k{i}")]).unwrap();
            assert!(got.contains(&format!("\"v{i}\"")), "{got}");
        }
        drop(s);

        // The swung topology persisted: a fresh open routes through the
        // promoted servelet, with the retired id gone for good.
        let s = ClusterSession::open(&root).unwrap();
        assert!(s.cluster().ids().contains(&rid));
        assert!(!s.cluster().ids().contains(&pid));
        for i in 0..20 {
            let got = run_cluster_command(&s, &["get", &format!("k{i}")]).unwrap();
            assert!(got.contains(&format!("\"v{i}\"")), "{got}");
        }
        // Bad inputs stay structured errors.
        assert!(run_cluster_command(&s, &["add-replica", "nope"]).is_err());
        assert!(run_cluster_command(&s, &["promote", "999"]).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn batch_range_and_errors() {
        let root = temp_root("batch");
        let s = ClusterSession::init(&root, 2).unwrap();
        let out = run_cluster_command(&s, &["batch", "put:a=1", "put:b=2", "put:a=1b"]).unwrap();
        assert_eq!(out.lines().count(), 3);
        let got = run_cluster_command(&s, &["get", "a"]).unwrap();
        assert!(got.contains("1b"));

        // A table-ish map for range.
        s.cluster()
            .with_key("tbl", |db| {
                let pairs = (0..50)
                    .map(|i| {
                        (
                            bytes::Bytes::from(format!("r{i:03}")),
                            bytes::Bytes::from(format!("x{i}")),
                        )
                    })
                    .collect();
                let map = db.new_map(pairs)?;
                db.put("tbl", map, &PutOptions::default())
            })
            .unwrap()
            .unwrap();
        let page =
            run_cluster_command(&s, &["range", "tbl", "r010", "r020", "--limit", "5"]).unwrap();
        assert!(page.contains("r010\t"));
        assert!(page.contains("truncated"), "{page}");

        assert!(run_cluster_command(&s, &[]).is_err());
        assert!(run_cluster_command(&s, &["bogus"]).is_err());
        assert!(run_cluster_command(&s, &["get", "missing"]).is_err());
        assert!(run_cluster_command(&s, &["remove", "not-a-number"]).is_err());
        assert!(run_cluster_command(&s, &["batch", "zap:x"]).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
