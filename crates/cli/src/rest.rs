//! Minimal RESTful interface (paper Fig. 1, "RESTful" semantic view).
//!
//! A deliberately small HTTP/1.1 server on `std::net::TcpListener` — one
//! thread per connection, no external dependencies. Routes:
//!
//! ```text
//! GET  /keys                          → key list (one per line)
//! GET  /get/<key>?branch=B            → value summary + version
//! PUT  /put/<key>?branch=B            → body = string value; returns uid
//! GET  /head/<key>?branch=B           → version uid
//! GET  /branches/<key>                → branch\tuid lines
//! POST /branch/<key>/<new>?from=B     → create branch
//! GET  /diff/<key>?from=A&to=B        → diff rendering
//! GET  /history/<key>?branch=B        → history lines
//! GET  /stat                          → store statistics
//! GET  /verify/<key>?branch=B         → verification result
//! GET  /v1/<key>/range?start=&end=&limit=&branch=
//!                                     → JSON page of map entries, served
//!                                       by the streaming cursor (O(chunk)
//!                                       server memory regardless of value
//!                                       or range size)
//! ```
//!
//! Both servers also expose the **fork sandbox** family under the
//! reserved `/v1/fork` prefix (see [`ForkService`] and the route table
//! on `fork_route`): `POST /v1/fork` leases a writable fork of any
//! branch or version in O(1); `GET`/`DELETE /v1/fork/<id>` inspect and
//! drop it; `POST /v1/fork/<id>/touch` renews the lease; and
//! `get`/`put`/`range`/`diff` under `/v1/fork/<id>/…` read and write
//! the fork's isolated namespace. Expired forks answer `404` with code
//! `fork_expired`. When a per-peer rate limiter is configured
//! ([`RestServer::start_configured`]), shed requests answer `429 Too
//! Many Requests` with a `retry-after` header from the token bucket.
//!
//! Successful legacy routes answer `text/plain; charset=utf-8`; `/v1/…`
//! routes answer `application/json`. **Every** error is structured JSON —
//! `{"error":{"code":"<stable snake_case>","message":"<human text>"}}` —
//! with the code drawn from [`DbError::code`], so clients branch on
//! `error.code`, not on prose or status text.
//!
//! [`ClusterRestServer`] serves a [`Cluster`] instead of a single node,
//! adding the fault-tolerance surface:
//!
//! ```text
//! GET  /v1/cluster/health             → per-servelet liveness JSON
//! GET  /v1/cluster/topology           → per-servelet placement JSON
//!                                       (id + transport + address + role)
//! GET  /v1/cluster/replication        → per-primary replication lag JSON
//! POST /v1/cluster/restart/<id>       → supervised restart of servelet <id>
//! GET  /get/<key>?branch=B            → routed get
//! PUT  /put/<key>?branch=B            → routed put
//! GET  /keys                          → strict cluster-wide key list
//! ```
//!
//! A dead servelet maps to `503 Service Unavailable` **with a
//! `retry-after` header** (a supervisor restart may heal it); a missed RPC
//! deadline maps to `504 Gateway Timeout` (`servelet_timeout` — the
//! outcome is ambiguous, see the cluster retry policy). Both error bodies
//! carry the failing servelet's id and, for remote servelets, its
//! address, so an operator reading the error knows which process to look
//! at.
//!
//! The cluster gateway bounds concurrent connections
//! ([`ClusterRestServer::start_with_limit`]); excess connections are shed
//! immediately with `503` + `retry-after` rather than queued behind an
//! unbounded thread pile.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use forkbase::{
    Cluster, DbError, DiffSummary, ForkBackend, ForkBase, ForkDiff, ForkInfo, ForkService, MapPage,
    PutOptions, RateLimiter, VersionSpec,
};
use forkbase_store::SweepStore;
use forkbase_types::Value;

/// Handle to a running REST server.
pub struct RestServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RestServer {
    /// Start serving `db` on `127.0.0.1:port` (`port` 0 = auto-assign)
    /// with a fresh [`ForkService`] and no rate limiting.
    pub fn start<S: SweepStore + 'static>(
        db: Arc<ForkBase<S>>,
        port: u16,
    ) -> std::io::Result<RestServer> {
        Self::start_configured(db, port, Arc::new(ForkService::new()), None)
    }

    /// [`Self::start`] with an explicit fork service (so the embedding
    /// process can persist/reap its registry) and optional per-peer rate
    /// limiting (shed requests answer `429` + `retry-after`).
    pub fn start_configured<S: SweepStore + 'static>(
        db: Arc<ForkBase<S>>,
        port: u16,
        forks: Arc<ForkService>,
        limiter: Option<Arc<RateLimiter>>,
    ) -> std::io::Result<RestServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            while !shutdown_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        let db = Arc::clone(&db);
                        let forks = Arc::clone(&forks);
                        let limiter = limiter.clone();
                        std::thread::spawn(move || {
                            let _ = handle_connection(
                                stream,
                                &db,
                                &forks,
                                limiter.as_deref(),
                                peer.ip(),
                            );
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(RestServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept loop.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RestServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Handle to a running cluster REST gateway: routed data verbs plus the
/// fault-tolerance surface (`/v1/cluster/health`, `/v1/cluster/restart`).
pub struct ClusterRestServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Default ceiling on concurrent gateway connections
/// ([`ClusterRestServer::start`]). One thread per connection only stays
/// cheap while the count is bounded; excess clients get an immediate
/// `503` + `retry-after` instead of a growing thread pile.
pub const DEFAULT_CONNECTION_LIMIT: usize = 64;

impl ClusterRestServer {
    /// Start serving `cluster` on `127.0.0.1:port` (`port` 0 =
    /// auto-assign) with the default concurrent-connection ceiling.
    pub fn start<S: SweepStore + Send + 'static>(
        cluster: Arc<Cluster<S>>,
        port: u16,
    ) -> std::io::Result<ClusterRestServer> {
        Self::start_with_limit(cluster, port, DEFAULT_CONNECTION_LIMIT)
    }

    /// [`Self::start`] with an explicit ceiling on concurrent
    /// connections. When `max_connections` handlers are in flight, new
    /// connections are shed immediately with `503 Service Unavailable` +
    /// `retry-after` (structured `overloaded` error body) — load is
    /// refused at the door, never queued unboundedly.
    pub fn start_with_limit<S: SweepStore + Send + 'static>(
        cluster: Arc<Cluster<S>>,
        port: u16,
        max_connections: usize,
    ) -> std::io::Result<ClusterRestServer> {
        Self::start_configured(
            cluster,
            port,
            max_connections,
            Arc::new(ForkService::new()),
            None,
        )
    }

    /// [`Self::start_with_limit`] with an explicit fork service and
    /// optional per-peer rate limiting — the full-control constructor
    /// the `cluster serve` command uses (it persists the fork registry
    /// and reaps expired forks from the supervisor tick).
    pub fn start_configured<S: SweepStore + Send + 'static>(
        cluster: Arc<Cluster<S>>,
        port: u16,
        max_connections: usize,
        forks: Arc<ForkService>,
        limiter: Option<Arc<RateLimiter>>,
    ) -> std::io::Result<ClusterRestServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::clone(&shutdown);
        // A counting semaphore over connection-handler threads.
        let active = Arc::new(AtomicUsize::new(0));
        let handle = std::thread::spawn(move || {
            while !shutdown_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, peer)) => {
                        // Acquire a slot; shed the connection if none left.
                        if active.fetch_add(1, Ordering::SeqCst) >= max_connections {
                            active.fetch_sub(1, Ordering::SeqCst);
                            let _ = shed_connection(&mut stream);
                            continue;
                        }
                        let cluster = Arc::clone(&cluster);
                        let active = Arc::clone(&active);
                        let forks = Arc::clone(&forks);
                        let limiter = limiter.clone();
                        std::thread::spawn(move || {
                            let _guard = SlotGuard(active);
                            let _ = handle_cluster_connection(
                                stream,
                                &cluster,
                                &forks,
                                limiter.as_deref(),
                                peer.ip(),
                            );
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ClusterRestServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept loop.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ClusterRestServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Releases one connection-semaphore slot when the handler thread exits,
/// however it exits.
struct SlotGuard(Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Refuse a connection at the door: the gateway is at its concurrency
/// ceiling. Cheap by construction — briefly drain the request (closing
/// with unread bytes would RST the connection before the client reads
/// the 503), write one canned response, close.
fn shed_connection(stream: &mut TcpStream) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    let mut sink = [0u8; 4096];
    let _ = stream.read(&mut sink);
    respond_with(
        stream,
        503,
        JSON,
        &[("retry-after", "1")],
        "{\"error\":{\"code\":\"overloaded\",\
          \"message\":\"gateway at its concurrent connection limit; retry shortly\"}}",
    )
}

fn handle_cluster_connection<S: SweepStore + Send + 'static>(
    mut stream: TcpStream,
    cluster: &Cluster<S>,
    forks: &ForkService,
    limiter: Option<&RateLimiter>,
    peer: IpAddr,
) -> std::io::Result<()> {
    let Some(req) = read_request(&mut stream)? else {
        return respond(&mut stream, 400, TEXT, "malformed request line");
    };
    if let Some(limiter) = limiter {
        if let Err(e) = limiter.check(peer) {
            return respond_error(&mut stream, &e);
        }
    }
    let branch = req
        .query_param("branch")
        .unwrap_or_else(|| "master".to_string());
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let json_route = segments.first() == Some(&"v1");
    if let Some(result) = fork_route(forks, cluster, &req, &segments) {
        return match result {
            Ok(text) => respond(&mut stream, 200, JSON, &text),
            Err(e) => respond_error(&mut stream, &e),
        };
    }
    let result: Result<String, DbError> = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "cluster", "health"]) => Ok(health_json(cluster)),
        ("GET", ["v1", "cluster", "topology"]) => Ok(topology_json(cluster)),
        ("GET", ["v1", "cluster", "replication"]) => Ok(replication_json(cluster)),
        ("POST", ["v1", "cluster", "restart", id]) => id
            .parse::<u64>()
            .map_err(|_| DbError::InvalidInput(format!("servelet id is not a number: {id:?}")))
            .and_then(|id| {
                cluster
                    .restart_servelet(id)
                    .map(|()| format!("{{\"restarted\":{id}}}"))
            }),
        ("GET", ["keys"]) => cluster.list_keys().map(|ks| ks.join("\n")),
        ("GET", ["get", key]) => cluster
            .get(&url_decode(key), &branch)
            .map(|g| format!("{}\nversion: {}", g.value.summary(), g.uid)),
        ("PUT", ["put", key]) => {
            let text = String::from_utf8_lossy(&req.body).into_owned();
            let opts = PutOptions::on_branch(branch.clone()).author("rest");
            cluster
                .put(&url_decode(key), Value::Str(text), opts)
                .map(|c| c.uid.to_string())
        }
        _ => Err(DbError::InvalidInput(format!(
            "no route for {} {}",
            req.method, req.path
        ))),
    };

    match result {
        Ok(text) => {
            let ctype = if json_route { JSON } else { TEXT };
            respond(&mut stream, 200, ctype, &text)
        }
        // The gateway knows which process each servelet is: attach the
        // failing servelet's address to unavailability/timeout bodies.
        Err(e) => {
            let extra_fields = match &e {
                DbError::ServeletUnavailable { servelet }
                | DbError::ServeletTimeout { servelet } => {
                    let address = match cluster.servelet_addr(*servelet) {
                        Some(a) => format!("\"{}\"", json_escape(&a)),
                        None => "null".to_string(),
                    };
                    format!(",\"servelet\":{servelet},\"address\":{address}")
                }
                _ => String::new(),
            };
            respond_error_with(&mut stream, &e, &extra_fields)
        }
    }
}

/// `GET /v1/cluster/topology`: the persisted placement record as JSON —
/// one entry per servelet with its stable id, transport, (for remote
/// servelets) the address its process listens on, and its replication
/// role. The `role` fields are additive — `id`/`transport`/`address`
/// keep their exact pre-replication shape, so existing consumers keep
/// parsing (pinned by `topology_endpoint_reports_placement`).
fn topology_json<S: SweepStore + Send + 'static>(cluster: &Cluster<S>) -> String {
    let topo = cluster.topology();
    let servelets: Vec<String> = topo
        .servelet_ids
        .iter()
        .map(|id| {
            let head = match topo.addr_of(*id) {
                Some(addr) => format!(
                    "{{\"id\":{id},\"transport\":\"tcp\",\"address\":\"{}\"",
                    json_escape(addr)
                ),
                None => format!("{{\"id\":{id},\"transport\":\"in-process\",\"address\":null"),
            };
            let role = match topo.role_of(*id) {
                Some(forkbase::TopoRole::Primary { anchor }) => {
                    format!(",\"role\":\"primary\",\"anchor\":{anchor}")
                }
                Some(forkbase::TopoRole::Replica { primary }) => {
                    format!(",\"role\":\"replica\",\"primary\":{primary}")
                }
                None => String::new(),
            };
            format!("{head}{role}}}")
        })
        .collect();
    format!(
        "{{\"servelets\":[{}],\"next_id\":{}}}",
        servelets.join(","),
        topo.next_id
    )
}

/// `GET /v1/cluster/replication`: per-primary replication status — the
/// capture sequence and, per replica, the applied sequence, staleness
/// bound (`lag`), unshipped entries, and whether a full resync is due.
fn replication_json<S: SweepStore + Send + 'static>(cluster: &Cluster<S>) -> String {
    let status = cluster.replication_status();
    let primaries: Vec<String> = status
        .primaries
        .iter()
        .map(|p| {
            let replicas: Vec<String> = p
                .replicas
                .iter()
                .map(|r| {
                    let addr = match &r.addr {
                        Some(a) => format!("\"{}\"", json_escape(a)),
                        None => "null".to_string(),
                    };
                    format!(
                        "{{\"id\":{},\"address\":{addr},\"acked_seq\":{},\"lag\":{},\
                         \"pending\":{},\"needs_full_sync\":{}}}",
                        r.id, r.acked_seq, r.lag, r.pending, r.needs_full_sync
                    )
                })
                .collect();
            format!(
                "{{\"primary\":{},\"anchor\":{},\"seq\":{},\"replicas\":[{}]}}",
                p.primary,
                p.anchor,
                p.seq,
                replicas.join(",")
            )
        })
        .collect();
    format!("{{\"primaries\":[{}]}}", primaries.join(","))
}

/// `GET /v1/cluster/health`: one record per servelet plus an overall
/// `degraded` flag, so a dashboard polls a single endpoint.
fn health_json<S: SweepStore + Send + 'static>(cluster: &Cluster<S>) -> String {
    let health = cluster.health();
    let degraded = health
        .iter()
        .any(|h| h.state != forkbase::HealthState::Alive);
    let servelets: Vec<String> = health
        .iter()
        .map(|h| {
            let last_error = match &h.last_error {
                Some(e) => format!("\"{}\"", json_escape(e)),
                None => "null".to_string(),
            };
            format!(
                "{{\"id\":{},\"state\":\"{}\",\"consecutive_failures\":{},\"last_error\":{}}}",
                h.servelet,
                h.state.as_str(),
                h.consecutive_failures,
                last_error
            )
        })
        .collect();
    format!(
        "{{\"servelets\":[{}],\"degraded\":{degraded}}}",
        servelets.join(",")
    )
}

/// One parsed HTTP request — shared by the single-node and cluster
/// handlers so both speak exactly the same dialect.
struct Request {
    method: String,
    path: String,
    query: String,
    body: Vec<u8>,
}

impl Request {
    fn query_param(&self, name: &str) -> Option<String> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then(|| url_decode(v))
        })
    }
}

/// Read one request off `stream`. `Ok(None)` means the request line was
/// malformed (the caller answers 400).
fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);

    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Ok(None);
    };
    let method = method.to_string();
    let target = target.to_string();

    // Headers: we only need Content-Length.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(|v| v.trim().to_string())
        {
            content_length = v.parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length.min(16 * 1024 * 1024)];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        body,
    }))
}

fn handle_connection<S: SweepStore>(
    mut stream: TcpStream,
    db: &ForkBase<S>,
    forks: &ForkService,
    limiter: Option<&RateLimiter>,
    peer: IpAddr,
) -> std::io::Result<()> {
    let Some(req) = read_request(&mut stream)? else {
        return respond(&mut stream, 400, TEXT, "malformed request line");
    };
    if let Some(limiter) = limiter {
        if let Err(e) = limiter.check(peer) {
            return respond_error(&mut stream, &e);
        }
    }
    let q = |name: &str| req.query_param(name);
    let branch = q("branch").unwrap_or_else(|| "master".to_string());
    let (method, path, body) = (req.method.as_str(), req.path.as_str(), &req.body);

    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    // /v1 routes are JSON end to end; legacy routes stay text/plain on
    // success (errors are JSON everywhere).
    let json_route = segments.first() == Some(&"v1");
    if let Some(result) = fork_route(forks, db, &req, &segments) {
        return match result {
            Ok(text) => respond(&mut stream, 200, JSON, &text),
            Err(e) => respond_error(&mut stream, &e),
        };
    }
    let result: Result<String, DbError> = match (method, segments.as_slice()) {
        ("GET", ["v1", key, "range"]) => range_route(
            db,
            &url_decode(key),
            &branch,
            &q("start"),
            &q("end"),
            &q("limit"),
        ),
        ("GET", ["keys"]) => Ok(db.list_keys().join("\n")),
        ("GET", ["stat"]) => Ok(db.stat().to_string()),
        ("GET", ["get", key]) => db
            .get(&url_decode(key), &branch)
            .map(|g| format!("{}\nversion: {}", g.value.summary(), g.uid)),
        ("PUT", ["put", key]) => {
            let text = String::from_utf8_lossy(body).into_owned();
            let opts = PutOptions::on_branch(branch.clone()).author("rest");
            db.put(&url_decode(key), Value::Str(text), &opts)
                .map(|c| c.uid.to_string())
        }
        ("GET", ["head", key]) => db.head(&url_decode(key), &branch).map(|u| u.to_string()),
        ("GET", ["branches", key]) => db.list_branches(&url_decode(key)).map(|bs| {
            bs.into_iter()
                .map(|b| format!("{}\t{}", b.name, b.head))
                .collect::<Vec<_>>()
                .join("\n")
        }),
        ("POST", ["branch", key, new]) => {
            let from = q("from").unwrap_or_else(|| "master".to_string());
            db.branch(&url_decode(key), &from, &url_decode(new))
                .map(|()| format!("created {new}"))
        }
        ("GET", ["diff", key]) => {
            let from = q("from").unwrap_or_else(|| "master".to_string());
            let to = q("to").unwrap_or_else(|| "master".to_string());
            db.diff(
                &url_decode(key),
                &VersionSpec::Branch(from),
                &VersionSpec::Branch(to),
            )
            .map(|d| format!("{d:?}"))
        }
        ("GET", ["history", key]) => db
            .history(&url_decode(key), &VersionSpec::Branch(branch.clone()))
            .map(|h| {
                h.into_iter()
                    .map(|e| format!("{}\t{}\t{}", e.uid, e.author, e.message))
                    .collect::<Vec<_>>()
                    .join("\n")
            }),
        ("GET", ["verify", key]) => db
            .verify_branch(&url_decode(key), &branch)
            .map(|n| format!("OK {n}")),
        _ => Err(DbError::InvalidInput(format!(
            "no route for {method} {path}"
        ))),
    };

    match result {
        Ok(text) => {
            let ctype = if json_route { JSON } else { TEXT };
            respond(&mut stream, 200, ctype, &text)
        }
        Err(e) => respond_error(&mut stream, &e),
    }
}

/// Map a [`DbError`] onto its HTTP status and write the structured JSON
/// error body. One mapping for both servers, so clients see identical
/// behavior whether they talk to a single node or the cluster gateway.
fn respond_error(stream: &mut TcpStream, e: &DbError) -> std::io::Result<()> {
    respond_error_with(stream, e, "")
}

/// [`respond_error`] with extra JSON fields spliced into the `error`
/// object (`extra_fields` starts with `,` or is empty) — the cluster
/// gateway uses this to attach the failing servelet's id and address.
fn respond_error_with(
    stream: &mut TcpStream,
    e: &DbError,
    extra_fields: &str,
) -> std::io::Result<()> {
    let status = match e {
        DbError::NoSuchKey(_) | DbError::NoSuchBranch { .. } | DbError::NoSuchVersion(_) => 404,
        // An expired (or reaped, or never-created — indistinguishable
        // after reaping) fork: the sandbox is gone, and so is its URL
        // namespace. Clients branch on `fork_expired` to re-create.
        DbError::ForkExpired { .. } => 404,
        DbError::InvalidInput(_) | DbError::TypeMismatch { .. } => 400,
        // Per-peer admission control said no: shed, don't queue. The
        // retry-after header carries the bucket's own refill estimate.
        DbError::RateLimited { .. } => 429,
        // A routed backend whose owning servelet is down: a supervisor
        // restart or topology change may heal it, so it maps to 503
        // rather than a client error.
        DbError::ServeletUnavailable { .. } => 503,
        // The RPC deadline elapsed with the outcome unknown — the gateway
        // timed out on its upstream, and (for writes) the request may
        // still have applied. 504 tells the client "ambiguous, check
        // before blindly retrying", distinct from 503's "down, retry".
        DbError::ServeletTimeout { .. } => 504,
        DbError::PermissionDenied(_) => 403,
        DbError::BranchExists { .. } | DbError::MergeConflicts(_) => 409,
        // Server-side faults. The match is deliberately wildcard-free
        // (forkbase-lint P5): a new DbError variant must pick its status
        // here rather than silently inheriting 500.
        DbError::Store(_)
        | DbError::Node(_)
        | DbError::Value(_)
        | DbError::NoCommonAncestor(_, _)
        | DbError::TamperDetected(_)
        | DbError::Remote { .. } => 500,
    };
    let body = format!(
        "{{\"error\":{{\"code\":\"{}\",\"message\":\"{}\"{extra_fields}}}}}",
        e.code(),
        json_escape(&e.to_string())
    );
    // 503 and 429 are the retryable ones: tell well-behaved clients when
    // to come back instead of letting them hot-loop. 429's hint comes
    // from the token bucket (rounded up to whole seconds, min 1).
    let retry_after = match e {
        DbError::RateLimited { retry_after_ms } => Some(retry_after_ms.div_ceil(1000).max(1)),
        _ if status == 503 => Some(1),
        _ => None,
    };
    let retry_after = retry_after.map(|s| s.to_string());
    let extra: Vec<(&str, &str)> = retry_after
        .as_deref()
        .map(|v| ("retry-after", v))
        .into_iter()
        .collect();
    respond_with(stream, status, JSON, &extra, &body)
}

/// Hard ceiling on one `/v1/<key>/range` page. The endpoint's constant-
/// memory promise only holds if the response body is bounded too: an
/// unauthenticated `limit=4000000000` must not make the server
/// materialize a multi-GB page.
const RANGE_LIMIT_MAX: usize = 10_000;

/// `GET /v1/<key>/range`: a JSON page of map entries from the streaming
/// cursor. `start` is inclusive, `end` exclusive; `limit` caps the page
/// (default 1000, clamped to [`RANGE_LIMIT_MAX`]) and `truncated` tells
/// the client whether more entries remain past the page. Keys and values
/// are rendered as (lossily decoded) strings; entries that are not valid
/// UTF-8 additionally carry `key_hex`/`value_hex` with the exact bytes,
/// so binary data survives the trip.
fn range_route<S: SweepStore>(
    db: &ForkBase<S>,
    key: &str,
    branch: &str,
    start: &Option<String>,
    end: &Option<String>,
    limit: &Option<String>,
) -> Result<String, DbError> {
    use std::ops::Bound;
    let limit: usize = match limit {
        None => 1000,
        Some(l) => l
            .parse::<usize>()
            .map_err(|_| DbError::InvalidInput(format!("limit is not a number: {l:?}")))?
            .min(RANGE_LIMIT_MAX),
    };
    let snap = db.snapshot(key, &VersionSpec::Branch(branch.to_string()))?;
    let start_bound = match start {
        Some(s) => Bound::Included(s.as_bytes()),
        None => Bound::Unbounded,
    };
    let end_bound = match end {
        Some(e) => Bound::Excluded(e.as_bytes()),
        None => Bound::Unbounded,
    };
    let mut range = snap.map_range::<&[u8], _>((start_bound, end_bound))?;
    let mut body = format!(
        "{{\"key\":\"{}\",\"version\":\"{}\",\"entries\":[",
        json_escape(key),
        snap.uid()
    );
    let mut n = 0usize;
    let mut truncated = false;
    for item in &mut range {
        let (k, v) = item?;
        if n == limit {
            truncated = true;
            break;
        }
        if n > 0 {
            body.push(',');
        }
        body.push('{');
        body.push_str(&json_bytes_field("key", &k));
        body.push(',');
        body.push_str(&json_bytes_field("value", &v));
        body.push('}');
        n += 1;
    }
    body.push_str(&format!("],\"count\":{n},\"truncated\":{truncated}}}"));
    Ok(body)
}

/// The `/v1/fork` route family, shared verbatim by the single-node
/// server and the cluster gateway (the [`ForkService`] is generic over
/// any [`ForkBackend`]). Returns `None` when `segments` is not a fork
/// route, so the caller falls through to its own table. The path prefix
/// `/v1/fork` is reserved — a data key literally named `fork` must use
/// the legacy routes.
///
/// ```text
/// POST   /v1/fork?base=B|version=UID&ttl=SECS&id=ID   → create (O(1))
/// GET    /v1/fork                                     → registry listing
/// GET    /v1/fork/<id>                                → fork info
/// DELETE /v1/fork/<id>                                → drop now (beats the reaper)
/// POST   /v1/fork/<id>/touch?ttl=SECS                 → renew the lease
/// GET    /v1/fork/<id>/get/<key>                      → fork-scoped read
/// PUT    /v1/fork/<id>/put/<key>                      → fork-scoped write (body = value)
/// GET    /v1/fork/<id>/range/<key>?start=&end=&limit= → fork-scoped map page
/// GET    /v1/fork/<id>/diff                           → diff-vs-base, all touched keys
/// ```
fn fork_route<B: ForkBackend + ?Sized>(
    forks: &ForkService,
    backend: &B,
    req: &Request,
    segments: &[&str],
) -> Option<Result<String, DbError>> {
    if segments.first() != Some(&"v1") || segments.get(1) != Some(&"fork") {
        return None;
    }
    let q = |name: &str| req.query_param(name);
    let ttl = match q("ttl").map(|t| t.parse::<u64>()) {
        None => None,
        Some(Ok(t)) => Some(t),
        Some(Err(_)) => {
            return Some(Err(DbError::InvalidInput(
                "ttl must be a number of seconds".into(),
            )))
        }
    };
    let now = forks.clock().now();
    Some(match (req.method.as_str(), &segments[2..]) {
        ("POST", []) => {
            let base = match q("version") {
                Some(v) => {
                    match forkbase::Uid::from_base32(&v).or_else(|| forkbase::Uid::from_hex(&v)) {
                        Some(uid) => VersionSpec::Version(uid),
                        None => {
                            return Some(Err(DbError::InvalidInput(format!(
                                "not a version id: {v:?}"
                            ))))
                        }
                    }
                }
                None => VersionSpec::Branch(q("base").unwrap_or_else(|| "master".to_string())),
            };
            forks.create(base, ttl, q("id")).map(|i| fork_json(&i, now))
        }
        ("GET", []) => {
            let listed: Vec<String> = forks.list().iter().map(|i| fork_json(i, now)).collect();
            Ok(format!(
                "{{\"forks\":[{}],\"live\":{}}}",
                listed.join(","),
                forks.live_count()
            ))
        }
        ("GET", [id]) => forks.info(id).map(|i| fork_json(&i, now)),
        ("DELETE", [id]) => forks.drop_fork(backend, id).map(|n| {
            format!(
                "{{\"dropped\":\"{}\",\"branches_dropped\":{n}}}",
                json_escape(id)
            )
        }),
        ("POST", [id, "touch"]) => forks.touch(id, ttl).map(|i| fork_json(&i, now)),
        ("GET", [id, "get", key]) => forks.get(backend, id, &url_decode(key)).map(|g| {
            format!(
                "{{\"value\":\"{}\",\"version\":\"{}\"}}",
                json_escape(&g.value.summary()),
                g.uid
            )
        }),
        ("PUT", [id, "put", key]) => {
            let text = String::from_utf8_lossy(&req.body).into_owned();
            let opts = PutOptions::default().author("rest");
            forks
                .put(backend, id, &url_decode(key), Value::Str(text), &opts)
                .map(|c| {
                    format!(
                        "{{\"uid\":\"{}\",\"branch\":\"{}\"}}",
                        c.uid,
                        json_escape(&c.branch)
                    )
                })
        }
        ("GET", [id, "range", key]) => fork_range_route(
            forks,
            backend,
            id,
            &url_decode(key),
            &q("start"),
            &q("end"),
            &q("limit"),
        ),
        ("GET", [id, "diff"]) => forks.diff(backend, id).map(|d| fork_diff_json(&d)),
        _ => Err(DbError::InvalidInput(format!(
            "no fork route for {} {}",
            req.method, req.path
        ))),
    })
}

/// Render one registry entry as JSON: identity, base spec, lease window
/// (absolute unix seconds plus the remaining budget at `now`), and write
/// accounting.
fn fork_json(info: &ForkInfo, now: u64) -> String {
    let base = match &info.base {
        VersionSpec::Branch(b) => format!("{{\"branch\":\"{}\"}}", json_escape(b)),
        VersionSpec::Version(u) => format!("{{\"version\":\"{u}\"}}"),
    };
    format!(
        "{{\"id\":\"{}\",\"branch\":\"{}\",\"base\":{base},\
         \"created_at\":{},\"expires_at\":{},\"remaining_secs\":{},\"live\":{},\
         \"writes\":{},\"touched_keys\":{}}}",
        json_escape(&info.id),
        json_escape(&info.branch()),
        info.lease.created_at,
        info.lease.expires_at,
        info.lease.remaining_at(now),
        info.lease.live_at(now),
        info.writes,
        info.touched.len()
    )
}

/// Fork-scoped `/range`: same page shape as `/v1/<key>/range`, served
/// through the fork's read spec (its branch for touched keys, the base
/// for untouched ones).
fn fork_range_route<B: ForkBackend + ?Sized>(
    forks: &ForkService,
    backend: &B,
    id: &str,
    key: &str,
    start: &Option<String>,
    end: &Option<String>,
    limit: &Option<String>,
) -> Result<String, DbError> {
    let limit: u64 = match limit {
        None => 1000,
        Some(l) => l
            .parse::<u64>()
            .map_err(|_| DbError::InvalidInput(format!("limit is not a number: {l:?}")))?
            .min(RANGE_LIMIT_MAX as u64),
    };
    let page = forks.range(
        backend,
        id,
        key,
        start.as_ref().map(|s| bytes::Bytes::from(s.clone())),
        end.as_ref().map(|e| bytes::Bytes::from(e.clone())),
        limit,
    )?;
    Ok(page_json(key, &page))
}

/// Render a [`MapPage`] in the `/v1/<key>/range` response shape.
fn page_json(key: &str, page: &MapPage) -> String {
    let mut body = format!(
        "{{\"key\":\"{}\",\"version\":\"{}\",\"entries\":[",
        json_escape(key),
        page.version
    );
    for (n, (k, v)) in page.entries.iter().enumerate() {
        if n > 0 {
            body.push(',');
        }
        body.push('{');
        body.push_str(&json_bytes_field("key", k));
        body.push(',');
        body.push_str(&json_bytes_field("value", v));
        body.push('}');
    }
    body.push_str(&format!(
        "],\"count\":{},\"truncated\":{}}}",
        page.entries.len(),
        page.truncated
    ));
    body
}

/// Render a full fork diff: one entry per touched key with its pinned
/// base version, current fork head, and value-level summary (`null` for
/// keys the fork created — there is no base to diff against).
fn fork_diff_json(diff: &ForkDiff) -> String {
    let keys: Vec<String> = diff
        .keys
        .iter()
        .map(|k| {
            let base = match &k.base {
                Some(u) => format!("\"{u}\""),
                None => "null".to_string(),
            };
            let summary = match &k.summary {
                Some(s) => diff_summary_json(s),
                None => "null".to_string(),
            };
            format!(
                "{{\"key\":\"{}\",\"base\":{base},\"head\":\"{}\",\"summary\":{summary}}}",
                json_escape(&k.key),
                k.head
            )
        })
        .collect();
    format!(
        "{{\"fork\":\"{}\",\"changed_keys\":{},\"keys\":[{}]}}",
        json_escape(&diff.fork),
        diff.changed_keys(),
        keys.join(",")
    )
}

/// Render one [`DiffSummary`] as a tagged JSON object.
fn diff_summary_json(s: &DiffSummary) -> String {
    match s {
        DiffSummary::Identical => "{\"type\":\"identical\"}".to_string(),
        DiffSummary::Primitive { from, to } => format!(
            "{{\"type\":\"primitive\",\"from\":\"{}\",\"to\":\"{}\"}}",
            json_escape(&from.summary()),
            json_escape(&to.summary())
        ),
        DiffSummary::Map {
            added,
            removed,
            modified,
            entries,
        } => {
            let rendered: Vec<String> = entries
                .iter()
                .map(|e| {
                    let mut obj = String::from("{");
                    obj.push_str(&json_bytes_field("key", &e.key));
                    for (name, side) in [("from", &e.from), ("to", &e.to)] {
                        obj.push(',');
                        match side {
                            Some(v) => obj.push_str(&json_bytes_field(name, v)),
                            None => obj.push_str(&format!("\"{name}\":null")),
                        }
                    }
                    obj.push('}');
                    obj
                })
                .collect();
            format!(
                "{{\"type\":\"map\",\"added\":{added},\"removed\":{removed},\
                 \"modified\":{modified},\"entries\":[{}]}}",
                rendered.join(",")
            )
        }
        DiffSummary::Chunked {
            from_len,
            to_len,
            shared_chunks,
            shared_bytes,
            from_chunks,
            to_chunks,
        } => format!(
            "{{\"type\":\"chunked\",\"from_len\":{from_len},\"to_len\":{to_len},\
             \"shared_chunks\":{shared_chunks},\"shared_bytes\":{shared_bytes},\
             \"from_chunks\":{from_chunks},\"to_chunks\":{to_chunks}}}"
        ),
    }
}

const TEXT: &str = "text/plain; charset=utf-8";
const JSON: &str = "application/json";

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    respond_with(stream, status, content_type, &[], body)
}

fn respond_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    let mut extra = String::new();
    for (name, value) in extra_headers {
        extra.push_str(&format!("{name}: {value}\r\n"));
    }
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\n\
         content-length: {}\r\n{extra}connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Render a byte string as `"name":"<lossy text>"`, adding a lossless
/// `"name_hex":"…"` companion when the bytes are not valid UTF-8 (the
/// lossy text alone would collapse distinct binary keys into the same
/// replacement-character string).
fn json_bytes_field(name: &str, bytes: &[u8]) -> String {
    match std::str::from_utf8(bytes) {
        Ok(text) => format!("\"{name}\":\"{}\"", json_escape(text)),
        Err(_) => {
            let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
            format!(
                "\"{name}\":\"{}\",\"{name}_hex\":\"{hex}\"",
                json_escape(&String::from_utf8_lossy(bytes))
            )
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                match u8::from_str_radix(hex, 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(bytes[i]);
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_postree::TreeConfig;
    use forkbase_store::MemStore;

    fn start() -> (RestServer, Arc<ForkBase<MemStore>>) {
        let db = Arc::new(ForkBase::with_config(
            MemStore::new(),
            TreeConfig::test_config(),
        ));
        let server = RestServer::start(Arc::clone(&db), 0).unwrap();
        (server, db)
    }

    /// Full raw response text — status line, headers, and body.
    fn request_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        let req = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(req.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let response = request_raw(addr, method, path, body);
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn put_get_roundtrip_over_http() {
        let (server, _db) = start();
        let (status, uid) = request(server.addr(), "PUT", "/put/greeting", "hello rest");
        assert_eq!(status, 200);
        assert!(uid.len() >= 52, "uid is base32: {uid}");

        let (status, body) = request(server.addr(), "GET", "/get/greeting", "");
        assert_eq!(status, 200);
        assert!(body.contains("hello rest"));
        assert!(body.contains(&uid));
        server.stop();
    }

    #[test]
    fn branch_and_diff_over_http() {
        let (server, _db) = start();
        request(server.addr(), "PUT", "/put/doc", "original");
        let (status, _) = request(server.addr(), "POST", "/branch/doc/dev?from=master", "");
        assert_eq!(status, 200);
        request(server.addr(), "PUT", "/put/doc?branch=dev", "changed");

        let (status, body) = request(server.addr(), "GET", "/diff/doc?from=master&to=dev", "");
        assert_eq!(status, 200);
        assert!(body.contains("original") && body.contains("changed"));

        let (status, body) = request(server.addr(), "GET", "/branches/doc", "");
        assert_eq!(status, 200);
        assert!(body.contains("dev") && body.contains("master"));
        server.stop();
    }

    #[test]
    fn history_verify_stat_keys() {
        let (server, _db) = start();
        request(server.addr(), "PUT", "/put/k", "v1");
        request(server.addr(), "PUT", "/put/k", "v2");

        let (_, hist) = request(server.addr(), "GET", "/history/k", "");
        assert_eq!(hist.lines().count(), 2);

        let (status, v) = request(server.addr(), "GET", "/verify/k", "");
        assert_eq!(status, 200);
        assert!(v.starts_with("OK"));

        let (_, keys) = request(server.addr(), "GET", "/keys", "");
        assert_eq!(keys.trim(), "k");

        let (_, stat) = request(server.addr(), "GET", "/stat", "");
        assert!(stat.contains("chunks:"));
        server.stop();
    }

    #[test]
    fn errors_map_to_http_statuses() {
        let (server, _db) = start();
        let (status, _) = request(server.addr(), "GET", "/get/nope", "");
        assert_eq!(status, 404);
        let (status, _) = request(server.addr(), "GET", "/no/such/route", "");
        assert_eq!(status, 400);
        let (status, _) = request(server.addr(), "GET", "/head/ghost", "");
        assert_eq!(status, 404);
        server.stop();
    }

    #[test]
    fn errors_are_structured_json() {
        let (server, _db) = start();
        let (status, body) = request(server.addr(), "GET", "/get/nope", "");
        assert_eq!(status, 404);
        assert!(
            body.contains("\"error\"") && body.contains("\"code\":\"no_such_key\""),
            "structured error body: {body}"
        );
        let (status, body) = request(server.addr(), "GET", "/no/such/route", "");
        assert_eq!(status, 400);
        assert!(body.contains("\"code\":\"invalid_input\""), "body: {body}");
    }

    #[test]
    fn v1_range_pages_map_entries() {
        let (server, db) = start();
        let pairs: Vec<(bytes::Bytes, bytes::Bytes)> = (0..50)
            .map(|i| {
                (
                    bytes::Bytes::from(format!("k{i:03}")),
                    bytes::Bytes::from(format!("v{i}")),
                )
            })
            .collect();
        let map = db.new_map(pairs).unwrap();
        db.put("table", map, &forkbase::PutOptions::default())
            .unwrap();

        // Bounded page.
        let (status, body) = request(
            server.addr(),
            "GET",
            "/v1/table/range?start=k010&end=k015",
            "",
        );
        assert_eq!(status, 200);
        assert!(body.contains("\"count\":5"), "body: {body}");
        assert!(body.contains("\"truncated\":false"));
        assert!(body.contains("{\"key\":\"k010\",\"value\":\"v10\"}"));
        assert!(!body.contains("k015"));

        // Limit + truncation marker.
        let (status, body) = request(server.addr(), "GET", "/v1/table/range?limit=7", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"count\":7") && body.contains("\"truncated\":true"));

        // Absurd limits are clamped, not honored or rejected.
        let (status, body) = request(server.addr(), "GET", "/v1/table/range?limit=4000000000", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"count\":50"), "body: {body}");

        // Binary (non-UTF-8) entries carry lossless hex companions.
        let map = db
            .new_map(vec![(
                bytes::Bytes::from_static(&[0xff, 0x01]),
                bytes::Bytes::from_static(&[0xfe]),
            )])
            .unwrap();
        db.put("bin", map, &forkbase::PutOptions::default())
            .unwrap();
        let (status, body) = request(server.addr(), "GET", "/v1/bin/range", "");
        assert_eq!(status, 200);
        assert!(
            body.contains("\"key_hex\":\"ff01\"") && body.contains("\"value_hex\":\"fe\""),
            "body: {body}"
        );

        // Missing key → structured 404.
        let (status, body) = request(server.addr(), "GET", "/v1/ghost/range", "");
        assert_eq!(status, 404);
        assert!(body.contains("\"code\":\"no_such_key\""));

        // Non-map value → 400 type mismatch.
        db.put(
            "scalar",
            Value::string("not a map"),
            &forkbase::PutOptions::default(),
        )
        .unwrap();
        let (status, body) = request(server.addr(), "GET", "/v1/scalar/range", "");
        assert_eq!(status, 400);
        assert!(body.contains("\"code\":\"type_mismatch\""), "body: {body}");
        server.stop();
    }

    #[test]
    fn url_decoding() {
        let (server, db) = start();
        request(server.addr(), "PUT", "/put/hello%20world", "spaced");
        assert!(db.list_keys().contains(&"hello world".to_string()));
        server.stop();
    }

    type RefsMap = Arc<std::sync::Mutex<std::collections::HashMap<u64, String>>>;

    /// A 3-servelet in-memory cluster behind the REST gateway. The respawn
    /// factory hands back the same `Arc<MemStore>` (chunks survive a kill,
    /// as a durable backend's would) plus the last saved branch heads, so
    /// `/v1/cluster/restart` heals kills completely.
    fn start_cluster() -> (ClusterRestServer, Arc<Cluster<Arc<MemStore>>>, RefsMap) {
        let stores: Vec<(u64, Arc<MemStore>)> =
            (0..3).map(|id| (id, Arc::new(MemStore::new()))).collect();
        let by_id: std::collections::HashMap<u64, Arc<MemStore>> = stores.iter().cloned().collect();
        let cluster = Arc::new(Cluster::from_stores(stores, TreeConfig::test_config()));
        let refs: RefsMap = Arc::default();
        let respawn_refs = Arc::clone(&refs);
        cluster.set_respawn(move |id| {
            Ok(forkbase::Respawned {
                store: Arc::clone(&by_id[&id]),
                refs: respawn_refs.lock().unwrap().get(&id).cloned(),
            })
        });
        let server = ClusterRestServer::start(Arc::clone(&cluster), 0).unwrap();
        (server, cluster, refs)
    }

    /// Snapshot every servelet's branch heads into `refs` (what the CLI's
    /// `save()` persists to each servelet's `refs` file).
    fn save_refs(cluster: &Cluster<Arc<MemStore>>, refs: &RefsMap) {
        for (slot, id) in cluster.ids().into_iter().enumerate() {
            let dump = cluster.on_node(slot, |db| db.dump_refs()).unwrap();
            refs.lock().unwrap().insert(id, dump);
        }
    }

    #[test]
    fn cluster_gateway_routes_puts_and_gets() {
        let (server, _cluster, _refs) = start_cluster();
        for i in 0..9 {
            let (status, uid) = request(
                server.addr(),
                "PUT",
                &format!("/put/key-{i}"),
                &format!("value-{i}"),
            );
            assert_eq!(status, 200);
            assert!(uid.len() >= 52, "uid is base32: {uid}");
        }
        let (status, body) = request(server.addr(), "GET", "/get/key-4", "");
        assert_eq!(status, 200);
        assert!(body.contains("value-4"), "{body}");
        let (status, keys) = request(server.addr(), "GET", "/keys", "");
        assert_eq!(status, 200);
        assert_eq!(keys.lines().count(), 9);
        let (status, _) = request(server.addr(), "GET", "/get/ghost", "");
        assert_eq!(status, 404);
        server.stop();
    }

    #[test]
    fn dead_servelet_maps_to_503_with_retry_after() {
        let (server, cluster, _refs) = start_cluster();
        request(server.addr(), "PUT", "/put/doomed", "v");
        cluster.kill_servelet(cluster.route("doomed")).unwrap();

        let raw = request_raw(server.addr(), "GET", "/get/doomed", "");
        assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
        assert!(
            raw.to_ascii_lowercase().contains("retry-after: 1"),
            "503 must carry retry-after: {raw}"
        );
        assert!(raw.contains("\"code\":\"servelet_unavailable\""), "{raw}");

        // The strict cluster-wide key list degrades the same way.
        let (status, body) = request(server.addr(), "GET", "/keys", "");
        assert_eq!(status, 503);
        assert!(body.contains("servelet_unavailable"), "{body}");
        server.stop();
    }

    #[test]
    fn missed_rpc_deadline_maps_to_504() {
        let (server, cluster, _refs) = start_cluster();
        request(server.addr(), "PUT", "/put/slow", "v");
        let mut cfg = cluster.rpc_config();
        cfg.deadline = std::time::Duration::from_millis(40);
        cfg.retry = forkbase::RetryPolicy::no_retry();
        cluster.set_rpc_config(cfg);
        // Drop every request at the RPC boundary: deterministic timeouts.
        cluster.arm_chaos(forkbase::ChaosPlan::seeded(11).drop_first(u32::MAX));

        let raw = request_raw(server.addr(), "GET", "/get/slow", "");
        assert!(raw.starts_with("HTTP/1.1 504"), "{raw}");
        assert!(raw.contains("\"code\":\"servelet_timeout\""), "{raw}");
        assert!(
            !raw.to_ascii_lowercase().contains("retry-after"),
            "504 is ambiguous — no blind-retry hint: {raw}"
        );

        cluster.disarm_chaos();
        let (status, body) = request(server.addr(), "GET", "/get/slow", "");
        assert_eq!(status, 200);
        assert!(body.contains('v'), "{body}");
        server.stop();
    }

    #[test]
    fn health_and_restart_endpoints() {
        let (server, cluster, refs) = start_cluster();
        request(server.addr(), "PUT", "/put/persist", "survives");
        save_refs(&cluster, &refs);

        let (status, body) = request(server.addr(), "GET", "/v1/cluster/health", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"degraded\":false"), "{body}");
        assert_eq!(body.matches("\"state\":\"alive\"").count(), 3, "{body}");

        let victim_slot = cluster.route("persist");
        let victim_id = cluster.ids()[victim_slot];
        cluster.kill_servelet(victim_slot).unwrap();
        let (_, body) = request(server.addr(), "GET", "/v1/cluster/health", "");
        assert!(body.contains("\"degraded\":true"), "{body}");
        assert!(
            body.contains(&format!("{{\"id\":{victim_id},\"state\":\"dead\"")),
            "{body}"
        );

        let (status, body) = request(
            server.addr(),
            "POST",
            &format!("/v1/cluster/restart/{victim_id}"),
            "",
        );
        assert_eq!(status, 200, "{body}");
        assert!(
            body.contains(&format!("\"restarted\":{victim_id}")),
            "{body}"
        );

        let (_, body) = request(server.addr(), "GET", "/v1/cluster/health", "");
        assert!(body.contains("\"degraded\":false"), "{body}");
        let (status, body) = request(server.addr(), "GET", "/get/persist", "");
        assert_eq!(status, 200);
        assert!(body.contains("survives"), "{body}");

        // Garbage id → structured 400, not a panic or a 500.
        let (status, body) = request(server.addr(), "POST", "/v1/cluster/restart/nope", "");
        assert_eq!(status, 400);
        assert!(body.contains("\"code\":\"invalid_input\""), "{body}");
        server.stop();
    }

    #[test]
    fn topology_endpoint_reports_placement() {
        let (server, cluster, _refs) = start_cluster();
        let (status, body) = request(server.addr(), "GET", "/v1/cluster/topology", "");
        assert_eq!(status, 200);
        for id in cluster.ids() {
            // The pre-replication fields are pinned byte-for-byte (in this
            // exact order) so existing consumers keep parsing; the role
            // column is strictly additive after them.
            assert!(
                body.contains(&format!(
                    "{{\"id\":{id},\"transport\":\"in-process\",\"address\":null,\
                     \"role\":\"primary\",\"anchor\":{id}}}"
                )),
                "{body}"
            );
        }
        assert!(body.contains("\"next_id\":3"), "{body}");
        server.stop();
    }

    /// The replication endpoint surfaces per-primary lag, and the topology
    /// endpoint renders the replica's role, without disturbing the
    /// pre-replication fields existing consumers parse.
    #[test]
    fn replication_endpoint_reports_lag_and_roles() {
        let (server, cluster, _refs) = start_cluster();
        let pid = cluster.ids()[0];
        let rid = cluster
            .add_replica(pid, forkbase_store::MemStore::new().into())
            .unwrap();

        // No unshipped writes yet: the replica sits at lag 0.
        let (status, body) = request(server.addr(), "GET", "/v1/cluster/replication", "");
        assert_eq!(status, 200);
        assert!(
            body.contains(&format!("\"primary\":{pid},\"anchor\":{pid}")),
            "{body}"
        );
        assert!(
            body.contains(&format!(
                "{{\"id\":{rid},\"address\":null,\"acked_seq\":0,\"lag\":0,\
                 \"pending\":0,\"needs_full_sync\":false}}"
            )),
            "{body}"
        );
        // A primary with no replicas reports an empty replica list.
        assert!(body.contains("\"replicas\":[]"), "{body}");

        // An acked write on the replicated slot raises the staleness bound
        // until the next ship pumps it across.
        let key = (0..)
            .map(|i| format!("replicated-{i}"))
            .find(|k| cluster.owner_id(k) == pid)
            .unwrap();
        request(server.addr(), "PUT", &format!("/put/{key}"), "v");
        let (_, body) = request(server.addr(), "GET", "/v1/cluster/replication", "");
        assert!(
            body.contains(&format!(
                "\"id\":{rid},\"address\":null,\"acked_seq\":0,\"lag\":1"
            )),
            "{body}"
        );
        cluster.ship_replication();
        let (_, body) = request(server.addr(), "GET", "/v1/cluster/replication", "");
        assert!(
            body.contains(&format!(
                "\"id\":{rid},\"address\":null,\"acked_seq\":1,\"lag\":0"
            )),
            "{body}"
        );

        // The topology endpoint renders the replica's role additively.
        let (_, body) = request(server.addr(), "GET", "/v1/cluster/topology", "");
        assert!(
            body.contains(&format!(
                "{{\"id\":{rid},\"transport\":\"in-process\",\"address\":null,\
                 \"role\":\"replica\",\"primary\":{pid}}}"
            )),
            "{body}"
        );
        server.stop();
    }

    #[test]
    fn unavailability_errors_carry_servelet_identity() {
        let (server, cluster, _refs) = start_cluster();
        request(server.addr(), "PUT", "/put/doomed", "v");
        let slot = cluster.route("doomed");
        let id = cluster.ids()[slot];
        cluster.kill_servelet(slot).unwrap();
        let (status, body) = request(server.addr(), "GET", "/get/doomed", "");
        assert_eq!(status, 503);
        assert!(
            body.contains(&format!("\"servelet\":{id}")),
            "error body names the servelet: {body}"
        );
        assert!(
            body.contains("\"address\":null"),
            "in-process servelets have no address: {body}"
        );
        server.stop();
    }

    #[test]
    fn gateway_sheds_connections_past_the_limit() {
        let (_s, cluster, _refs) = start_cluster();
        // Limit 1: park one slow connection (accepted, never sends its
        // request), then observe the next connection being shed.
        let server = ClusterRestServer::start_with_limit(Arc::clone(&cluster), 0, 1).unwrap();
        let addr = server.addr();
        let parked = TcpStream::connect(addr).unwrap();
        // Give the accept loop time to hand the parked connection off.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let raw = loop {
            let raw = request_raw(addr, "GET", "/keys", "");
            if raw.starts_with("HTTP/1.1 503") || std::time::Instant::now() > deadline {
                break raw;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
        assert!(raw.contains("\"code\":\"overloaded\""), "{raw}");
        assert!(
            raw.to_ascii_lowercase().contains("retry-after: 1"),
            "shed responses carry retry-after: {raw}"
        );
        drop(parked);
        // Slot released: the gateway serves again.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let (status, _) = request(addr, "GET", "/keys", "");
            if status == 200 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "gateway never recovered after shedding"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        server.stop();
    }

    /// Pull the string value of `"name":"…"` out of a flat JSON body.
    fn json_str(body: &str, name: &str) -> String {
        let tag = format!("\"{name}\":\"");
        let start = body.find(&tag).map(|i| i + tag.len()).unwrap_or_else(|| {
            panic!("field {name:?} missing in {body}");
        });
        body[start..].split('"').next().unwrap().to_string()
    }

    #[test]
    fn fork_sandbox_lifecycle_over_http() {
        let db = Arc::new(ForkBase::with_config(
            MemStore::new(),
            TreeConfig::test_config(),
        ));
        let forks = Arc::new(ForkService::new());
        let server =
            RestServer::start_configured(Arc::clone(&db), 0, Arc::clone(&forks), None).unwrap();
        let addr = server.addr();
        request(addr, "PUT", "/put/doc", "base-value");

        // Create with an explicit ttl; the response carries the lease.
        let (status, body) = request(addr, "POST", "/v1/fork?ttl=60", "");
        assert_eq!(status, 200, "{body}");
        let id = json_str(&body, "id");
        assert_eq!(json_str(&body, "branch"), format!("fork/{id}"));
        assert!(body.contains("\"live\":true"), "{body}");

        // Untouched key: the fork reads the base live.
        let (status, body) = request(addr, "GET", &format!("/v1/fork/{id}/get/doc"), "");
        assert_eq!(status, 200);
        assert!(body.contains("base-value"), "{body}");

        // A fork write lands on the fork's branch; master is untouched.
        let (status, body) = request(addr, "PUT", &format!("/v1/fork/{id}/put/doc"), "forked");
        assert_eq!(status, 200, "{body}");
        assert_eq!(json_str(&body, "branch"), format!("fork/{id}"));
        let (_, body) = request(addr, "GET", &format!("/v1/fork/{id}/get/doc"), "");
        assert!(body.contains("forked"), "{body}");
        let (_, body) = request(addr, "GET", "/get/doc", "");
        assert!(body.contains("base-value"), "{body}");

        // Diff-vs-base is exact and structured.
        let (status, body) = request(addr, "GET", &format!("/v1/fork/{id}/diff"), "");
        assert_eq!(status, 200);
        assert!(body.contains("\"changed_keys\":1"), "{body}");
        assert!(body.contains("\"type\":\"primitive\""), "{body}");
        assert!(
            body.contains("base-value") && body.contains("forked"),
            "{body}"
        );

        // The registry listing counts it live; touch renews the lease.
        let (_, body) = request(addr, "GET", "/v1/fork", "");
        assert!(body.contains("\"live\":1"), "{body}");
        let (status, body) = request(addr, "POST", &format!("/v1/fork/{id}/touch?ttl=600"), "");
        assert_eq!(status, 200);
        assert!(body.contains("\"remaining_secs\":600"), "{body}");

        // Expiry: every fork verb 404s with the structured code.
        forks.clock().advance(601);
        let (status, body) = request(addr, "GET", &format!("/v1/fork/{id}/get/doc"), "");
        assert_eq!(status, 404);
        assert!(body.contains("\"code\":\"fork_expired\""), "{body}");
        // …but DELETE still collects it (explicit drop beats the reaper).
        let (status, body) = request(addr, "DELETE", &format!("/v1/fork/{id}"), "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"branches_dropped\":1"), "{body}");
        assert!(!db
            .list_branches("doc")
            .unwrap()
            .iter()
            .any(|b| b.name.starts_with("fork/")));
        server.stop();
    }

    #[test]
    fn cluster_gateway_serves_fork_routes() {
        let stores: Vec<(u64, Arc<MemStore>)> =
            (0..3).map(|id| (id, Arc::new(MemStore::new()))).collect();
        let cluster = Arc::new(Cluster::from_stores(stores, TreeConfig::test_config()));
        let forks = Arc::new(ForkService::new());
        let server = ClusterRestServer::start_configured(
            Arc::clone(&cluster),
            0,
            DEFAULT_CONNECTION_LIMIT,
            Arc::clone(&forks),
            None,
        )
        .unwrap();
        let addr = server.addr();
        for i in 0..6 {
            request(addr, "PUT", &format!("/put/key-{i}"), &format!("v{i}"));
        }
        let (status, body) = request(addr, "POST", "/v1/fork", "");
        assert_eq!(status, 200, "{body}");
        let id = json_str(&body, "id");
        // Fork writes route to each key's owning servelet like any verb.
        for i in 0..6 {
            let (status, _) = request(
                addr,
                "PUT",
                &format!("/v1/fork/{id}/put/key-{i}"),
                &format!("fork-v{i}"),
            );
            assert_eq!(status, 200);
        }
        for i in 0..6 {
            let (_, body) = request(addr, "GET", &format!("/v1/fork/{id}/get/key-{i}"), "");
            assert!(body.contains(&format!("fork-v{i}")), "{body}");
            let (_, body) = request(addr, "GET", &format!("/get/key-{i}"), "");
            assert!(
                body.contains(&format!("v{i}")) && !body.contains("fork-"),
                "{body}"
            );
        }
        let (status, body) = request(addr, "GET", &format!("/v1/fork/{id}/diff"), "");
        assert_eq!(status, 200);
        assert!(body.contains("\"changed_keys\":6"), "{body}");
        let (status, _) = request(addr, "DELETE", &format!("/v1/fork/{id}"), "");
        assert_eq!(status, 200);
        server.stop();
    }

    #[test]
    fn rate_limited_gateway_sheds_with_429() {
        let (server, db) = start();
        drop(server);
        let limiter = Arc::new(RateLimiter::new(forkbase::RateLimit::new(5.0, 2.0)));
        let server =
            RestServer::start_configured(db, 0, Arc::new(ForkService::new()), Some(limiter))
                .unwrap();
        let addr = server.addr();
        // The burst admits two requests; the third is shed with the
        // structured code and a whole-seconds retry-after hint.
        request(addr, "PUT", "/put/k", "v");
        let (status, _) = request(addr, "GET", "/get/k", "");
        assert_eq!(status, 200);
        let raw = request_raw(addr, "GET", "/get/k", "");
        assert!(raw.starts_with("HTTP/1.1 429"), "{raw}");
        assert!(raw.contains("\"code\":\"rate_limited\""), "{raw}");
        assert!(
            raw.to_ascii_lowercase().contains("retry-after: 1"),
            "429 carries retry-after: {raw}"
        );
        // Waiting out the hint admits again.
        std::thread::sleep(std::time::Duration::from_millis(250));
        let (status, _) = request(addr, "GET", "/get/k", "");
        assert_eq!(status, 200);
        server.stop();
    }

    #[test]
    fn concurrent_http_clients() {
        let (server, db) = start();
        let addr = server.addr();
        let mut handles = Vec::new();
        for t in 0..6 {
            handles.push(std::thread::spawn(move || {
                for i in 0..10 {
                    let (status, _) = request(addr, "PUT", &format!("/put/key-{t}-{i}"), "payload");
                    assert_eq!(status, 200);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.list_keys().len(), 60);
        server.stop();
    }
}
