//! A CLI session: a durable ForkBase database rooted in a directory.
//!
//! Layout:
//!
//! ```text
//! <root>/chunks/MANIFEST    — chunk-store segment list (atomic swap)
//! <root>/chunks/pack-*.fbk  — the chunk store (append-only pack files)
//! <root>/refs               — branch heads (the only mutable file)
//! <root>/FORKS              — fork-sandbox registry (leases resume on reopen)
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;

use forkbase::{DbError, DbResult, ForkBase, ForkService};
use forkbase_store::FileStore;

/// A database bound to an on-disk directory.
pub struct Session {
    db: Arc<ForkBase<FileStore>>,
    forks: Arc<ForkService>,
    refs_path: PathBuf,
    forks_path: PathBuf,
}

impl Session {
    /// Open (or initialize) a database under `root`.
    pub fn open(root: impl AsRef<Path>) -> DbResult<Session> {
        let root = root.as_ref();
        let store = FileStore::open(root.join("chunks"))?;
        let db = Arc::new(ForkBase::new(store));
        let refs_path = root.join("refs");
        if refs_path.exists() {
            let text = std::fs::read_to_string(&refs_path)
                .map_err(|e| DbError::Store(forkbase_store::StoreError::Io(e)))?;
            db.load_refs(&text)?;
        }
        // Resume fork leases from the FORKS record. Leases are absolute
        // unix seconds, so a fork created before a restart keeps exactly
        // the expiry it was promised.
        let forks = Arc::new(ForkService::new());
        let forks_path = root.join("FORKS");
        if forks_path.exists() {
            let text = std::fs::read_to_string(&forks_path)
                .map_err(|e| DbError::Store(forkbase_store::StoreError::Io(e)))?;
            forks.load(&text)?;
        }
        Ok(Session {
            db,
            forks,
            refs_path,
            forks_path,
        })
    }

    /// The database handle.
    pub fn db(&self) -> &ForkBase<FileStore> {
        &self.db
    }

    /// Shared handle for long-running services (REST server).
    pub fn db_arc(&self) -> Arc<ForkBase<FileStore>> {
        Arc::clone(&self.db)
    }

    /// The fork-sandbox registry this session persists.
    pub fn forks(&self) -> &ForkService {
        &self.forks
    }

    /// Shared handle to the fork registry (what the REST server holds).
    pub fn forks_arc(&self) -> Arc<ForkService> {
        Arc::clone(&self.forks)
    }

    /// Persist branch heads and the fork registry, flushing the chunk
    /// store first.
    pub fn save(&self) -> DbResult<()> {
        forkbase_store::ChunkStore::sync(self.db.store())?;
        for (path, contents) in [
            (&self.refs_path, self.db.dump_refs()),
            (&self.forks_path, self.forks.dump()),
        ] {
            let tmp = path.with_extension("tmp");
            std::fs::write(&tmp, contents)
                .and_then(|()| std::fs::rename(&tmp, path))
                .map_err(|e| DbError::Store(forkbase_store::StoreError::Io(e)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase::{PutOptions, VersionSpec};
    use forkbase_types::Value;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("forkbase-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn state_survives_reopen() {
        let root = temp_root("reopen");
        {
            let s = Session::open(&root).unwrap();
            s.db()
                .put("doc", Value::string("persisted"), &PutOptions::default())
                .unwrap();
            s.db().branch("doc", "master", "dev").unwrap();
            s.save().unwrap();
        }
        let s = Session::open(&root).unwrap();
        assert_eq!(
            s.db().get("doc", "master").unwrap().value.as_str(),
            Some("persisted")
        );
        assert_eq!(s.db().list_branches("doc").unwrap().len(), 2);
        // History intact and verifiable after restart.
        s.db().verify_branch("doc", "master").unwrap();
        let h = s
            .db()
            .history("doc", &VersionSpec::branch("master"))
            .unwrap();
        assert_eq!(h.len(), 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn logical_clock_advances_after_reload() {
        let root = temp_root("clock");
        let first_time;
        {
            let s = Session::open(&root).unwrap();
            let c = s
                .db()
                .put("k", Value::Int(1), &PutOptions::default())
                .unwrap();
            first_time = s.db().meta(&c.uid).unwrap().logical_time;
            s.save().unwrap();
        }
        let s = Session::open(&root).unwrap();
        let c2 = s
            .db()
            .put("k", Value::Int(2), &PutOptions::default())
            .unwrap();
        assert!(s.db().meta(&c2.uid).unwrap().logical_time > first_time);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn fork_leases_survive_reopen() {
        let root = temp_root("forks");
        let fork_id;
        {
            let s = Session::open(&root).unwrap();
            s.db()
                .put("doc", Value::string("base"), &PutOptions::default())
                .unwrap();
            let info = s
                .forks()
                .create(VersionSpec::branch("master"), Some(3600), None)
                .unwrap();
            fork_id = info.id.clone();
            s.forks()
                .put(
                    s.db(),
                    &fork_id,
                    "doc",
                    Value::string("forked"),
                    &PutOptions::default(),
                )
                .unwrap();
            s.save().unwrap();
        }
        let s = Session::open(&root).unwrap();
        // The lease, the pinned base, and the touched-key set all resume.
        let info = s.forks().info(&fork_id).unwrap();
        assert_eq!(info.writes, 1);
        assert_eq!(info.touched.len(), 1);
        let got = s.forks().get(s.db(), &fork_id, "doc").unwrap();
        assert_eq!(got.value.as_str(), Some("forked"));
        let diff = s.forks().diff(s.db(), &fork_id).unwrap();
        assert_eq!(diff.changed_keys(), 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupted_refs_rejected() {
        let root = temp_root("badrefs");
        {
            let s = Session::open(&root).unwrap();
            s.db()
                .put("k", Value::Int(1), &PutOptions::default())
                .unwrap();
            s.save().unwrap();
        }
        // Point the ref at a nonexistent uid.
        let refs = root.join("refs");
        std::fs::write(&refs, format!("k\tmaster\t{}\n", "ab".repeat(32))).unwrap();
        assert!(Session::open(&root).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
