//! A CLI session: a durable ForkBase database rooted in a directory.
//!
//! Layout:
//!
//! ```text
//! <root>/chunks/MANIFEST    — chunk-store segment list (atomic swap)
//! <root>/chunks/pack-*.fbk  — the chunk store (append-only pack files)
//! <root>/refs               — branch heads (the only mutable file)
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;

use forkbase::{DbError, DbResult, ForkBase};
use forkbase_store::FileStore;

/// A database bound to an on-disk directory.
pub struct Session {
    db: Arc<ForkBase<FileStore>>,
    refs_path: PathBuf,
}

impl Session {
    /// Open (or initialize) a database under `root`.
    pub fn open(root: impl AsRef<Path>) -> DbResult<Session> {
        let root = root.as_ref();
        let store = FileStore::open(root.join("chunks"))?;
        let db = Arc::new(ForkBase::new(store));
        let refs_path = root.join("refs");
        if refs_path.exists() {
            let text = std::fs::read_to_string(&refs_path)
                .map_err(|e| DbError::Store(forkbase_store::StoreError::Io(e)))?;
            db.load_refs(&text)?;
        }
        Ok(Session { db, refs_path })
    }

    /// The database handle.
    pub fn db(&self) -> &ForkBase<FileStore> {
        &self.db
    }

    /// Shared handle for long-running services (REST server).
    pub fn db_arc(&self) -> Arc<ForkBase<FileStore>> {
        Arc::clone(&self.db)
    }

    /// Persist branch heads and flush the chunk store.
    pub fn save(&self) -> DbResult<()> {
        forkbase_store::ChunkStore::sync(self.db.store())?;
        let tmp = self.refs_path.with_extension("tmp");
        std::fs::write(&tmp, self.db.dump_refs())
            .and_then(|()| std::fs::rename(&tmp, &self.refs_path))
            .map_err(|e| DbError::Store(forkbase_store::StoreError::Io(e)))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase::{PutOptions, VersionSpec};
    use forkbase_types::Value;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("forkbase-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn state_survives_reopen() {
        let root = temp_root("reopen");
        {
            let s = Session::open(&root).unwrap();
            s.db()
                .put("doc", Value::string("persisted"), &PutOptions::default())
                .unwrap();
            s.db().branch("doc", "master", "dev").unwrap();
            s.save().unwrap();
        }
        let s = Session::open(&root).unwrap();
        assert_eq!(
            s.db().get("doc", "master").unwrap().value.as_str(),
            Some("persisted")
        );
        assert_eq!(s.db().list_branches("doc").unwrap().len(), 2);
        // History intact and verifiable after restart.
        s.db().verify_branch("doc", "master").unwrap();
        let h = s
            .db()
            .history("doc", &VersionSpec::branch("master"))
            .unwrap();
        assert_eq!(h.len(), 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn logical_clock_advances_after_reload() {
        let root = temp_root("clock");
        let first_time;
        {
            let s = Session::open(&root).unwrap();
            let c = s
                .db()
                .put("k", Value::Int(1), &PutOptions::default())
                .unwrap();
            first_time = s.db().meta(&c.uid).unwrap().logical_time;
            s.save().unwrap();
        }
        let s = Session::open(&root).unwrap();
        let c2 = s
            .db()
            .put("k", Value::Int(2), &PutOptions::default())
            .unwrap();
        assert!(s.db().meta(&c2.uid).unwrap().logical_time > first_time);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupted_refs_rejected() {
        let root = temp_root("badrefs");
        {
            let s = Session::open(&root).unwrap();
            s.db()
                .put("k", Value::Int(1), &PutOptions::default())
                .unwrap();
            s.save().unwrap();
        }
        // Point the ref at a nonexistent uid.
        let refs = root.join("refs");
        std::fs::write(&refs, format!("k\tmaster\t{}\n", "ab".repeat(32))).unwrap();
        assert!(Session::open(&root).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
