//! The command-line verb set.
//!
//! Mirrors the paper's API layer verbs (Fig. 1): `put get list branch
//! merge select stat export diff head rename latest meta history verify`
//! plus `gc` (mark-and-sweep with physical compaction) and dataset
//! commands (`load-csv`, `export-csv`, `diff-csv`) that exercise the
//! table layer the way the demo's Web UI does.
//!
//! Implemented as a pure function over any [`ForkBase`] instance so tests
//! and the REST layer reuse it without spawning processes. The store must
//! support [`SweepStore`] (all shipped stores do) so the `gc` verb can
//! physically reclaim space.

use forkbase::{DbError, DbResult, ForkBase, PutOptions, VersionSpec};
use forkbase_postree::MergePolicy;
use forkbase_store::SweepStore;
use forkbase_table::TableStore;
use forkbase_types::Value;

/// Run one command against `db`, returning its textual output.
///
/// `args` excludes the program name (e.g. `["put", "key", "value"]`).
pub fn run_command<S: SweepStore>(db: &ForkBase<S>, args: &[&str]) -> DbResult<String> {
    let usage = || -> DbError {
        DbError::InvalidInput(
            "usage: put|batch|get|head|latest|meta|history|list|branches|branch|rename-branch|\
             delete-branch|merge|diff|select|stat|gc|export|verify|load-csv|export-csv|diff-csv|\
             bundle-export|bundle-import|prove \
             … (see README; `forkbase cluster …` drives the sharded cluster)"
                .into(),
        )
    };
    let Some((&verb, rest)) = args.split_first() else {
        return Err(usage());
    };
    // Common flag parsing: trailing `--branch NAME --author NAME --message TEXT`.
    let mut positional = Vec::new();
    let mut branch = "master".to_string();
    let mut author = "cli".to_string();
    let mut message = String::new();
    let mut it = rest.iter();
    while let Some(&a) = it.next() {
        match a {
            "--branch" => {
                branch = it
                    .next()
                    .ok_or_else(|| DbError::InvalidInput("--branch needs a value".into()))?
                    .to_string();
            }
            "--author" => {
                author = it
                    .next()
                    .ok_or_else(|| DbError::InvalidInput("--author needs a value".into()))?
                    .to_string();
            }
            "--message" => {
                message = it
                    .next()
                    .ok_or_else(|| DbError::InvalidInput("--message needs a value".into()))?
                    .to_string();
            }
            other => positional.push(other),
        }
    }
    let opts = PutOptions {
        branch: branch.clone(),
        author,
        message,
    };
    let pos = |i: usize| -> DbResult<&str> { positional.get(i).copied().ok_or_else(usage) };

    match verb {
        "put" => {
            let key = pos(0)?;
            let value = pos(1)?;
            let commit = db.put(key, Value::string(value), &opts)?;
            Ok(format!("{} -> {}", commit.branch, commit.uid))
        }
        "batch" => {
            // batch put:KEY=VALUE… del:KEY… [--branch B]: stage string puts
            // and branch deletions across any number of keys, committed
            // atomically — every head swings together or none do.
            if positional.is_empty() {
                return Err(DbError::InvalidInput(
                    "batch needs at least one op: put:KEY=VALUE or del:KEY".into(),
                ));
            }
            let mut wb = db.write_batch();
            for spec in &positional {
                if let Some(rest) = spec.strip_prefix("put:") {
                    let (key, value) = rest.split_once('=').ok_or_else(|| {
                        DbError::InvalidInput(format!("batch put op needs KEY=VALUE: {spec:?}"))
                    })?;
                    wb.put(key, Value::string(value), &opts);
                } else if let Some(key) = spec.strip_prefix("del:") {
                    wb.delete_branch(key, &branch);
                } else {
                    return Err(DbError::InvalidInput(format!(
                        "unknown batch op {spec:?} (put:KEY=VALUE | del:KEY)"
                    )));
                }
            }
            let outcomes = wb.commit()?;
            let mut out = String::new();
            for o in outcomes {
                match o {
                    forkbase::BatchOutcome::Committed(c) => {
                        out.push_str(&format!("{} -> {}\n", c.branch, c.uid));
                    }
                    forkbase::BatchOutcome::Deleted { key, branch } => {
                        out.push_str(&format!("deleted {key}@{branch}\n"));
                    }
                }
            }
            Ok(out)
        }
        "get" => {
            let key = pos(0)?;
            let got = db.get(key, &branch)?;
            Ok(format!("{}\n(version {})", got.value.summary(), got.uid))
        }
        "head" => {
            let key = pos(0)?;
            Ok(db.head(key, &branch)?.to_string())
        }
        "latest" => {
            let key = pos(0)?;
            let mut out = String::new();
            for b in db.latest(key)? {
                out.push_str(&format!("{}\t{}\n", b.name, b.head));
            }
            Ok(out)
        }
        "meta" => {
            let uid = parse_uid(pos(0)?)?;
            let m = db.meta(&uid)?;
            Ok(format!(
                "uid:     {}\ntype:    {}\nauthor:  {}\nmessage: {}\ntime:    {}\nbases:   {}",
                m.uid,
                m.value_type,
                m.author,
                m.message,
                m.logical_time,
                m.bases
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        }
        "history" => {
            let key = pos(0)?;
            let mut out = String::new();
            for h in db.history(key, &VersionSpec::Branch(branch.clone()))? {
                out.push_str(&format!(
                    "{}  [{}] {} — {}\n",
                    h.uid,
                    h.logical_time,
                    h.author,
                    if h.message.is_empty() {
                        "(no message)"
                    } else {
                        &h.message
                    }
                ));
            }
            Ok(out)
        }
        "list" => Ok(db.list_keys().join("\n")),
        "branches" => {
            let key = pos(0)?;
            Ok(db
                .list_branches(key)?
                .into_iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
                .join("\n"))
        }
        "branch" => {
            let key = pos(0)?;
            let new_branch = pos(1)?;
            db.branch(key, &branch, new_branch)?;
            Ok(format!("created branch {new_branch} from {branch}"))
        }
        "rename-branch" => {
            let key = pos(0)?;
            let old = pos(1)?;
            let new = pos(2)?;
            db.rename_branch(key, old, new)?;
            Ok(format!("renamed {old} -> {new}"))
        }
        "delete-branch" => {
            let key = pos(0)?;
            let name = pos(1)?;
            db.delete_branch(key, name)?;
            Ok(format!("deleted branch {name}"))
        }
        "merge" => {
            let key = pos(0)?;
            let src = pos(1)?;
            let policy = match positional.get(2).copied() {
                None | Some("fail") => MergePolicy::Fail,
                Some("ours") => MergePolicy::Ours,
                Some("theirs") => MergePolicy::Theirs,
                Some(p) => {
                    return Err(DbError::InvalidInput(format!(
                        "unknown merge policy {p:?} (fail|ours|theirs)"
                    )))
                }
            };
            let commit = db.merge(key, &branch, src, policy, &opts)?;
            Ok(format!("merged {src} into {branch} -> {}", commit.uid))
        }
        "diff" => {
            let key = pos(0)?;
            let other = pos(1)?;
            let diff = db.diff(
                key,
                &VersionSpec::Branch(branch.clone()),
                &VersionSpec::Branch(other.to_string()),
            )?;
            Ok(render_value_diff(&diff))
        }
        "select" => {
            let key = pos(0)?;
            let start = positional.get(1).copied();
            let end = positional.get(2).copied();
            let got = db.get(key, &branch)?;
            let entries =
                db.map_select(&got.value, start.map(str::as_bytes), end.map(str::as_bytes))?;
            let mut out = String::new();
            for (k, v) in entries {
                out.push_str(&format!(
                    "{}\t{}\n",
                    String::from_utf8_lossy(&k),
                    String::from_utf8_lossy(&v)
                ));
            }
            Ok(out)
        }
        "stat" => Ok(db.stat().to_string()),
        "gc" => {
            // Mark-and-sweep plus physical compaction (the store seals its
            // own log first); stops the world for writers only.
            let report = db.gc()?;
            Ok(report.to_string())
        }
        "export" => {
            let key = pos(0)?;
            let mut buf = Vec::new();
            db.export(key, &VersionSpec::Branch(branch.clone()), &mut buf)?;
            Ok(String::from_utf8_lossy(&buf).into_owned())
        }
        "verify" => {
            let key = pos(0)?;
            let n = db.verify_branch(key, &branch)?;
            Ok(format!("OK: verified {n} version(s) of {key}@{branch}"))
        }
        "load-csv" => {
            let key = pos(0)?;
            let csv = pos(1)?; // inline CSV text (REST/test path) or @file
            let text = if let Some(path) = csv.strip_prefix('@') {
                std::fs::read_to_string(path)
                    .map_err(|e| DbError::Store(forkbase_store::StoreError::Io(e)))?
            } else {
                csv.to_string()
            };
            let key_col: usize = positional
                .get(2)
                .map(|s| s.parse())
                .transpose()
                .map_err(|_| DbError::InvalidInput("key column must be a number".into()))?
                .unwrap_or(0);
            let commit = TableStore::new(db).load_csv(key, &text, key_col, &opts)?;
            Ok(format!("loaded -> {}", commit.uid))
        }
        "export-csv" => {
            let key = pos(0)?;
            TableStore::new(db).export_csv(key, &VersionSpec::Branch(branch.clone()))
        }
        "diff-csv" => {
            let key = pos(0)?;
            let other = pos(1)?;
            let diff = TableStore::new(db).diff(
                key,
                &VersionSpec::Branch(branch.clone()),
                &VersionSpec::Branch(other.to_string()),
            )?;
            Ok(diff.render())
        }
        "bundle-export" => {
            let key = pos(0)?;
            let path = pos(1)?;
            let branches: Vec<&str> = positional[2..].to_vec();
            let mut file = std::fs::File::create(path)
                .map_err(|e| DbError::Store(forkbase_store::StoreError::Io(e)))?;
            let chunks = forkbase::export_bundle(db, key, &branches, &mut file)?;
            Ok(format!("wrote {chunks} chunk(s) to {path}"))
        }
        "bundle-import" => {
            let path = pos(0)?;
            let mut file = std::fs::File::open(path)
                .map_err(|e| DbError::Store(forkbase_store::StoreError::Io(e)))?;
            let refs = forkbase::import_bundle(db, &mut file)?;
            let mut out = String::new();
            for r in refs {
                out.push_str(&format!("{}@{} -> {}\n", r.key, r.branch, r.uid));
            }
            Ok(out)
        }
        "prove" => {
            // prove <key> <entry-key> [--branch B]: emit a light-client
            // proof and immediately check it against the head uid.
            let key = pos(0)?;
            let entry_key = pos(1)?;
            let (proof, uid) = db.prove_entry(
                key,
                &VersionSpec::Branch(branch.clone()),
                entry_key.as_bytes(),
            )?;
            let value = db.verify_entry_proof(&uid, entry_key.as_bytes(), &proof)?;
            Ok(format!(
                "version: {uid}\nproof:   {} node(s), {} bytes\nresult:  {}",
                proof.nodes.len(),
                proof.size_bytes(),
                match value {
                    Some(v) => format!("present, value = {:?}", String::from_utf8_lossy(&v)),
                    None => "absent (absence proven)".to_string(),
                }
            ))
        }
        _ => Err(usage()),
    }
}

fn parse_uid(s: &str) -> DbResult<forkbase::Uid> {
    forkbase::Uid::from_base32(s)
        .or_else(|| forkbase::Uid::from_hex(s))
        .ok_or_else(|| DbError::InvalidInput(format!("not a version id: {s:?}")))
}

fn render_value_diff(diff: &forkbase::ValueDiff) -> String {
    match diff {
        forkbase::ValueDiff::Identical => "identical".to_string(),
        forkbase::ValueDiff::Primitive { from, to } => {
            format!("- {}\n+ {}", from.summary(), to.summary())
        }
        forkbase::ValueDiff::Map(d) => {
            let (a, r, m) = d.counts();
            let mut out = format!("+{a} -{r} ~{m} entr(ies)\n");
            for e in &d.entries {
                match e {
                    forkbase_postree::DiffEntry::Added { key, value } => out.push_str(&format!(
                        "+ {}\t{}\n",
                        String::from_utf8_lossy(key),
                        String::from_utf8_lossy(value)
                    )),
                    forkbase_postree::DiffEntry::Removed { key, value } => out.push_str(&format!(
                        "- {}\t{}\n",
                        String::from_utf8_lossy(key),
                        String::from_utf8_lossy(value)
                    )),
                    forkbase_postree::DiffEntry::Modified { key, from, to } => {
                        out.push_str(&format!(
                            "~ {}\t{} -> {}\n",
                            String::from_utf8_lossy(key),
                            String::from_utf8_lossy(from),
                            String::from_utf8_lossy(to)
                        ))
                    }
                }
            }
            out
        }
        forkbase::ValueDiff::Chunked {
            from_len,
            to_len,
            shared_chunks,
            shared_bytes,
            from_chunks,
            to_chunks,
        } => format!(
            "chunked value: {from_len} -> {to_len} bytes/items; \
             {shared_chunks} of {from_chunks}/{to_chunks} chunks shared ({shared_bytes} bytes)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_postree::TreeConfig;
    use forkbase_store::MemStore;

    fn db() -> ForkBase<MemStore> {
        ForkBase::with_config(MemStore::new(), TreeConfig::test_config())
    }

    #[test]
    fn put_get_head_cycle() {
        let db = db();
        let out = run_command(&db, &["put", "greeting", "hello"]).unwrap();
        assert!(out.starts_with("master -> "));
        let out = run_command(&db, &["get", "greeting"]).unwrap();
        assert!(out.contains("\"hello\""));
        let head = run_command(&db, &["head", "greeting"]).unwrap();
        assert!(out.contains(head.trim()));
    }

    #[test]
    fn branch_and_diff_via_cli() {
        let db = db();
        run_command(&db, &["put", "k", "base"]).unwrap();
        run_command(&db, &["branch", "k", "dev"]).unwrap();
        run_command(&db, &["put", "k", "changed", "--branch", "dev"]).unwrap();
        let diff = run_command(&db, &["diff", "k", "dev"]).unwrap();
        assert!(diff.contains("base"));
        assert!(diff.contains("changed"));
        let branches = run_command(&db, &["branches", "k"]).unwrap();
        assert_eq!(branches, "dev\nmaster");
    }

    #[test]
    fn history_meta_and_verify() {
        let db = db();
        run_command(
            &db,
            &["put", "k", "v1", "--message", "first", "--author", "alice"],
        )
        .unwrap();
        run_command(&db, &["put", "k", "v2", "--message", "second"]).unwrap();
        let hist = run_command(&db, &["history", "k"]).unwrap();
        assert!(hist.contains("first"));
        assert!(hist.contains("second"));
        assert!(hist.contains("alice"));

        let head = run_command(&db, &["head", "k"]).unwrap();
        let meta = run_command(&db, &["meta", head.trim()]).unwrap();
        assert!(meta.contains("type:    string"));

        let ok = run_command(&db, &["verify", "k"]).unwrap();
        assert!(ok.contains("OK: verified 2"));
    }

    #[test]
    fn csv_workflow_via_cli() {
        let db = db();
        let csv = "id,name\n1,one\n2,two\n";
        run_command(&db, &["load-csv", "ds", csv]).unwrap();
        run_command(&db, &["branch", "ds", "vendor"]).unwrap();

        let exported = run_command(&db, &["export-csv", "ds"]).unwrap();
        assert!(exported.contains("1,one"));

        // Edit on vendor branch by re-loading a changed CSV... easier: use
        // table layer directly for the edit, then CLI diff.
        let tables = TableStore::new(&db);
        tables
            .update_cell("ds", "2", "name", "TWO", &PutOptions::on_branch("vendor"))
            .unwrap();
        let diff = run_command(&db, &["diff-csv", "ds", "vendor"]).unwrap();
        assert!(diff.contains("~ 2"));
        assert!(diff.contains("name"));
    }

    #[test]
    fn select_and_stat() {
        let db = db();
        let csv = "id,val\na,1\nb,2\nc,3\n";
        run_command(&db, &["load-csv", "ds", csv]).unwrap();
        let out = run_command(&db, &["select", "ds", "a", "c"]).unwrap();
        assert!(out.contains("a\t"));
        assert!(out.contains("b\t"));
        assert!(!out.contains("c\t"));
        let stat = run_command(&db, &["stat"]).unwrap();
        assert!(stat.contains("keys:"));
    }

    #[test]
    fn gc_reports_reclamation() {
        let db = db();
        run_command(&db, &["put", "doc", "keep me"]).unwrap();
        run_command(&db, &["branch", "doc", "scratch"]).unwrap();
        run_command(
            &db,
            &["put", "doc", "junk junk junk", "--branch", "scratch"],
        )
        .unwrap();
        run_command(&db, &["delete-branch", "doc", "scratch"]).unwrap();
        let out = run_command(&db, &["gc"]).unwrap();
        assert!(out.contains("live chunks:"), "report header: {out}");
        assert!(out.contains("reclaimed:"), "report body: {out}");
        // Survivor still readable after the sweep.
        let got = run_command(&db, &["get", "doc"]).unwrap();
        assert!(got.contains("keep me"));
    }

    #[test]
    fn merge_via_cli() {
        let db = db();
        let csv = "id,v\n1,a\n2,b\n3,c\n";
        run_command(&db, &["load-csv", "ds", csv]).unwrap();
        run_command(&db, &["branch", "ds", "dev"]).unwrap();
        let tables = TableStore::new(&db);
        tables
            .update_cell("ds", "1", "v", "dev-edit", &PutOptions::on_branch("dev"))
            .unwrap();
        let out = run_command(&db, &["merge", "ds", "dev"]).unwrap();
        assert!(out.contains("merged dev into master"));
        let row = tables
            .row("ds", &VersionSpec::branch("master"), "1")
            .unwrap()
            .unwrap();
        assert_eq!(row[1], "dev-edit");
    }

    #[test]
    fn batch_verb_commits_atomically() {
        let db = db();
        let out = run_command(
            &db,
            &["batch", "put:a=1", "put:b=2", "put:a=1b", "--author", "ops"],
        )
        .unwrap();
        assert_eq!(out.lines().count(), 3);
        // In-batch chaining: the second put on `a` based on the first.
        let hist = run_command(&db, &["history", "a"]).unwrap();
        assert_eq!(hist.lines().count(), 2);
        let got = run_command(&db, &["get", "a"]).unwrap();
        assert!(got.contains("1b"));

        // Deletions ride the same batch.
        run_command(&db, &["branch", "b", "scratch"]).unwrap();
        let out = run_command(
            &db,
            &["batch", "put:b=3", "del:scratch-key", "--branch", "x"],
        );
        assert!(out.is_err(), "bad del target must fail the whole batch");
        let out = run_command(&db, &["batch", "del:b", "--branch", "scratch"]).unwrap();
        assert!(out.contains("deleted b@scratch"));
        assert_eq!(run_command(&db, &["branches", "b"]).unwrap(), "master");

        // Atomicity on error: nothing from a failed batch lands.
        let before = run_command(&db, &["head", "a"]).unwrap();
        assert!(run_command(&db, &["batch", "put:a=new", "del:ghost"]).is_err());
        assert_eq!(run_command(&db, &["head", "a"]).unwrap(), before);

        // Malformed specs are rejected.
        assert!(run_command(&db, &["batch"]).is_err());
        assert!(run_command(&db, &["batch", "put:no-equals"]).is_err());
        assert!(run_command(&db, &["batch", "zap:a"]).is_err());
    }

    #[test]
    fn errors_are_reported() {
        let db = db();
        assert!(run_command(&db, &[]).is_err());
        assert!(run_command(&db, &["unknown-verb"]).is_err());
        assert!(run_command(&db, &["get", "missing"]).is_err());
        assert!(run_command(&db, &["put", "k"]).is_err(), "missing value");
        assert!(run_command(&db, &["meta", "not-a-uid"]).is_err());
        assert!(run_command(&db, &["merge", "k", "dev", "bogus-policy"]).is_err());
    }

    #[test]
    fn bundle_and_prove_verbs() {
        let db1 = db();
        let csv = "id,v\n1,one\n2,two\n3,three\n";
        run_command(&db1, &["load-csv", "ds", csv]).unwrap();

        let path = std::env::temp_dir().join(format!("fkb-cli-bundle-{}", std::process::id()));
        let path_str = path.to_str().unwrap();
        let out = run_command(&db1, &["bundle-export", "ds", path_str]).unwrap();
        assert!(out.contains("chunk(s)"));

        let db2 = db();
        let out = run_command(&db2, &["bundle-import", path_str]).unwrap();
        assert!(out.contains("ds@master"));
        let exported = run_command(&db2, &["export-csv", "ds"]).unwrap();
        assert!(exported.contains("2,two"));
        std::fs::remove_file(&path).unwrap();

        // Proofs: present and absent entries.
        let out = run_command(&db1, &["prove", "ds", "2"]).unwrap();
        assert!(out.contains("present"));
        let out = run_command(&db1, &["prove", "ds", "404"]).unwrap();
        assert!(out.contains("absence proven"));
    }

    #[test]
    fn rename_and_delete_branch() {
        let db = db();
        run_command(&db, &["put", "k", "v"]).unwrap();
        run_command(&db, &["branch", "k", "tmp"]).unwrap();
        run_command(&db, &["rename-branch", "k", "tmp", "kept"]).unwrap();
        assert_eq!(
            run_command(&db, &["branches", "k"]).unwrap(),
            "kept\nmaster"
        );
        run_command(&db, &["delete-branch", "k", "kept"]).unwrap();
        assert_eq!(run_command(&db, &["branches", "k"]).unwrap(), "master");
    }
}
