//! Crash-recovery tests for the segmented pack-file store.
//!
//! The compaction protocol (see `file.rs` module docs) has a small number
//! of crash windows: before the temp segments are renamed, between the
//! renames and the manifest swap, and between the swap and the victim
//! deletion. These tests construct each on-disk state a `kill -9` could
//! leave behind — by snapshotting a real compaction's before/after
//! directories and mixing them — and assert that reopening never loses an
//! acked chunk. The property test at the bottom extends PR 2's torn-tail
//! model to the multi-segment world: any prefix truncation of the active
//! segment, combined with any crashed-compaction debris, recovers to
//! exactly the expected chunk set.
//!
//! All test names contain `recovery` so CI can run this file's suite with
//! `cargo test --release -p forkbase_store -- recovery`.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use forkbase_crypto::{sha256, Hash};
use forkbase_store::crc::crc32;
use forkbase_store::{ChunkStore, FileStore, FileStoreConfig};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "forkbase-recovery-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn chunk(tag: &str, i: u32, len: usize) -> Bytes {
    let mut v = format!("{tag}-{i:06}-").into_bytes();
    v.resize(len.max(v.len()), b'a' + (i % 23) as u8);
    Bytes::from(v)
}

fn small_cfg() -> FileStoreConfig {
    FileStoreConfig {
        segment_bytes: 4096,
        sync_every_put: false,
        ..Default::default()
    }
}

/// Copy every regular file of `src` into `dst` (fresh).
fn snapshot_dir(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Assert the reopened store at `dir` contains exactly `expect` (hash →
/// payload) and stays usable for new writes and another reopen.
fn assert_recovers_to(dir: &Path, expect: &HashMap<Hash, Bytes>) {
    let s = FileStore::open_with(dir, small_cfg()).unwrap();
    assert_eq!(
        s.chunk_count(),
        expect.len(),
        "recovered chunk set has the wrong size"
    );
    for (h, payload) in expect {
        assert_eq!(
            s.get(h).unwrap().as_ref(),
            Some(payload),
            "acked chunk lost or corrupted by recovery"
        );
    }
    // The store must remain writable after recovery...
    let extra = s.put(Bytes::from_static(b"post-recovery write")).unwrap();
    s.sync().unwrap();
    drop(s);
    // ...and recovery must be idempotent across another open.
    let s = FileStore::open_with(dir, small_cfg()).unwrap();
    assert_eq!(s.chunk_count(), expect.len() + 1);
    assert!(s.get(&extra).unwrap().is_some());
}

/// Build a store with `total` 300-byte chunks across several segments,
/// then compact keeping every `keep_mod`-th chunk. Returns the live set
/// (hash → payload) and the dir snapshots before/after compaction.
struct CompactionFixture {
    dir: PathBuf,
    before: PathBuf,
    after: PathBuf,
    live: HashMap<Hash, Bytes>,
    all: HashMap<Hash, Bytes>,
}

fn compaction_fixture(tag: &str, total: u32, keep_mod: u32) -> CompactionFixture {
    let dir = temp_dir(tag);
    let s = FileStore::open_with(&dir, small_cfg()).unwrap();
    let mut all = HashMap::new();
    let mut live = HashMap::new();
    for i in 0..total {
        let c = chunk(tag, i, 300);
        let h = s.put(c.clone()).unwrap();
        all.insert(h, c.clone());
        if i % keep_mod == 0 {
            live.insert(h, c);
        }
    }
    s.sync().unwrap();
    let before = temp_dir(&format!("{tag}-before"));
    snapshot_dir(&dir, &before);

    let live_set: HashSet<Hash> = live.keys().copied().collect();
    let report = s.compact(&live_set).unwrap();
    assert!(report.segments_deleted > 0, "fixture must actually compact");
    drop(s);
    let after = temp_dir(&format!("{tag}-after"));
    snapshot_dir(&dir, &after);

    CompactionFixture {
        dir,
        before,
        after,
        live,
        all,
    }
}

fn cleanup(f: &CompactionFixture) {
    let _ = fs::remove_dir_all(&f.dir);
    let _ = fs::remove_dir_all(&f.before);
    let _ = fs::remove_dir_all(&f.after);
}

/// Kill window 1: crash while temp segments are being written — the old
/// manifest still rules, `.tmp` files are debris. Nothing acked is lost
/// (the dead chunks resurrect until the next GC, which is fine: GC is
/// idempotent).
#[test]
fn recovery_from_kill_during_temp_segment_write() {
    let f = compaction_fixture("killtmp", 40, 4);
    let staged = temp_dir("killtmp-staged");
    snapshot_dir(&f.before, &staged);
    // Debris: a partial temp segment (here: half of a real new pack file).
    let new_pack = fs::read_dir(&f.after)
        .unwrap()
        .map(|e| e.unwrap())
        .find(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with("pack-") && !f.before.join(&name).exists()
        })
        .expect("compaction created a new pack");
    let bytes = fs::read(new_pack.path()).unwrap();
    fs::write(
        staged.join(format!("{}.tmp", new_pack.file_name().to_string_lossy())),
        &bytes[..bytes.len() / 2],
    )
    .unwrap();

    assert_recovers_to(&staged, &f.all);
    // The debris itself must be gone after recovery.
    for e in fs::read_dir(&staged).unwrap() {
        let name = e.unwrap().file_name().to_string_lossy().into_owned();
        assert!(!name.ends_with(".fbk.tmp"), "tmp debris survived: {name}");
    }
    let _ = fs::remove_dir_all(&staged);
    cleanup(&f);
}

/// Kill window 2: crash after the temp→pack renames but before the
/// manifest swap — the new packs exist but are unlisted orphans. The old
/// manifest still names every victim, so nothing is lost; the orphans are
/// deleted.
#[test]
fn recovery_from_kill_before_manifest_swap() {
    let f = compaction_fixture("killswap", 40, 4);
    let staged = temp_dir("killswap-staged");
    snapshot_dir(&f.before, &staged);
    // Debris: every new pack file from the completed compaction, renamed
    // into place but not yet committed to the manifest.
    for e in fs::read_dir(&f.after).unwrap() {
        let e = e.unwrap();
        let name = e.file_name().to_string_lossy().into_owned();
        if name.starts_with("pack-") && !f.before.join(&name).exists() {
            fs::copy(e.path(), staged.join(&name)).unwrap();
        }
    }
    assert_recovers_to(&staged, &f.all);
    let _ = fs::remove_dir_all(&staged);
    cleanup(&f);
}

/// Kill window 3: crash after the manifest swap but before the victims
/// are deleted — the victims are unlisted and must be swept on open; the
/// store now contains exactly the live set.
#[test]
fn recovery_from_kill_before_victim_deletion() {
    let f = compaction_fixture("killvictim", 40, 4);
    let staged = temp_dir("killvictim-staged");
    snapshot_dir(&f.after, &staged);
    // Debris: resurrect every victim segment next to the new manifest.
    for e in fs::read_dir(&f.before).unwrap() {
        let e = e.unwrap();
        let name = e.file_name().to_string_lossy().into_owned();
        if name.starts_with("pack-") && !staged.join(&name).exists() {
            fs::copy(e.path(), staged.join(&name)).unwrap();
        }
    }
    assert_recovers_to(&staged, &f.live);
    // The victims must have been deleted by recovery.
    let survivors: Vec<String> = fs::read_dir(&staged)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    for e in fs::read_dir(&f.before).unwrap() {
        let name = e.unwrap().file_name().to_string_lossy().into_owned();
        if name.starts_with("pack-")
            && fs::read_dir(&f.after)
                .unwrap()
                .all(|a| a.unwrap().file_name().to_string_lossy() != name.as_str())
        {
            assert!(
                !survivors.contains(&name),
                "victim {name} not deleted on recovery"
            );
        }
    }
    let _ = fs::remove_dir_all(&staged);
    cleanup(&f);
}

/// A stale `MANIFEST.tmp` (even pure garbage) must never shadow the
/// committed manifest.
#[test]
fn recovery_ignores_stale_manifest_tmp() {
    let dir = temp_dir("staletmp");
    let mut expect = HashMap::new();
    {
        let s = FileStore::open_with(&dir, small_cfg()).unwrap();
        for i in 0..10 {
            let c = chunk("staletmp", i, 200);
            expect.insert(s.put(c.clone()).unwrap(), c);
        }
        s.sync().unwrap();
    }
    fs::write(dir.join("MANIFEST.tmp"), b"garbage from a dying process").unwrap();
    assert_recovers_to(&dir, &expect);
    assert!(!dir.join("MANIFEST.tmp").exists());
    let _ = fs::remove_dir_all(&dir);
}

/// Compacting twice in a row (e.g. a GC retried after a crash) is
/// idempotent and keeps serving the live set.
#[test]
fn recovery_gc_retry_after_compaction_is_idempotent() {
    let f = compaction_fixture("retry", 40, 4);
    let s = FileStore::open_with(&f.dir, small_cfg()).unwrap();
    let live_set: HashSet<Hash> = f.live.keys().copied().collect();
    let report = s.compact(&live_set).unwrap();
    assert_eq!(report.chunks_reclaimed, 0, "second pass finds no garbage");
    for (h, payload) in &f.live {
        assert_eq!(s.get(h).unwrap().as_ref(), Some(payload));
    }
    drop(s);
    cleanup(&f);
}

/// A sweep must be durable even when no segment is worth compacting: a
/// dead chunk inside a well-utilized (retained) segment must NOT
/// resurrect on reopen. This is what the TOMBSTONES file exists for.
#[test]
fn recovery_swept_chunks_stay_dead_across_reopen() {
    let dir = temp_dir("tombstone");
    let mut payloads = Vec::new();
    let dead;
    {
        // One big segment, 10 equal chunks, 9 live → utilization 0.9 is
        // above the 0.8 threshold, so compaction rewrites nothing.
        let s = FileStore::open(&dir).unwrap();
        for i in 0..10u32 {
            let c = chunk("tomb", i, 400);
            payloads.push((s.put(c.clone()).unwrap(), c));
        }
        s.sync().unwrap();
        dead = payloads[3].0;
        let live: HashSet<Hash> = payloads
            .iter()
            .map(|(h, _)| *h)
            .filter(|h| *h != dead)
            .collect();
        let report = s.compact(&live).unwrap();
        assert_eq!(report.chunks_reclaimed, 1);
        assert_eq!(report.segments_deleted, 0, "well-utilized: no rewrite");
        assert_eq!(s.get(&dead).unwrap(), None);
    }
    // Reopen: the swept chunk must stay dead and stay uncounted.
    let s = FileStore::open(&dir).unwrap();
    assert_eq!(s.chunk_count(), 9, "swept chunk resurrected on reopen");
    assert_eq!(s.get(&dead).unwrap(), None);
    assert!(!s.contains(&dead).unwrap());
    for (h, c) in payloads.iter().filter(|(h, _)| *h != dead) {
        assert_eq!(s.get(h).unwrap().as_ref(), Some(c));
    }
    // A second GC pass finds nothing new to reclaim (no double counting).
    let live: HashSet<Hash> = payloads
        .iter()
        .map(|(h, _)| *h)
        .filter(|h| *h != dead)
        .collect();
    assert_eq!(s.compact(&live).unwrap().chunks_reclaimed, 0);
    let _ = fs::remove_dir_all(&dir);
}

/// Re-putting previously swept content writes a fresh frame; stale
/// tombstones (which are frame-granular, not hash-granular) must never
/// shadow it across a reopen.
#[test]
fn recovery_reput_after_sweep_survives_reopen() {
    let dir = temp_dir("reput");
    let doomed = chunk("reput", 0, 300);
    let keeper = chunk("reput", 1, 300);
    let h_doomed;
    {
        let s = FileStore::open(&dir).unwrap();
        h_doomed = s.put(doomed.clone()).unwrap();
        let h_keeper = s.put(keeper.clone()).unwrap();
        s.sync().unwrap();
        // Sweep the first chunk (retained segment → tombstone), then put
        // the identical content back.
        let live: HashSet<Hash> = [h_keeper].into_iter().collect();
        // keeper alone is 50% of the segment — force the no-rewrite path
        // by a store whose only segment is above threshold: put filler
        // first so utilization stays high.
        let filler: Vec<Hash> = (2..10u32)
            .map(|i| s.put(chunk("reput", i, 300)).unwrap())
            .collect();
        s.sync().unwrap();
        let live: HashSet<Hash> = live.into_iter().chain(filler).collect();
        let report = s.compact(&live).unwrap();
        assert_eq!(report.chunks_reclaimed, 1);
        assert_eq!(report.segments_deleted, 0);
        assert!(s.put_with_hash(h_doomed, doomed.clone()).unwrap(), "re-put");
        s.sync().unwrap();
    }
    let s = FileStore::open(&dir).unwrap();
    assert_eq!(
        s.get(&h_doomed).unwrap(),
        Some(doomed),
        "re-put chunk shadowed by a stale tombstone"
    );
    assert_eq!(s.chunk_count(), 10);
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Property: torn active tail × crashed-compaction debris.
// ---------------------------------------------------------------------

const FRAME_HEADER: usize = 4 + 4 + 32;
const FRAME_TRAILER: usize = 4;

/// Encode one CRC frame exactly as the store does (layout documented in
/// `file.rs`; pinned by `recovery_handwritten_frame_matches_store_format`).
fn encode_frame(hash: &Hash, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len() + FRAME_TRAILER);
    out.extend_from_slice(b"FKB1");
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(hash.as_bytes());
    out.extend_from_slice(payload);
    let mut crc_input = Vec::with_capacity(32 + payload.len());
    crc_input.extend_from_slice(hash.as_bytes());
    crc_input.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    out
}

/// Parse the frames of a segment file, returning `(hash, frame_end)` for
/// every complete frame. Mirrors the store's replay logic.
fn scan_frames(bytes: &[u8]) -> Vec<(Hash, usize)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + FRAME_HEADER + FRAME_TRAILER <= bytes.len() && &bytes[pos..pos + 4] == b"FKB1" {
        let len = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
        let end = pos + FRAME_HEADER + len + FRAME_TRAILER;
        if end > bytes.len() {
            break;
        }
        let hash = Hash::from_slice(&bytes[pos + 8..pos + 40]).unwrap();
        out.push((hash, end));
        pos = end;
    }
    out
}

#[test]
fn recovery_handwritten_frame_matches_store_format() {
    // Guards the test-local frame encoder against format drift: a chunk
    // written by the store must be byte-identical to `encode_frame`.
    let dir = temp_dir("frameformat");
    let payload = Bytes::from_static(b"format pin payload");
    let h;
    {
        let s = FileStore::open(&dir).unwrap();
        h = s.put(payload.clone()).unwrap();
        s.sync().unwrap();
    }
    let seg = fs::read(dir.join("pack-00000000.fbk")).unwrap();
    assert_eq!(seg, encode_frame(&h, &payload));
    let _ = fs::remove_dir_all(&dir);
}

/// Find the active segment named by the MANIFEST file of `dir`.
fn manifest_active_pack(dir: &Path) -> PathBuf {
    let text = fs::read_to_string(dir.join("MANIFEST")).unwrap();
    let active: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("active "))
        .expect("manifest has an active line")
        .trim()
        .parse()
        .unwrap();
    dir.join(format!("pack-{active:08}.fbk"))
}

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Extend the torn-tail property to the multi-segment world: start
    /// from any acked multi-segment store, append an unsynced tail,
    /// truncate the active segment at ANY point past the acked boundary,
    /// scatter any subset of crashed-compaction debris (orphan packs with
    /// ghost chunks, partial temp segments), and the store must open to
    /// EXACTLY the acked chunks plus the tail frames that survived whole
    /// — ghosts and debris must vanish.
    #[test]
    fn recovery_truncation_and_orphans_yield_exactly_the_acked_chunks(
        n_acked in 4usize..24,
        n_tail in 0usize..8,
        cut_frac in 0u32..=1000,
        n_ghosts in 0usize..3,
        with_tmp_debris in proptest::bool::ANY,
    ) {
        let dir = temp_dir("prop");
        let mut acked: HashMap<Hash, Bytes> = HashMap::new();
        let mut tail: Vec<(Hash, Bytes)> = Vec::new();
        {
            let s = FileStore::open_with(&dir, small_cfg()).unwrap();
            for i in 0..n_acked {
                let c = chunk("acked", i as u32, 200 + (i % 5) * 150);
                acked.insert(s.put(c.clone()).unwrap(), c);
            }
            s.sync().unwrap(); // ← the ack boundary
            for i in 0..n_tail {
                let c = chunk("tail", i as u32, 150 + (i % 4) * 120);
                tail.push((s.put(c.clone()).unwrap(), c));
            }
            // Dropping the store flushes buffers without fsync — the
            // kernel-visible file contents are what a crash preserves.
        }

        // Truncate the active segment anywhere at or past the acked
        // boundary. Frames fsynced by `sync` or by segment rotation are
        // durable; only the active tail is at the crash's mercy.
        let active_path = manifest_active_pack(&dir);
        let active_bytes = fs::read(&active_path).unwrap();
        let acked_end = scan_frames(&active_bytes)
            .iter()
            .filter(|(h, _)| acked.contains_key(h))
            .map(|(_, end)| *end)
            .max()
            .unwrap_or(0);
        let cut = acked_end
            + ((active_bytes.len() - acked_end) as u64 * u64::from(cut_frac) / 1000) as usize;
        let surviving_tail: HashSet<Hash> = scan_frames(&active_bytes[..cut])
            .into_iter()
            .map(|(h, _)| h)
            .collect();
        fs::write(&active_path, &active_bytes[..cut]).unwrap();

        // Crashed-compaction debris: an unlisted orphan pack holding ghost
        // chunks (plus a copy of an acked chunk — deleting the orphan must
        // not delete the chunk), and a torn temp segment.
        let mut ghosts: Vec<Hash> = Vec::new();
        if n_ghosts > 0 {
            let mut orphan = Vec::new();
            for g in 0..n_ghosts {
                let c = chunk("ghost", g as u32, 180);
                let h = sha256(&c);
                orphan.extend_from_slice(&encode_frame(&h, &c));
                ghosts.push(h);
            }
            if let Some((h, c)) = acked.iter().next() {
                orphan.extend_from_slice(&encode_frame(h, c));
            }
            fs::write(dir.join("pack-00009999.fbk"), &orphan).unwrap();
        }
        if with_tmp_debris {
            fs::write(dir.join("pack-00009998.fbk.tmp"), b"torn temp segment").unwrap();
        }

        // Reopen: exactly acked ∪ surviving-tail; every payload intact.
        let s = FileStore::open_with(&dir, small_cfg()).unwrap();
        let mut expect: HashMap<Hash, Bytes> = acked.clone();
        for (h, c) in &tail {
            // Tail chunks not in the truncated active segment were pushed
            // into sealed segments by rotation (durable); the rest live or
            // die by the cut point.
            let in_active = scan_frames(&active_bytes).iter().any(|(fh, _)| fh == h);
            if !in_active || surviving_tail.contains(h) {
                expect.insert(*h, c.clone());
            }
        }
        prop_assert_eq!(s.chunk_count(), expect.len());
        for (h, payload) in &expect {
            let got = s.get(h).unwrap();
            prop_assert_eq!(got.as_ref(), Some(payload));
        }
        for g in &ghosts {
            prop_assert!(!s.contains(g).unwrap(), "ghost chunk resurrected");
        }
        prop_assert!(!dir.join("pack-00009999.fbk").exists());
        prop_assert!(!dir.join("pack-00009998.fbk.tmp").exists());
        drop(s);
        let _ = fs::remove_dir_all(&dir);
    }
}
