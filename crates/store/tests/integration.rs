//! Cross-implementation store tests: concurrency on the durable store,
//! cache-over-file stacking, and store-equivalence properties.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use forkbase_store::{CachedStore, ChunkStore, FileStore, MemStore};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "forkbase-store-it-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn payload(tag: u64, i: u64) -> Bytes {
    Bytes::from(format!("payload-{tag}-{i}-{}", (tag * 31 + i) % 9973))
}

#[test]
fn concurrent_writers_on_filestore() {
    let dir = temp_dir("concurrent");
    let store = Arc::new(FileStore::open(&dir).unwrap());
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let mut hashes = Vec::new();
            for i in 0..100u64 {
                // Half the chunks are shared across threads (dedup races),
                // half are thread-private.
                let data = if i % 2 == 0 {
                    payload(0, i)
                } else {
                    payload(t + 1, i)
                };
                hashes.push((store.put(data.clone()).unwrap(), data));
            }
            hashes
        }));
    }
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    // Every write is readable with the right content.
    for (hash, data) in &all {
        assert_eq!(store.get(hash).unwrap().as_ref(), Some(data));
    }
    // Shared chunks deduped: 50 shared + 8×50 private = 450 unique.
    assert_eq!(store.chunk_count(), 450);

    // And everything survives a reopen.
    store.sync().unwrap();
    drop(all);
    drop(store);
    let reopened = FileStore::open(&dir).unwrap();
    assert_eq!(reopened.chunk_count(), 450);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cache_over_filestore_serves_hot_reads() {
    let dir = temp_dir("cache");
    let store = CachedStore::new(FileStore::open(&dir).unwrap(), 64 * 1024);
    let mut hashes = Vec::new();
    for i in 0..50u64 {
        hashes.push(store.put(payload(9, i)).unwrap());
    }
    // Read everything twice; second pass must be mostly cache hits.
    for h in &hashes {
        store.get(h).unwrap().unwrap();
    }
    let (hits_before, _) = store.cache_stats();
    for h in &hashes {
        store.get(h).unwrap().unwrap();
    }
    let (hits_after, _) = store.cache_stats();
    assert!(
        hits_after - hits_before >= 45,
        "hot reads should hit the cache: {hits_before} -> {hits_after}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mem_and_file_stores_agree_bit_for_bit() {
    // The same logical workload must produce identical hash sets on both
    // implementations (the store is interchangeable under the engine).
    let dir = temp_dir("agree");
    let mem = MemStore::new();
    let file = FileStore::open(&dir).unwrap();
    let mut mem_hashes = Vec::new();
    let mut file_hashes = Vec::new();
    for i in 0..200u64 {
        let data = payload(5, i % 77); // duplicates included
        mem_hashes.push(mem.put(data.clone()).unwrap());
        file_hashes.push(file.put(data).unwrap());
    }
    assert_eq!(mem_hashes, file_hashes);
    assert_eq!(mem.chunk_count(), file.chunk_count());
    for h in &mem_hashes {
        assert_eq!(mem.get(h).unwrap(), file.get(h).unwrap());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn filestore_full_database_workload() {
    // Run an actual POS-Tree workload through the durable store to cover
    // mixed chunk sizes and read-back during construction.
    use forkbase_chunk::ChunkerConfig;
    use forkbase_postree::{MapEdit, PosMap};

    let dir = temp_dir("dbload");
    let store = FileStore::open(&dir).unwrap();
    let m = PosMap::build_from_sorted(
        &store,
        ChunkerConfig::test_small(),
        (0..3000).map(|i| {
            (
                Bytes::from(format!("key-{i:06}")),
                Bytes::from(format!("value-{i}")),
            )
        }),
    )
    .unwrap();
    let m2 = m
        .apply((0..50).map(|i| {
            MapEdit::put(
                Bytes::from(format!("key-{:06}", i * 60)),
                Bytes::from_static(b"updated"),
            )
        }))
        .unwrap();
    assert_eq!(
        m2.get(b"key-000060").unwrap(),
        Some(Bytes::from_static(b"updated"))
    );
    store.sync().unwrap();

    // Reopen and keep reading the same trees.
    let tree = m2.tree();
    let _ = (m, m2); // release borrows of `store`
    drop(store);
    let store = FileStore::open(&dir).unwrap();
    let reopened = PosMap::open(&store, ChunkerConfig::test_small(), tree);
    assert_eq!(reopened.len(), 3000);
    assert_eq!(
        reopened.get(b"key-000060").unwrap(),
        Some(Bytes::from_static(b"updated"))
    );
    forkbase_postree::verify::verify_map(&store, tree, ChunkerConfig::test_small(), true).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
