//! CRC-32 (IEEE 802.3 polynomial) for segment-file frame integrity.
//!
//! Distinct from the SHA-256 content address: the CRC guards against torn
//! writes and media bit-rot at the *framing* level so recovery can skip a
//! damaged tail, while the SHA-256 address guards end-to-end integrity.

/// Reflected polynomial for CRC-32/ISO-HDLC (the zlib/PNG/Ethernet CRC).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xff) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // Canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = vec![0x37u8; 1024];
        let base = crc32(&data);
        for byte in [0usize, 511, 1023] {
            for bit in 0..8 {
                let mut copy = data.clone();
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
