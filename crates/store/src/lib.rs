#![forbid(unsafe_code)]
//! Chunk storage layer (paper Fig. 1, bottom layer).
//!
//! All ForkBase data — POS-Tree pages, blob chunks, FNodes — is materialized
//! as immutable *chunks* in a content-addressed key-value store: the key is
//! the SHA-256 of the chunk bytes, so "each distinct chunk is stored exactly
//! once and can be shared across different data objects" (§II-C). This is
//! what turns POS-Tree page sharing into physical deduplication.
//!
//! Implementations:
//!
//! * [`MemStore`] — concurrent in-memory store; the default substrate for
//!   tests and benchmarks.
//! * [`FileStore`] — durable segmented pack-file store: CRC-framed
//!   append-only segments tracked by an atomically-swapped manifest, an
//!   in-memory index, crash recovery that tolerates torn tail writes and
//!   killed compactions, and GC-driven physical compaction.
//! * [`CachedStore`] — read-through LRU cache wrapper for slow backends.
//! * [`FaultyStore`] — fault-injection wrapper simulating the paper's
//!   *malicious storage provider* (§II-D): corrupts, drops, or substitutes
//!   chunks so tamper-evidence tests can prove detection.
//!
//! Stores that can physically reclaim dead-chunk space additionally
//! implement the [`SweepStore`] capability (see [`sweep`]); the wrappers
//! forward it.
//!
//! Every store tracks [`StoreStats`] — the counters behind the Fig. 4
//! deduplication experiment (storage growth per dataset load).

pub mod cache;
pub mod crc;
pub mod error;
pub mod faulty;
pub mod file;
pub mod mem;
pub mod stats;
pub mod sweep;

use bytes::Bytes;
use forkbase_crypto::{sha256, Hash};

pub use cache::CachedStore;
pub use error::{StoreError, StoreResult};
pub use faulty::{FaultMode, FaultyStore, WriteFault};
pub use file::{FileStore, FileStoreConfig};
pub use mem::MemStore;
pub use stats::StoreStats;
pub use sweep::{SweepReport, SweepStore, Utilization};

/// A content-addressed store of immutable chunks.
///
/// Implementations must be safe for concurrent use; ForkBase servelets share
/// one store across request threads.
pub trait ChunkStore: Send + Sync {
    /// Store `bytes` under its content hash. Returns the hash. Storing the
    /// same content twice is a dedup hit and costs no extra space.
    fn put(&self, bytes: Bytes) -> StoreResult<Hash> {
        let hash = sha256(&bytes);
        self.put_with_hash(hash, bytes)?;
        Ok(hash)
    }

    /// Store `bytes` under a caller-computed `hash` (callers hash the
    /// canonical encoding once and reuse it). Returns `true` if the chunk
    /// was newly stored, `false` if it was already present (dedup hit).
    ///
    /// The hash **must** be the SHA-256 of `bytes`; debug builds verify.
    fn put_with_hash(&self, hash: Hash, bytes: Bytes) -> StoreResult<bool>;

    /// Store a batch of caller-hashed chunks in one store round-trip,
    /// returning how many were newly stored (the rest were dedup hits).
    ///
    /// Semantically identical to calling [`Self::put_with_hash`] once per
    /// element, in order — including when the same hash appears twice in
    /// one batch (the second occurrence is a dedup hit) — and every chunk
    /// updates [`StoreStats`] exactly once. Backends override this to
    /// amortize locking and fsync: one lock acquisition per shard
    /// (`MemStore`), one active-segment lock and at most one fsync per
    /// batch (`FileStore`).
    fn put_batch(&self, chunks: Vec<(Hash, Bytes)>) -> StoreResult<usize> {
        let mut newly = 0usize;
        for (hash, bytes) in chunks {
            if self.put_with_hash(hash, bytes)? {
                newly += 1;
            }
        }
        Ok(newly)
    }

    /// Fetch a chunk by hash. `Ok(None)` means the store has no such chunk.
    fn get(&self, hash: &Hash) -> StoreResult<Option<Bytes>>;

    /// Whether a chunk with this hash is present.
    fn contains(&self, hash: &Hash) -> StoreResult<bool> {
        Ok(self.get(hash)?.is_some())
    }

    /// Snapshot of the store's counters.
    fn stats(&self) -> StoreStats;

    /// Number of unique chunks stored.
    fn chunk_count(&self) -> usize;

    /// Total unique (deduplicated) payload bytes stored. This is the number
    /// the Fig. 4 demo reports as "storage increased by X KB".
    fn stored_bytes(&self) -> u64;

    /// Flush any buffered writes to durable media. No-op for volatile
    /// stores.
    fn sync(&self) -> StoreResult<()> {
        Ok(())
    }
}

/// Blanket impl so `Arc<dyn ChunkStore>` and `&S` work as stores.
impl<S: ChunkStore + ?Sized> ChunkStore for &S {
    fn put_with_hash(&self, hash: Hash, bytes: Bytes) -> StoreResult<bool> {
        (**self).put_with_hash(hash, bytes)
    }
    fn put_batch(&self, chunks: Vec<(Hash, Bytes)>) -> StoreResult<usize> {
        (**self).put_batch(chunks)
    }
    fn get(&self, hash: &Hash) -> StoreResult<Option<Bytes>> {
        (**self).get(hash)
    }
    fn contains(&self, hash: &Hash) -> StoreResult<bool> {
        (**self).contains(hash)
    }
    fn stats(&self) -> StoreStats {
        (**self).stats()
    }
    fn chunk_count(&self) -> usize {
        (**self).chunk_count()
    }
    fn stored_bytes(&self) -> u64 {
        (**self).stored_bytes()
    }
    fn sync(&self) -> StoreResult<()> {
        (**self).sync()
    }
}

impl<S: ChunkStore + ?Sized> ChunkStore for std::sync::Arc<S> {
    fn put_with_hash(&self, hash: Hash, bytes: Bytes) -> StoreResult<bool> {
        (**self).put_with_hash(hash, bytes)
    }
    fn put_batch(&self, chunks: Vec<(Hash, Bytes)>) -> StoreResult<usize> {
        (**self).put_batch(chunks)
    }
    fn get(&self, hash: &Hash) -> StoreResult<Option<Bytes>> {
        (**self).get(hash)
    }
    fn contains(&self, hash: &Hash) -> StoreResult<bool> {
        (**self).contains(hash)
    }
    fn stats(&self) -> StoreStats {
        (**self).stats()
    }
    fn chunk_count(&self) -> usize {
        (**self).chunk_count()
    }
    fn stored_bytes(&self) -> u64 {
        (**self).stored_bytes()
    }
    fn sync(&self) -> StoreResult<()> {
        (**self).sync()
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn default_put_computes_hash() {
        let store = MemStore::new();
        let h = store.put(Bytes::from_static(b"hello")).unwrap();
        assert_eq!(h, sha256(b"hello"));
        assert_eq!(
            store.get(&h).unwrap().unwrap(),
            Bytes::from_static(b"hello")
        );
    }

    #[test]
    fn arc_and_ref_forwarding() {
        let store = Arc::new(MemStore::new());
        let h = store.put(Bytes::from_static(b"x")).unwrap();
        let as_ref: &dyn ChunkStore = &*store;
        assert!(as_ref.contains(&h).unwrap());
        assert_eq!(store.chunk_count(), 1);
    }

    /// A store that only implements the required methods, so `put_batch`
    /// resolves to the trait default.
    struct DefaultOnly(MemStore);

    impl ChunkStore for DefaultOnly {
        fn put_with_hash(&self, hash: Hash, bytes: Bytes) -> StoreResult<bool> {
            self.0.put_with_hash(hash, bytes)
        }
        fn get(&self, hash: &Hash) -> StoreResult<Option<Bytes>> {
            self.0.get(hash)
        }
        fn stats(&self) -> StoreStats {
            self.0.stats()
        }
        fn chunk_count(&self) -> usize {
            self.0.chunk_count()
        }
        fn stored_bytes(&self) -> u64 {
            self.0.stored_bytes()
        }
    }

    fn hashed(data: &[&'static [u8]]) -> Vec<(Hash, Bytes)> {
        data.iter()
            .map(|d| (sha256(d), Bytes::from_static(d)))
            .collect()
    }

    #[test]
    fn default_put_batch_matches_sequential_puts() {
        let store = DefaultOnly(MemStore::new());
        let batch = hashed(&[b"one", b"two", b"two", b"three"]);
        let newly = store.put_batch(batch).unwrap();
        assert_eq!(newly, 3, "intra-batch duplicate is a dedup hit");
        let st = store.stats();
        assert_eq!(st.puts, 4);
        assert_eq!(st.unique_chunks, 3);
        assert_eq!(st.dedup_hits, 1);
        // A second batch of the same chunks is all hits.
        let again = store.put_batch(hashed(&[b"one", b"three"])).unwrap();
        assert_eq!(again, 0);
    }

    #[test]
    fn put_batch_forwards_through_arc_and_ref() {
        let store = Arc::new(MemStore::new());
        let newly = store.put_batch(hashed(&[b"a", b"b"])).unwrap();
        assert_eq!(newly, 2);
        let as_ref: &dyn ChunkStore = &*store;
        assert_eq!(as_ref.put_batch(hashed(&[b"a", b"c"])).unwrap(), 1);
        assert_eq!(store.chunk_count(), 3);
    }
}
