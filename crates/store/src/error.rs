//! Error type shared by all chunk store implementations.

use std::fmt;
use std::io;

use forkbase_crypto::Hash;

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors raised by chunk stores.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (file stores).
    Io(io::Error),
    /// A fetched chunk failed its integrity check: the bytes on media do
    /// not hash to the requested address. Either media corruption or a
    /// malicious provider (paper §II-D threat model).
    Corrupt {
        /// Address that was requested.
        expected: Hash,
        /// Hash of the bytes actually returned.
        actual: Hash,
    },
    /// A segment file frame was malformed (bad magic/CRC/length).
    BadFrame {
        /// Which segment file.
        segment: u64,
        /// Byte offset of the frame.
        offset: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// The store directory failed validation on open.
    BadLayout(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt { expected, actual } => write!(
                f,
                "chunk integrity violation: requested {expected:?} but content hashes to {actual:?}"
            ),
            StoreError::BadFrame {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "bad frame in segment {segment} at offset {offset}: {reason}"
            ),
            StoreError::BadLayout(msg) => write!(f, "bad store layout: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_crypto::sha256;

    #[test]
    fn display_formats() {
        let e = StoreError::Corrupt {
            expected: sha256(b"a"),
            actual: sha256(b"b"),
        };
        assert!(e.to_string().contains("integrity violation"));

        let e = StoreError::BadFrame {
            segment: 3,
            offset: 128,
            reason: "crc mismatch".into(),
        };
        assert!(e.to_string().contains("segment 3"));
        assert!(e.to_string().contains("crc mismatch"));

        let e: StoreError = io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
    }
}
