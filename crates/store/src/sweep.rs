//! Physical space-reclamation capability for chunk stores.
//!
//! The base [`ChunkStore`] trait is append-only: chunks are immutable and
//! content-addressed, so nothing in the core API ever deletes. Durable
//! space reclamation is an *optional capability* layered on top: stores
//! that can physically drop dead chunks (and, for log-structured backends,
//! rewrite survivors out of low-utilization segments) implement
//! [`SweepStore`]. The mark phase — computing which chunks are live —
//! lives above the store, in `forkbase::gc`; the store only executes the
//! sweep against a caller-supplied liveness predicate.
//!
//! Wrapper stores ([`crate::CachedStore`], [`crate::FaultyStore`]) forward
//! the capability when their inner store has it, so a cached file store
//! still compacts.

use forkbase_crypto::Hash;

use crate::{ChunkStore, StoreResult};

/// Outcome of one physical sweep (and, where supported, compaction) pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Dead chunks dropped from the store.
    pub chunks_reclaimed: u64,
    /// Payload bytes of the dropped chunks.
    pub bytes_reclaimed: u64,
    /// Live chunks physically rewritten into fresh segments.
    pub chunks_rewritten: u64,
    /// Payload bytes rewritten (compaction write amplification).
    pub bytes_rewritten: u64,
    /// Segment files deleted from the backing media.
    pub segments_deleted: u64,
    /// Physical bytes on the backing media before the pass.
    pub disk_bytes_before: u64,
    /// Physical bytes on the backing media after the pass.
    pub disk_bytes_after: u64,
}

impl SweepReport {
    /// Physical bytes returned to the operating system by this pass.
    pub fn disk_bytes_freed(&self) -> u64 {
        self.disk_bytes_before.saturating_sub(self.disk_bytes_after)
    }
}

/// Physical utilization of a store's backing media.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Utilization {
    /// Payload bytes of live (indexed) chunks.
    pub live_bytes: u64,
    /// Physical bytes occupied on the backing media (segment files for
    /// durable stores; equal to `live_bytes` for volatile ones).
    pub disk_bytes: u64,
}

impl Utilization {
    /// `live_bytes / disk_bytes`; 1.0 for an empty store. Values well
    /// below 1.0 mean dead chunks are pinning disk space and a
    /// [`SweepStore::sweep`] would reclaim it.
    pub fn ratio(&self) -> f64 {
        if self.disk_bytes == 0 {
            1.0
        } else {
            self.live_bytes as f64 / self.disk_bytes as f64
        }
    }
}

/// Optional capability: physically reclaim space held by dead chunks.
pub trait SweepStore: ChunkStore {
    /// Drop every chunk for which `live` returns false and physically
    /// reclaim the space (for segmented stores, by compacting
    /// low-utilization segments). The caller is responsible for quiescing
    /// writers — in ForkBase, `gc::collect` holds the GC gate exclusively.
    fn sweep(&self, live: &(dyn Fn(&Hash) -> bool + Sync)) -> StoreResult<SweepReport>;

    /// Current live-vs-physical byte occupancy of the backing media.
    fn utilization(&self) -> StoreResult<Utilization>;
}

impl<S: SweepStore + ?Sized> SweepStore for &S {
    fn sweep(&self, live: &(dyn Fn(&Hash) -> bool + Sync)) -> StoreResult<SweepReport> {
        (**self).sweep(live)
    }
    fn utilization(&self) -> StoreResult<Utilization> {
        (**self).utilization()
    }
}

impl<S: SweepStore + ?Sized> SweepStore for std::sync::Arc<S> {
    fn sweep(&self, live: &(dyn Fn(&Hash) -> bool + Sync)) -> StoreResult<SweepReport> {
        (**self).sweep(live)
    }
    fn utilization(&self) -> StoreResult<Utilization> {
        (**self).utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use bytes::Bytes;
    use std::sync::Arc;

    #[test]
    fn utilization_ratio() {
        assert_eq!(Utilization::default().ratio(), 1.0);
        let u = Utilization {
            live_bytes: 50,
            disk_bytes: 200,
        };
        assert!((u.ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn report_disk_bytes_freed_saturates() {
        let r = SweepReport {
            disk_bytes_before: 10,
            disk_bytes_after: 30,
            ..Default::default()
        };
        assert_eq!(r.disk_bytes_freed(), 0);
    }

    #[test]
    fn sweep_forwards_through_arc_and_ref() {
        let store = Arc::new(MemStore::new());
        let keep = store.put(Bytes::from_static(b"keep")).unwrap();
        store.put(Bytes::from_static(b"drop")).unwrap();
        let as_ref: &dyn SweepStore = &*store;
        let report = as_ref.sweep(&|h| *h == keep).unwrap();
        assert_eq!(report.chunks_reclaimed, 1);
        let u = store.utilization().unwrap();
        assert_eq!(u.live_bytes, 4);
        assert_eq!(u.disk_bytes, 4);
    }
}
