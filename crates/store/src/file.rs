//! Durable log-structured chunk store.
//!
//! Layout: a directory of append-only segment files `seg-NNNNNNNN.fkb`.
//! Each chunk is written as one frame:
//!
//! ```text
//! ┌─────────┬──────────┬───────────┬───────────────┬──────────┐
//! │ magic 4 │ len u32  │ hash 32   │ payload <len> │ crc32 u32│
//! └─────────┴──────────┴───────────┴───────────────┴──────────┘
//! ```
//!
//! (the CRC covers hash+payload). Chunks are immutable, so there are no
//! updates or tombstones — the log only grows, and the in-memory index maps
//! `Hash → (segment, offset, len)`. On open, all segments are scanned and
//! the index rebuilt; a torn final frame (crash mid-append) is detected by
//! magic/length/CRC validation and the segment is truncated back to the
//! last good frame.

use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use forkbase_crypto::Hash;
use parking_lot::{Mutex, RwLock};

use crate::crc::crc32;
use crate::stats::{StatsCell, StoreStats};
use crate::{ChunkStore, StoreError, StoreResult};

const FRAME_MAGIC: &[u8; 4] = b"FKB1";
const HEADER_LEN: usize = 4 + 4 + 32; // magic + len + hash
const TRAILER_LEN: usize = 4; // crc32

/// Location of a chunk inside the segment files.
#[derive(Clone, Copy, Debug)]
struct Slot {
    segment: u64,
    /// Offset of the payload (not the frame header).
    payload_offset: u64,
    len: u32,
}

/// Writer state for the active segment.
struct Active {
    segment: u64,
    writer: BufWriter<File>,
    /// Next frame start offset in the active segment.
    offset: u64,
}

/// Configuration for [`FileStore`].
#[derive(Clone, Copy, Debug)]
pub struct FileStoreConfig {
    /// Rotate to a new segment file once the active one exceeds this size.
    pub segment_bytes: u64,
    /// If true, fsync after every put (durable but slow); otherwise only on
    /// [`ChunkStore::sync`] and rotation.
    pub sync_every_put: bool,
}

impl Default for FileStoreConfig {
    fn default() -> Self {
        FileStoreConfig {
            segment_bytes: 64 * 1024 * 1024,
            sync_every_put: false,
        }
    }
}

/// Durable content-addressed store over append-only segment files.
pub struct FileStore {
    dir: PathBuf,
    cfg: FileStoreConfig,
    index: RwLock<HashMap<Hash, Slot>>,
    active: Mutex<Active>,
    stats: StatsCell,
}

impl FileStore {
    /// Open (or create) a store in `dir`, replaying existing segments.
    pub fn open(dir: impl AsRef<Path>) -> StoreResult<Self> {
        Self::open_with(dir, FileStoreConfig::default())
    }

    /// Open with explicit configuration.
    pub fn open_with(dir: impl AsRef<Path>, cfg: FileStoreConfig) -> StoreResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let mut segments = Self::list_segments(&dir)?;
        segments.sort_unstable();

        let mut index = HashMap::new();
        let mut recovered_chunks = 0u64;
        let mut recovered_bytes = 0u64;
        let mut last_segment = 0u64;
        let mut last_offset = 0u64;

        for &seg in &segments {
            let (entries, good_end) = Self::replay_segment(&dir, seg)?;
            let path = Self::segment_path(&dir, seg);
            let actual_len = fs::metadata(&path)?.len();
            if good_end < actual_len {
                // Torn tail from a crash: truncate to the last good frame.
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(good_end)?;
                f.sync_all()?;
            }
            for (hash, slot) in entries {
                recovered_bytes += u64::from(slot.len);
                recovered_chunks += 1;
                index.insert(hash, slot);
            }
            last_segment = seg;
            last_offset = good_end;
        }

        // Dedup across segments can over-count; recompute from the index.
        if recovered_chunks as usize != index.len() {
            recovered_chunks = index.len() as u64;
            recovered_bytes = index.values().map(|s| u64::from(s.len)).sum();
        }

        let (segment, offset) = if segments.is_empty() {
            (0, 0)
        } else {
            (last_segment, last_offset)
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(Self::segment_path(&dir, segment))?;
        let active = Active {
            segment,
            writer: BufWriter::new(file),
            offset,
        };

        let stats = StatsCell::new();
        stats.record_recovered(recovered_chunks, recovered_bytes);

        Ok(FileStore {
            dir,
            cfg,
            index: RwLock::new(index),
            active: Mutex::new(active),
            stats,
        })
    }

    fn segment_path(dir: &Path, seg: u64) -> PathBuf {
        dir.join(format!("seg-{seg:08}.fkb"))
    }

    fn list_segments(dir: &Path) -> StoreResult<Vec<u64>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".fkb"))
            {
                match num.parse::<u64>() {
                    Ok(n) => out.push(n),
                    Err(_) => {
                        return Err(StoreError::BadLayout(format!(
                            "unparseable segment file name: {name}"
                        )))
                    }
                }
            }
        }
        Ok(out)
    }

    /// Scan one segment, returning its valid `(hash, slot)` entries and the
    /// offset one past the last valid frame.
    fn replay_segment(dir: &Path, seg: u64) -> StoreResult<(Vec<(Hash, Slot)>, u64)> {
        let path = Self::segment_path(dir, seg);
        let mut file = File::open(&path)?;
        let len = file.metadata()?.len();
        let mut buf = Vec::with_capacity(len as usize);
        file.read_to_end(&mut buf)?;

        let mut entries = Vec::new();
        let mut pos = 0usize;
        loop {
            if pos + HEADER_LEN + TRAILER_LEN > buf.len() {
                break; // trailing garbage or clean EOF
            }
            if &buf[pos..pos + 4] != FRAME_MAGIC {
                break; // torn write: stop at last good frame
            }
            let payload_len =
                u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
            let frame_end = pos + HEADER_LEN + payload_len + TRAILER_LEN;
            if frame_end > buf.len() {
                break; // truncated payload
            }
            let hash_bytes = &buf[pos + 8..pos + 40];
            let payload = &buf[pos + HEADER_LEN..pos + HEADER_LEN + payload_len];
            let crc_stored = u32::from_le_bytes(
                buf[frame_end - TRAILER_LEN..frame_end]
                    .try_into()
                    .expect("4 bytes"),
            );
            let mut crc_input = Vec::with_capacity(32 + payload_len);
            crc_input.extend_from_slice(hash_bytes);
            crc_input.extend_from_slice(payload);
            if crc32(&crc_input) != crc_stored {
                break; // damaged frame: treat as torn tail
            }
            let hash = Hash::from_slice(hash_bytes).expect("32 bytes");
            entries.push((
                hash,
                Slot {
                    segment: seg,
                    payload_offset: (pos + HEADER_LEN) as u64,
                    len: payload_len as u32,
                },
            ));
            pos = frame_end;
        }
        Ok((entries, pos as u64))
    }

    /// Directory this store persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append one frame to the active segment (rotating first if it is
    /// full), returning the chunk's slot. Does not flush or fsync; the
    /// caller decides durability (per put or once per batch).
    fn append_frame(&self, active: &mut Active, hash: &Hash, bytes: &Bytes) -> StoreResult<Slot> {
        // Rotate if the active segment is full.
        if active.offset >= self.cfg.segment_bytes {
            active.writer.flush()?;
            active.writer.get_ref().sync_all()?;
            let next = active.segment + 1;
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(Self::segment_path(&self.dir, next))?;
            *active = Active {
                segment: next,
                writer: BufWriter::new(file),
                offset: 0,
            };
        }

        let payload_offset = active.offset + HEADER_LEN as u64;
        let mut crc_input = Vec::with_capacity(32 + bytes.len());
        crc_input.extend_from_slice(hash.as_bytes());
        crc_input.extend_from_slice(bytes);
        let crc = crc32(&crc_input);

        active.writer.write_all(FRAME_MAGIC)?;
        active
            .writer
            .write_all(&(bytes.len() as u32).to_le_bytes())?;
        active.writer.write_all(hash.as_bytes())?;
        active.writer.write_all(bytes)?;
        active.writer.write_all(&crc.to_le_bytes())?;
        active.offset += (HEADER_LEN + bytes.len() + TRAILER_LEN) as u64;

        Ok(Slot {
            segment: active.segment,
            payload_offset,
            len: bytes.len() as u32,
        })
    }

    fn read_slot(&self, slot: Slot) -> StoreResult<Bytes> {
        let path = Self::segment_path(&self.dir, slot.segment);
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(slot.payload_offset))?;
        let mut buf = vec![0u8; slot.len as usize];
        file.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }
}

impl ChunkStore for FileStore {
    fn put_with_hash(&self, hash: Hash, bytes: Bytes) -> StoreResult<bool> {
        debug_assert_eq!(forkbase_crypto::sha256(&bytes), hash);
        let len = bytes.len() as u64;

        // Fast path: already stored.
        if self.index.read().contains_key(&hash) {
            self.stats.record_put(len, false);
            return Ok(false);
        }

        let mut active = self.active.lock();
        // Re-check under the writer lock (another thread may have won).
        if self.index.read().contains_key(&hash) {
            self.stats.record_put(len, false);
            return Ok(false);
        }

        let slot = self.append_frame(&mut active, &hash, &bytes)?;

        if self.cfg.sync_every_put {
            active.writer.flush()?;
            active.writer.get_ref().sync_all()?;
        }

        self.index.write().insert(hash, slot);
        drop(active);

        self.stats.record_put(len, true);
        Ok(true)
    }

    fn put_batch(&self, chunks: Vec<(Hash, Bytes)>) -> StoreResult<usize> {
        if chunks.is_empty() {
            return Ok(0);
        }
        let puts = chunks.len() as u64;
        let logical: u64 = chunks.iter().map(|(_, b)| b.len() as u64).sum();

        // Group commit: the active-segment lock is taken once for the whole
        // batch. Every other writer also serializes on this lock, so the
        // index cannot gain entries while we hold it — one read acquisition
        // suffices to split the batch into fresh vs dedup-hit chunks.
        let mut active = self.active.lock();
        let mut fresh: Vec<(Hash, Bytes)> = Vec::with_capacity(chunks.len());
        {
            let index = self.index.read();
            let mut seen = HashSet::new();
            for (hash, bytes) in chunks {
                debug_assert_eq!(forkbase_crypto::sha256(&bytes), hash);
                if index.contains_key(&hash) || !seen.insert(hash) {
                    continue;
                }
                fresh.push((hash, bytes));
            }
        }

        let mut staged: Vec<(Hash, Slot)> = Vec::with_capacity(fresh.len());
        let mut new_bytes = 0u64;
        for (hash, bytes) in fresh {
            let slot = self.append_frame(&mut active, &hash, &bytes)?;
            new_bytes += bytes.len() as u64;
            staged.push((hash, slot));
        }

        // At most one fsync per batch, only when durability-per-put is on.
        if self.cfg.sync_every_put && !staged.is_empty() {
            active.writer.flush()?;
            active.writer.get_ref().sync_all()?;
        }

        let new_chunks = staged.len() as u64;
        {
            let mut index = self.index.write();
            for (hash, slot) in staged {
                index.insert(hash, slot);
            }
        }
        drop(active);

        self.stats.record_put_batch(
            puts,
            logical,
            new_chunks,
            new_bytes,
            puts - new_chunks,
            logical - new_bytes,
        );
        Ok(new_chunks as usize)
    }

    fn get(&self, hash: &Hash) -> StoreResult<Option<Bytes>> {
        let slot = self.index.read().get(hash).copied();
        let Some(slot) = slot else {
            self.stats.record_get(false);
            return Ok(None);
        };
        // The slot may still be buffered in the active writer; flush first.
        {
            let mut active = self.active.lock();
            if slot.segment == active.segment {
                active.writer.flush()?;
            }
        }
        let bytes = self.read_slot(slot)?;
        // End-to-end integrity: media corruption surfaces here rather than
        // propagating bad data upward.
        let actual = forkbase_crypto::sha256(&bytes);
        if actual != *hash {
            return Err(StoreError::Corrupt {
                expected: *hash,
                actual,
            });
        }
        self.stats.record_get(true);
        Ok(Some(bytes))
    }

    fn contains(&self, hash: &Hash) -> StoreResult<bool> {
        Ok(self.index.read().contains_key(hash))
    }

    fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    fn chunk_count(&self) -> usize {
        self.index.read().len()
    }

    fn stored_bytes(&self) -> u64 {
        self.stats.snapshot().stored_bytes
    }

    fn sync(&self) -> StoreResult<()> {
        let mut active = self.active.lock();
        active.writer.flush()?;
        active.writer.get_ref().sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "forkbase-filestore-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip() {
        let dir = temp_dir("roundtrip");
        let s = FileStore::open(&dir).unwrap();
        let data = Bytes::from_static(b"persistent chunk");
        let h = s.put(data.clone()).unwrap();
        assert_eq!(s.get(&h).unwrap(), Some(data));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn survives_reopen() {
        let dir = temp_dir("reopen");
        let h1;
        let h2;
        {
            let s = FileStore::open(&dir).unwrap();
            h1 = s.put(Bytes::from_static(b"first")).unwrap();
            h2 = s.put(Bytes::from_static(b"second")).unwrap();
            s.sync().unwrap();
        }
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 2);
        assert_eq!(s.get(&h1).unwrap(), Some(Bytes::from_static(b"first")));
        assert_eq!(s.get(&h2).unwrap(), Some(Bytes::from_static(b"second")));
        // Reopening must not lose dedup: re-putting is a hit.
        assert!(!s.put_with_hash(h1, Bytes::from_static(b"first")).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovers_from_torn_tail() {
        let dir = temp_dir("torn");
        let good;
        {
            let s = FileStore::open(&dir).unwrap();
            good = s.put(Bytes::from_static(b"good chunk")).unwrap();
            s.put(Bytes::from_static(b"doomed chunk")).unwrap();
            s.sync().unwrap();
        }
        // Chop bytes off the end, simulating a crash mid-append.
        let seg = FileStore::segment_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 1, "torn frame must be dropped");
        assert_eq!(
            s.get(&good).unwrap(),
            Some(Bytes::from_static(b"good chunk"))
        );
        // The store must still accept appends after truncation.
        let h3 = s.put(Bytes::from_static(b"after recovery")).unwrap();
        s.sync().unwrap();
        let s2 = FileStore::open(&dir).unwrap();
        assert_eq!(s2.chunk_count(), 2);
        assert!(s2.contains(&h3).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_batch_roundtrip_and_stats() {
        let dir = temp_dir("batch");
        let s = FileStore::open(&dir).unwrap();
        let pre = s.put(Bytes::from_static(b"resident")).unwrap();
        let payloads: Vec<Bytes> = vec![
            Bytes::from_static(b"resident"), // dedup vs resident
            Bytes::from_static(b"batch-a"),
            Bytes::from_static(b"batch-b"),
            Bytes::from_static(b"batch-a"), // dedup within batch
            Bytes::from_static(b"batch-c"),
        ];
        let batch: Vec<(Hash, Bytes)> = payloads
            .iter()
            .map(|b| (forkbase_crypto::sha256(b), b.clone()))
            .collect();
        let hashes: Vec<Hash> = batch.iter().map(|(h, _)| *h).collect();
        assert_eq!(s.put_batch(batch).unwrap(), 3);
        let st = s.stats();
        assert_eq!(st.puts, 1 + 5, "every batched chunk counted exactly once");
        assert_eq!(st.unique_chunks, 4);
        assert_eq!(st.dedup_hits, 2);
        for (h, p) in hashes.iter().zip(&payloads) {
            assert_eq!(s.get(h).unwrap().as_ref(), Some(p));
        }
        // Batch survives reopen like any other write.
        s.sync().unwrap();
        drop(s);
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 4);
        assert!(s.contains(&pre).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_batch_rotates_segments() {
        let dir = temp_dir("batchrotate");
        let cfg = FileStoreConfig {
            segment_bytes: 256,
            sync_every_put: true, // group commit: still at most one fsync
        };
        let s = FileStore::open_with(&dir, cfg).unwrap();
        let batch: Vec<(Hash, Bytes)> = (0..40u32)
            .map(|i| {
                let b = Bytes::from(format!("batch-chunk-{i}-{}", "y".repeat(24)));
                (forkbase_crypto::sha256(&b), b)
            })
            .collect();
        let hashes: Vec<Hash> = batch.iter().map(|(h, _)| *h).collect();
        assert_eq!(s.put_batch(batch).unwrap(), 40);
        assert!(
            FileStore::list_segments(&dir).unwrap().len() > 1,
            "batch must rotate segments mid-way"
        );
        for h in &hashes {
            assert!(s.get(h).unwrap().is_some());
        }
        drop(s);
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 40);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovers_complete_frames_when_crash_hits_mid_batch() {
        // A crash in the middle of a group commit must behave exactly like
        // a crash mid-append: every complete frame of the batch replays,
        // the partial frame is truncated away, and the store stays usable.
        let dir = temp_dir("tornbatch");
        let batch: Vec<(Hash, Bytes)> = (0..10u32)
            .map(|i| {
                let b = Bytes::from(format!("group-commit-chunk-{i:02}-{}", "z".repeat(40)));
                (forkbase_crypto::sha256(&b), b)
            })
            .collect();
        let hashes: Vec<Hash> = batch.iter().map(|(h, _)| *h).collect();
        let frame_len = HEADER_LEN + batch[0].1.len() + TRAILER_LEN;
        {
            let s = FileStore::open(&dir).unwrap();
            assert_eq!(s.put_batch(batch).unwrap(), 10);
            s.sync().unwrap();
        }
        // Cut into the middle of the 8th frame: 7 complete frames remain.
        let seg = FileStore::segment_path(&dir, 0);
        let cut = (7 * frame_len + frame_len / 2) as u64;
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let s = FileStore::open(&dir).unwrap();
        assert_eq!(
            s.chunk_count(),
            7,
            "complete frames recovered, torn one dropped"
        );
        for h in &hashes[..7] {
            assert!(s.get(h).unwrap().is_some());
        }
        for h in &hashes[7..] {
            assert!(s.get(h).unwrap().is_none());
        }
        assert_eq!(
            fs::metadata(&seg).unwrap().len(),
            (7 * frame_len) as u64,
            "partial frame truncated back to the last good frame"
        );
        // Re-putting the lost tail of the batch works and survives reopen.
        let retry: Vec<(Hash, Bytes)> = hashes[7..]
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let b = Bytes::from(format!(
                    "group-commit-chunk-{:02}-{}",
                    i + 7,
                    "z".repeat(40)
                ));
                assert_eq!(forkbase_crypto::sha256(&b), *h);
                (*h, b)
            })
            .collect();
        assert_eq!(s.put_batch(retry).unwrap(), 3);
        s.sync().unwrap();
        drop(s);
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn detects_corrupted_frame_on_recovery() {
        let dir = temp_dir("crc");
        let a;
        {
            let s = FileStore::open(&dir).unwrap();
            a = s.put(Bytes::from_static(b"aaaa")).unwrap();
            s.put(Bytes::from_static(b"bbbb")).unwrap();
            s.sync().unwrap();
        }
        // Flip a byte inside the second frame's payload.
        let seg = FileStore::segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let second_frame = HEADER_LEN + 4 + TRAILER_LEN; // first frame size
        bytes[second_frame + HEADER_LEN] ^= 0xff;
        fs::write(&seg, &bytes).unwrap();

        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 1, "frame with bad CRC must be dropped");
        assert!(s.contains(&a).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn media_corruption_surfaces_as_error() {
        let dir = temp_dir("media");
        let s = FileStore::open(&dir).unwrap();
        let h = s.put(Bytes::from(vec![7u8; 100])).unwrap();
        s.sync().unwrap();

        // Corrupt the payload in place but leave the CRC region: simulate
        // silent bit-rot after a successful write. We re-write payload AND
        // a matching CRC so only the content-hash check can catch it.
        let seg = FileStore::segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        bytes[HEADER_LEN] ^= 0x01; // payload byte
        let payload = bytes[HEADER_LEN..HEADER_LEN + 100].to_vec();
        let mut crc_input = Vec::new();
        crc_input.extend_from_slice(&bytes[8..40]);
        crc_input.extend_from_slice(&payload);
        let crc = crc32(&crc_input).to_le_bytes();
        let crc_at = HEADER_LEN + 100;
        bytes[crc_at..crc_at + 4].copy_from_slice(&crc);
        fs::write(&seg, &bytes).unwrap();

        let s = FileStore::open(&dir).unwrap();
        match s.get(&h) {
            Err(StoreError::Corrupt { expected, .. }) => assert_eq!(expected, h),
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_rotation() {
        let dir = temp_dir("rotate");
        let cfg = FileStoreConfig {
            segment_bytes: 256,
            sync_every_put: false,
        };
        let s = FileStore::open_with(&dir, cfg).unwrap();
        let mut hashes = Vec::new();
        for i in 0..50u32 {
            let data = Bytes::from(format!("chunk-{i}-{}", "x".repeat(32)));
            hashes.push(s.put(data).unwrap());
        }
        s.sync().unwrap();
        let segments = FileStore::list_segments(&dir).unwrap();
        assert!(segments.len() > 1, "expected rotation, got {segments:?}");
        // Every chunk still readable, across all segments.
        for (i, h) in hashes.iter().enumerate() {
            let got = s.get(h).unwrap().unwrap();
            assert!(got.starts_with(format!("chunk-{i}-").as_bytes()));
        }
        // And after reopen.
        drop(s);
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 50);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn get_flushes_buffered_writes() {
        let dir = temp_dir("flush");
        let s = FileStore::open(&dir).unwrap();
        let h = s.put(Bytes::from_static(b"buffered")).unwrap();
        // No explicit sync: read must still see the chunk.
        assert_eq!(s.get(&h).unwrap(), Some(Bytes::from_static(b"buffered")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_garbage_segment_names() {
        let dir = temp_dir("names");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("seg-notanumber.fkb"), b"junk").unwrap();
        match FileStore::open(&dir) {
            Err(StoreError::BadLayout(msg)) => assert!(msg.contains("notanumber")),
            other => panic!("expected BadLayout, got {:?}", other.map(|_| ())),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
