//! Durable segmented pack-file chunk store.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/
//!   MANIFEST              — names the live segments (atomic-rename target)
//!   MANIFEST.tmp          — staging copy, deleted on open
//!   TOMBSTONES            — dead frames inside retained segments
//!   LOCK                  — advisory lock; one process per store directory
//!   pack-00000000.fbk     — segment files; one is the append target
//!   pack-00000003.fbk.tmp — compaction temp segment, deleted on open
//! ```
//!
//! Each segment is a sequence of CRC frames (FORMAT INVARIANT — this frame
//! layout is unchanged since the first FileStore and is shared with the
//! bundle format):
//!
//! ```text
//! ┌─────────┬──────────┬───────────┬───────────────┬──────────┐
//! │ magic 4 │ len u32  │ hash 32   │ payload <len> │ crc32 u32│
//! └─────────┴──────────┴───────────┴───────────────┴──────────┘
//! ```
//!
//! (the CRC covers hash+payload). Chunks are immutable, so segments hold no
//! updates or tombstones; the in-memory index maps `Hash → (segment,
//! offset, len)` and is rebuilt on open by scanning every segment named in
//! the manifest. A torn final frame (crash mid-append) is detected by
//! magic/length/CRC validation and truncated back to the last good frame.
//!
//! # Manifest protocol
//!
//! The manifest is a small CRC-tailed text file listing the epoch, the
//! active (append) segment, and every live segment id. It is only ever
//! replaced whole: write `MANIFEST.tmp`, fsync, rename over `MANIFEST`,
//! fsync the directory. Any segment file *not* named by the manifest is an
//! orphan from a crashed compaction and is deleted on open — orphans only
//! ever contain copies of chunks that the manifest-listed segments still
//! hold, so deleting them never loses data.
//!
//! # Compaction
//!
//! [`FileStore::compact`] takes the live-chunk set (produced by
//! `forkbase::gc`'s mark phase), drops dead index entries, and rewrites the
//! survivors of low-utilization segments into fresh segments:
//!
//! 1. seal the active segment (flush + fsync);
//! 2. pick victims: segments whose live frame bytes fall below
//!    [`FileStoreConfig::compact_min_utilization`] of their file size;
//! 3. copy the victims' live chunks into `pack-N.fbk.tmp` files (fsynced),
//!    then rename them into place;
//! 4. durably record dead frames that remain inside *retained* segments
//!    in `TOMBSTONES` (atomic rename, like the manifest) so a sweep
//!    outlives the process — without this, dead chunks in well-utilized
//!    segments would resurrect on reopen;
//! 5. atomically swap in a manifest naming (retained ∪ new) segments;
//! 6. delete the victim files and repoint the index at the new slots.
//!
//! A crash at any step recovers to a consistent store: before step 5 the
//! old manifest still names every victim (the new files are unlisted
//! orphans, and dead chunks inside victims reappear until GC runs again —
//! GC is idempotent); after step 5 the victims are unlisted and deleted
//! on open. Acked (fsynced) chunks are never lost. Tombstones are
//! frame-granular (`segment, offset`), so re-putting previously swept
//! content writes a fresh frame that no stale tombstone can shadow.

use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use forkbase_crypto::Hash;
use parking_lot::{Mutex, RwLock};

use crate::crc::crc32;
use crate::stats::{StatsCell, StoreStats};
use crate::sweep::{SweepReport, SweepStore, Utilization};
use crate::{ChunkStore, StoreError, StoreResult};

const FRAME_MAGIC: &[u8; 4] = b"FKB1";
const HEADER_LEN: usize = 4 + 4 + 32; // magic + len + hash
const TRAILER_LEN: usize = 4; // crc32

const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_TMP_NAME: &str = "MANIFEST.tmp";
const MANIFEST_MAGIC: &str = "forkbase-packs v1";
const TOMBSTONES_NAME: &str = "TOMBSTONES";
const TOMBSTONES_TMP_NAME: &str = "TOMBSTONES.tmp";
const TOMBSTONES_MAGIC: &str = "forkbase-tombs v1";
const LOCK_NAME: &str = "LOCK";
const PACK_PREFIX: &str = "pack-";
const PACK_EXT: &str = ".fbk";
const PACK_TMP_EXT: &str = ".fbk.tmp";
/// Pre-manifest segment naming (`seg-NNNNNNNN.fkb`), adopted on open.
const LEGACY_PREFIX: &str = "seg-";
const LEGACY_EXT: &str = ".fkb";

/// Total frame size for a payload of `len` bytes.
fn frame_len(len: u32) -> u64 {
    (HEADER_LEN + TRAILER_LEN) as u64 + u64::from(len)
}

/// Location of a chunk inside the segment files.
#[derive(Clone, Copy, Debug)]
struct Slot {
    segment: u64,
    /// Offset of the payload (not the frame header).
    payload_offset: u64,
    len: u32,
}

/// Writer state for the active segment.
struct Active {
    segment: u64,
    writer: BufWriter<File>,
    /// Next frame start offset in the active segment.
    offset: u64,
}

/// The durable segment list. Mutated only while holding the active lock
/// (rotation and compaction), so writers see a consistent view.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Manifest {
    /// Incremented on every manifest write; lets tests (and humans
    /// debugging a store directory) order manifest generations.
    epoch: u64,
    /// The append-target segment. Always a member of `packs`.
    active: u64,
    /// Every live segment, ascending.
    packs: Vec<u64>,
}

impl Manifest {
    fn encode(&self) -> String {
        let mut body = format!(
            "{MANIFEST_MAGIC}\nepoch {}\nactive {}\n",
            self.epoch, self.active
        );
        for p in &self.packs {
            body.push_str(&format!("pack {p}\n"));
        }
        let crc = crc32(body.as_bytes());
        body.push_str(&format!("crc {crc:08x}\n"));
        body
    }

    fn decode(text: &str) -> Result<Manifest, String> {
        let (body, crc_line) = match text.rfind("crc ") {
            Some(pos) => (&text[..pos], text[pos..].trim_end()),
            None => return Err("missing crc line".into()),
        };
        let stored = u32::from_str_radix(crc_line.trim_start_matches("crc ").trim(), 16)
            .map_err(|_| "unparseable crc".to_string())?;
        if crc32(body.as_bytes()) != stored {
            return Err("manifest crc mismatch".into());
        }
        let mut lines = body.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err("bad manifest magic".into());
        }
        let mut epoch = None;
        let mut active = None;
        let mut packs = Vec::new();
        for line in lines {
            let mut it = line.split_whitespace();
            match (it.next(), it.next()) {
                (Some("epoch"), Some(v)) => epoch = v.parse().ok(),
                (Some("active"), Some(v)) => active = v.parse().ok(),
                (Some("pack"), Some(v)) => {
                    packs.push(v.parse().map_err(|_| format!("bad pack id {v:?}"))?)
                }
                _ => return Err(format!("unrecognized manifest line {line:?}")),
            }
        }
        let (Some(epoch), Some(active)) = (epoch, active) else {
            return Err("manifest missing epoch/active".into());
        };
        if !packs.contains(&active) {
            return Err(format!("active segment {active} not in pack list"));
        }
        packs.sort_unstable();
        Ok(Manifest {
            epoch,
            active,
            packs,
        })
    }
}

/// Configuration for [`FileStore`].
#[derive(Clone, Copy, Debug)]
pub struct FileStoreConfig {
    /// Rotate to a new segment file once the active one exceeds this size.
    pub segment_bytes: u64,
    /// If true, fsync after every put (durable but slow); otherwise only on
    /// [`ChunkStore::sync`] and rotation.
    pub sync_every_put: bool,
    /// Compaction victim threshold: a segment is rewritten when its live
    /// frame bytes fall below this fraction of its file size. At the
    /// default 0.8 every retained segment is ≥ 80% live, bounding total
    /// disk usage at 1.25× the live frame bytes (plus active-segment
    /// slack).
    pub compact_min_utilization: f64,
}

impl Default for FileStoreConfig {
    fn default() -> Self {
        FileStoreConfig {
            segment_bytes: 64 * 1024 * 1024,
            sync_every_put: false,
            compact_min_utilization: 0.8,
        }
    }
}

/// Dead frames inside retained segments: `(segment, payload_offset)`.
///
/// Frame-granular so a re-put of the same content (a brand-new frame at a
/// different offset) can never be shadowed by a stale tombstone.
type TombstoneSet = HashSet<(u64, u64)>;

/// Durable content-addressed store over manifest-tracked pack files.
pub struct FileStore {
    dir: PathBuf,
    cfg: FileStoreConfig,
    index: RwLock<HashMap<Hash, Slot>>,
    active: Mutex<Active>,
    /// Guarded invariant: matches the MANIFEST file on disk. Lock order is
    /// `active` → `manifest` (never the reverse).
    manifest: Mutex<Manifest>,
    /// Guarded invariant: matches the TOMBSTONES file on disk. Mutated
    /// only while holding the active lock (compaction).
    tombstones: Mutex<TombstoneSet>,
    /// Mirror of `active.segment`, readable without the active lock.
    /// Ordering: on rotation, `active_flushed` is reset to 0 *before* the
    /// new id is published here, so an Acquire load of the id always pairs
    /// with a flushed watermark that is valid for (or conservative about)
    /// that segment.
    active_segment: std::sync::atomic::AtomicU64,
    /// Bytes of the active segment known flushed to the OS: reads at or
    /// below this watermark need no lock and no flush.
    active_flushed: std::sync::atomic::AtomicU64,
    /// Held for the store's lifetime; released by the OS on process death.
    /// Prevents a second process from opening the same directory and
    /// deleting another's in-flight compaction output as "debris".
    _lock: File,
    stats: StatsCell,
}

fn encode_tombstones(tombs: &TombstoneSet) -> String {
    let mut entries: Vec<(u64, u64)> = tombs.iter().copied().collect();
    entries.sort_unstable();
    let mut body = format!("{TOMBSTONES_MAGIC}\n");
    for (seg, offset) in entries {
        body.push_str(&format!("dead {seg} {offset}\n"));
    }
    let crc = crc32(body.as_bytes());
    body.push_str(&format!("crc {crc:08x}\n"));
    body
}

fn decode_tombstones(text: &str) -> Result<TombstoneSet, String> {
    let (body, crc_line) = match text.rfind("crc ") {
        Some(pos) => (&text[..pos], text[pos..].trim_end()),
        None => return Err("missing crc line".into()),
    };
    let stored = u32::from_str_radix(crc_line.trim_start_matches("crc ").trim(), 16)
        .map_err(|_| "unparseable crc".to_string())?;
    if crc32(body.as_bytes()) != stored {
        return Err("tombstone crc mismatch".into());
    }
    let mut lines = body.lines();
    if lines.next() != Some(TOMBSTONES_MAGIC) {
        return Err("bad tombstone magic".into());
    }
    let mut out = TombstoneSet::new();
    for line in lines {
        let mut it = line.split_whitespace();
        match (it.next(), it.next(), it.next()) {
            (Some("dead"), Some(seg), Some(offset)) => {
                let seg = seg.parse().map_err(|_| format!("bad segment {seg:?}"))?;
                let offset = offset
                    .parse()
                    .map_err(|_| format!("bad offset {offset:?}"))?;
                out.insert((seg, offset));
            }
            _ => return Err(format!("unrecognized tombstone line {line:?}")),
        }
    }
    Ok(out)
}

impl FileStore {
    /// Open (or create) a store in `dir`, replaying the manifest's
    /// segments and cleaning up any crashed-compaction debris.
    pub fn open(dir: impl AsRef<Path>) -> StoreResult<Self> {
        Self::open_with(dir, FileStoreConfig::default())
    }

    /// Open with explicit configuration.
    pub fn open_with(dir: impl AsRef<Path>, cfg: FileStoreConfig) -> StoreResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        // Exclusive advisory lock for the store's lifetime. Open deletes
        // unlisted segment files as crashed-compaction debris, which is
        // only safe if no *other* process is mid-compaction in the same
        // directory; the OS releases the lock on process death, so a
        // kill -9 never wedges the store.
        let lock = File::create(dir.join(LOCK_NAME))?;
        if let Err(e) = lock.try_lock() {
            return Err(StoreError::BadLayout(format!(
                "store directory {} is locked by another process ({e})",
                dir.display()
            )));
        }

        // A *.tmp metadata file is a write that never committed.
        let _ = fs::remove_file(dir.join(MANIFEST_TMP_NAME));
        let _ = fs::remove_file(dir.join(TOMBSTONES_TMP_NAME));
        Self::adopt_legacy_segments(&dir)?;

        let manifest = match Self::read_manifest(&dir)? {
            Some(m) => m,
            None => {
                // First open (or pre-manifest directory): adopt every pack
                // file present, else start with segment 0.
                let mut packs = Self::list_pack_files(&dir)?;
                packs.sort_unstable();
                if packs.is_empty() {
                    packs.push(0);
                }
                let m = Manifest {
                    epoch: 1,
                    active: *packs.last().expect("non-empty"),
                    packs,
                };
                Self::write_manifest(&dir, &m)?;
                m
            }
        };

        // Unlisted segment files are orphans of a crashed compaction: the
        // chunks they hold are copies of chunks the listed segments still
        // contain, so deleting them is always safe.
        let listed: HashSet<u64> = manifest.packs.iter().copied().collect();
        for seg in Self::list_pack_files(&dir)? {
            if !listed.contains(&seg) {
                fs::remove_file(Self::pack_path(&dir, seg))?;
            }
        }
        for tmp in Self::list_tmp_files(&dir)? {
            fs::remove_file(tmp)?;
        }

        // Tombstones keep sweeps durable: a dead frame inside a retained
        // segment must stay dead across reopen. Entries for segments the
        // manifest no longer names are stale and pruned.
        let tombstones_on_disk = Self::read_tombstones(&dir)?;
        let tombstones: TombstoneSet = tombstones_on_disk
            .iter()
            .filter(|(seg, _)| listed.contains(seg))
            .copied()
            .collect();
        if tombstones != tombstones_on_disk {
            Self::write_tombstones(&dir, &tombstones)?;
        }

        let mut index = HashMap::new();
        let mut active_offset = 0u64;

        for &seg in &manifest.packs {
            let (entries, good_end) = Self::replay_segment(&dir, seg)?;
            let path = Self::pack_path(&dir, seg);
            let actual_len = match fs::metadata(&path) {
                Ok(md) => md.len(),
                // Listed but missing: a rotation crashed between the
                // manifest write and the file creation. Treat as empty.
                Err(e) if e.kind() == ErrorKind::NotFound => 0,
                Err(e) => return Err(e.into()),
            };
            if good_end < actual_len {
                // Torn tail from a crash: truncate to the last good frame.
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(good_end)?;
                f.sync_all()?;
            }
            for (hash, slot) in entries {
                if tombstones.contains(&(seg, slot.payload_offset)) {
                    continue; // swept before the last shutdown
                }
                index.insert(hash, slot);
            }
            if seg == manifest.active {
                active_offset = good_end;
            }
        }

        // Count recovered data from the index (frames can be duplicated
        // across segments after crash recovery; the index dedups them).
        let recovered_chunks = index.len() as u64;
        let recovered_bytes = index.values().map(|s| u64::from(s.len)).sum();

        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(Self::pack_path(&dir, manifest.active))?;
        let active = Active {
            segment: manifest.active,
            writer: BufWriter::new(file),
            offset: active_offset,
        };

        let stats = StatsCell::new();
        stats.record_recovered(recovered_chunks, recovered_bytes);

        Ok(FileStore {
            dir,
            cfg,
            // Everything replayed from disk is by definition flushed.
            active_segment: std::sync::atomic::AtomicU64::new(active.segment),
            active_flushed: std::sync::atomic::AtomicU64::new(active.offset),
            index: RwLock::new(index),
            active: Mutex::new(active),
            manifest: Mutex::new(manifest),
            tombstones: Mutex::new(tombstones),
            _lock: lock,
            stats,
        })
    }

    fn pack_path(dir: &Path, seg: u64) -> PathBuf {
        dir.join(format!("{PACK_PREFIX}{seg:08}{PACK_EXT}"))
    }

    fn pack_tmp_path(dir: &Path, seg: u64) -> PathBuf {
        dir.join(format!("{PACK_PREFIX}{seg:08}{PACK_TMP_EXT}"))
    }

    fn manifest_path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_NAME)
    }

    /// Rename pre-manifest `seg-NNNNNNNN.fkb` segments to pack naming so a
    /// store written by the previous layout opens cleanly.
    fn adopt_legacy_segments(dir: &Path) -> StoreResult<()> {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix(LEGACY_PREFIX)
                .and_then(|s| s.strip_suffix(LEGACY_EXT))
            {
                let seg: u64 = num.parse().map_err(|_| {
                    StoreError::BadLayout(format!("unparseable segment file name: {name}"))
                })?;
                fs::rename(entry.path(), Self::pack_path(dir, seg))?;
            }
        }
        Ok(())
    }

    fn list_pack_files(dir: &Path) -> StoreResult<Vec<u64>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(PACK_TMP_EXT) {
                continue;
            }
            if let Some(num) = name
                .strip_prefix(PACK_PREFIX)
                .and_then(|s| s.strip_suffix(PACK_EXT))
            {
                match num.parse::<u64>() {
                    Ok(n) => out.push(n),
                    Err(_) => {
                        return Err(StoreError::BadLayout(format!(
                            "unparseable segment file name: {name}"
                        )))
                    }
                }
            }
        }
        Ok(out)
    }

    fn list_tmp_files(dir: &Path) -> StoreResult<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().ends_with(PACK_TMP_EXT) {
                out.push(entry.path());
            }
        }
        Ok(out)
    }

    fn read_manifest(dir: &Path) -> StoreResult<Option<Manifest>> {
        let text = match fs::read_to_string(Self::manifest_path(dir)) {
            Ok(t) => t,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Manifest::decode(&text)
            .map(Some)
            .map_err(|e| StoreError::BadLayout(format!("manifest: {e}")))
    }

    /// Durably replace the manifest: staging file, fsync, atomic rename,
    /// directory fsync. The store is defined by whichever manifest the
    /// rename left in place — there is no intermediate state.
    fn write_manifest(dir: &Path, m: &Manifest) -> StoreResult<()> {
        let tmp = dir.join(MANIFEST_TMP_NAME);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(m.encode().as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, Self::manifest_path(dir))?;
        Self::fsync_dir(dir)?;
        Ok(())
    }

    /// Make directory-level mutations (renames, deletions) durable.
    fn fsync_dir(dir: &Path) -> StoreResult<()> {
        File::open(dir)?.sync_all()?;
        Ok(())
    }

    fn read_tombstones(dir: &Path) -> StoreResult<TombstoneSet> {
        let text = match fs::read_to_string(dir.join(TOMBSTONES_NAME)) {
            Ok(t) => t,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(TombstoneSet::new()),
            Err(e) => return Err(e.into()),
        };
        decode_tombstones(&text).map_err(|e| StoreError::BadLayout(format!("tombstones: {e}")))
    }

    /// Durably replace the tombstone file (same staging/rename/dir-fsync
    /// discipline as the manifest). An empty set removes the file.
    fn write_tombstones(dir: &Path, tombs: &TombstoneSet) -> StoreResult<()> {
        let path = dir.join(TOMBSTONES_NAME);
        if tombs.is_empty() {
            match fs::remove_file(&path) {
                Ok(()) => Self::fsync_dir(dir)?,
                Err(e) if e.kind() == ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
            return Ok(());
        }
        let tmp = dir.join(TOMBSTONES_TMP_NAME);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(encode_tombstones(tombs).as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Self::fsync_dir(dir)?;
        Ok(())
    }

    /// Scan one segment, returning its valid `(hash, slot)` entries and the
    /// offset one past the last valid frame. A missing file reads as empty.
    fn replay_segment(dir: &Path, seg: u64) -> StoreResult<(Vec<(Hash, Slot)>, u64)> {
        let path = Self::pack_path(dir, seg);
        let mut file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(e.into()),
        };
        let len = file.metadata()?.len();
        let mut buf = Vec::with_capacity(len as usize);
        file.read_to_end(&mut buf)?;

        let mut entries = Vec::new();
        let mut pos = 0usize;
        loop {
            if pos + HEADER_LEN + TRAILER_LEN > buf.len() {
                break; // trailing garbage or clean EOF
            }
            if &buf[pos..pos + 4] != FRAME_MAGIC {
                break; // torn write: stop at last good frame
            }
            let payload_len =
                u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
            let frame_end = pos + HEADER_LEN + payload_len + TRAILER_LEN;
            if frame_end > buf.len() {
                break; // truncated payload
            }
            let hash_bytes = &buf[pos + 8..pos + 40];
            let payload = &buf[pos + HEADER_LEN..pos + HEADER_LEN + payload_len];
            let crc_stored = u32::from_le_bytes(
                buf[frame_end - TRAILER_LEN..frame_end]
                    .try_into()
                    .expect("4 bytes"),
            );
            let mut crc_input = Vec::with_capacity(32 + payload_len);
            crc_input.extend_from_slice(hash_bytes);
            crc_input.extend_from_slice(payload);
            if crc32(&crc_input) != crc_stored {
                break; // damaged frame: treat as torn tail
            }
            let hash = Hash::from_slice(hash_bytes).expect("32 bytes");
            entries.push((
                hash,
                Slot {
                    segment: seg,
                    payload_offset: (pos + HEADER_LEN) as u64,
                    len: payload_len as u32,
                },
            ));
            pos = frame_end;
        }
        Ok((entries, pos as u64))
    }

    /// Directory this store persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current manifest epoch (one write per rotation/compaction).
    pub fn manifest_epoch(&self) -> u64 {
        self.manifest.lock().epoch
    }

    /// Number of live segment files.
    pub fn segment_count(&self) -> usize {
        self.manifest.lock().packs.len()
    }

    /// Total bytes of the live segment files on disk.
    pub fn disk_bytes(&self) -> StoreResult<u64> {
        let packs = self.manifest.lock().packs.clone();
        let mut total = 0u64;
        for seg in packs {
            match fs::metadata(Self::pack_path(&self.dir, seg)) {
                Ok(md) => total += md.len(),
                Err(e) if e.kind() == ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(total)
    }

    /// Flush the active writer and publish the flushed watermark so
    /// readers can skip the lock for already-flushed frames. The caller
    /// holds the active lock.
    fn flush_active(&self, active: &mut Active) -> StoreResult<()> {
        active.writer.flush()?;
        self.active_flushed
            .store(active.offset, std::sync::atomic::Ordering::Release);
        Ok(())
    }

    /// Publish a new active segment id for lock-free readers. The flushed
    /// watermark is reset *first* — see the field docs for the ordering
    /// argument. The caller holds the active lock.
    fn publish_active(&self, segment: u64) {
        use std::sync::atomic::Ordering;
        self.active_flushed.store(0, Ordering::Release);
        self.active_segment.store(segment, Ordering::Release);
    }

    /// Append one frame to the active segment (rotating first if it is
    /// full), returning the chunk's slot. Does not flush or fsync; the
    /// caller decides durability (per put or once per batch).
    fn append_frame(&self, active: &mut Active, hash: &Hash, bytes: &Bytes) -> StoreResult<Slot> {
        // Rotate if the active segment is full.
        if active.offset >= self.cfg.segment_bytes {
            active.writer.flush()?;
            active.writer.get_ref().sync_all()?;
            let mut manifest = self.manifest.lock();
            let next = manifest.packs.iter().max().copied().unwrap_or(0) + 1;
            // Create the file, then commit it to the manifest, then write
            // frames: a crash in between leaves an empty listed segment or
            // an unlisted empty orphan — both recover cleanly.
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(Self::pack_path(&self.dir, next))?;
            let mut next_manifest = manifest.clone();
            next_manifest.epoch += 1;
            next_manifest.active = next;
            next_manifest.packs.push(next);
            Self::write_manifest(&self.dir, &next_manifest)?;
            *manifest = next_manifest;
            drop(manifest);
            *active = Active {
                segment: next,
                writer: BufWriter::new(file),
                offset: 0,
            };
            self.publish_active(next);
        }

        let payload_offset = active.offset + HEADER_LEN as u64;
        let mut crc_input = Vec::with_capacity(32 + bytes.len());
        crc_input.extend_from_slice(hash.as_bytes());
        crc_input.extend_from_slice(bytes);
        let crc = crc32(&crc_input);

        active.writer.write_all(FRAME_MAGIC)?;
        active
            .writer
            .write_all(&(bytes.len() as u32).to_le_bytes())?;
        active.writer.write_all(hash.as_bytes())?;
        active.writer.write_all(bytes)?;
        active.writer.write_all(&crc.to_le_bytes())?;
        active.offset += frame_len(bytes.len() as u32);

        Ok(Slot {
            segment: active.segment,
            payload_offset,
            len: bytes.len() as u32,
        })
    }

    fn read_slot(&self, slot: Slot) -> StoreResult<Bytes> {
        let path = Self::pack_path(&self.dir, slot.segment);
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(slot.payload_offset))?;
        let mut buf = vec![0u8; slot.len as usize];
        file.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    /// Physically compact the store against a live-chunk set (the mark
    /// phase's output): drop dead index entries, rewrite the survivors of
    /// low-utilization segments into fresh segments, swap the manifest,
    /// and delete the victims. See the module docs for the crash-recovery
    /// protocol. Writers block for the duration (they share the active
    /// lock); readers keep running and retry through the slot relocation.
    pub fn compact(&self, live: &HashSet<Hash>) -> StoreResult<SweepReport> {
        let mut active = self.active.lock();
        // Seal the log: every acked frame is on disk before we decide
        // anything based on file contents. Publishing the watermark also
        // lets readers of active-segment chunks proceed lock-free for the
        // rest of the (long) compaction.
        self.flush_active(&mut active)?;
        active.writer.get_ref().sync_all()?;

        // Phase 1: drop dead chunks from the index. Their frames stay on
        // disk until the segment is compacted away (tombstoned below so
        // they cannot resurrect on reopen), but they are no longer
        // addressable and no longer counted as resident.
        let mut chunks_reclaimed = 0u64;
        let mut bytes_reclaimed = 0u64;
        let mut dead_slots: Vec<Slot> = Vec::new();
        {
            let mut index = self.index.write();
            index.retain(|h, slot| {
                if live.contains(h) {
                    true
                } else {
                    chunks_reclaimed += 1;
                    bytes_reclaimed += u64::from(slot.len);
                    dead_slots.push(*slot);
                    false
                }
            });
        }
        if chunks_reclaimed > 0 {
            self.stats.record_swept(chunks_reclaimed, bytes_reclaimed);
        }

        // Phase 2: per-segment utilization = live frame bytes / file size.
        let manifest = self.manifest.lock().clone();
        let mut live_frame_bytes: HashMap<u64, u64> =
            manifest.packs.iter().map(|&p| (p, 0)).collect();
        {
            let index = self.index.read();
            for slot in index.values() {
                *live_frame_bytes.entry(slot.segment).or_insert(0) += frame_len(slot.len);
            }
        }
        let mut seg_sizes: HashMap<u64, u64> = HashMap::new();
        let mut disk_bytes_before = 0u64;
        for &seg in &manifest.packs {
            let len = match fs::metadata(Self::pack_path(&self.dir, seg)) {
                Ok(md) => md.len(),
                Err(e) if e.kind() == ErrorKind::NotFound => 0,
                Err(e) => return Err(e.into()),
            };
            seg_sizes.insert(seg, len);
            disk_bytes_before += len;
        }
        let victims: HashSet<u64> = manifest
            .packs
            .iter()
            .copied()
            .filter(|seg| {
                let size = seg_sizes[seg];
                size > 0
                    && (live_frame_bytes[seg] as f64)
                        < self.cfg.compact_min_utilization * size as f64
            })
            .collect();

        if victims.is_empty() {
            // No segment is worth rewriting, but the sweep itself must
            // still be durable: tombstone every dead frame so it stays
            // dead across reopen.
            if !dead_slots.is_empty() {
                let mut tombs = self.tombstones.lock();
                tombs.extend(dead_slots.iter().map(|s| (s.segment, s.payload_offset)));
                Self::write_tombstones(&self.dir, &tombs)?;
            }
            return Ok(SweepReport {
                chunks_reclaimed,
                bytes_reclaimed,
                disk_bytes_before,
                disk_bytes_after: disk_bytes_before,
                ..Default::default()
            });
        }

        // Phase 3: copy the victims' live chunks into temp segments, in
        // (segment, offset) order for sequential reads.
        let mut to_move: Vec<(Hash, Slot)> = {
            let index = self.index.read();
            index
                .iter()
                .filter(|(_, slot)| victims.contains(&slot.segment))
                .map(|(h, s)| (*h, *s))
                .collect()
        };
        to_move.sort_unstable_by_key(|(_, s)| (s.segment, s.payload_offset));

        let mut next_id = manifest.packs.iter().max().copied().unwrap_or(0) + 1;
        let mut new_segments: Vec<u64> = Vec::new();
        let mut moved: Vec<(Hash, Slot)> = Vec::with_capacity(to_move.len());
        let mut chunks_rewritten = 0u64;
        let mut bytes_rewritten = 0u64;
        {
            let mut writer: Option<(u64, BufWriter<File>, u64)> = None; // (id, w, offset)
                                                                        // `to_move` is sorted by (segment, offset): keep one source
                                                                        // file handle per victim segment instead of reopening the
                                                                        // file for every chunk.
            let mut src: Option<(u64, File)> = None;
            for (hash, slot) in &to_move {
                if src.as_ref().map(|(seg, _)| *seg) != Some(slot.segment) {
                    src = Some((
                        slot.segment,
                        File::open(Self::pack_path(&self.dir, slot.segment))?,
                    ));
                }
                let (_, src_file) = src.as_mut().expect("source handle just ensured");
                src_file.seek(SeekFrom::Start(slot.payload_offset))?;
                let mut buf = vec![0u8; slot.len as usize];
                src_file.read_exact(&mut buf)?;
                let bytes = Bytes::from(buf);
                if let Some((_, _, offset)) = &writer {
                    if *offset >= self.cfg.segment_bytes {
                        let (_, mut w, _) = writer.take().expect("writer present");
                        w.flush()?;
                        w.get_ref().sync_all()?;
                    }
                }
                if writer.is_none() {
                    let id = next_id;
                    next_id += 1;
                    let file = File::create(Self::pack_tmp_path(&self.dir, id))?;
                    writer = Some((id, BufWriter::new(file), 0));
                    new_segments.push(id);
                }
                let (id, w, offset) = writer.as_mut().expect("writer just ensured");
                let mut crc_input = Vec::with_capacity(32 + bytes.len());
                crc_input.extend_from_slice(hash.as_bytes());
                crc_input.extend_from_slice(&bytes);
                let crc = crc32(&crc_input);
                w.write_all(FRAME_MAGIC)?;
                w.write_all(&(bytes.len() as u32).to_le_bytes())?;
                w.write_all(hash.as_bytes())?;
                w.write_all(&bytes)?;
                w.write_all(&crc.to_le_bytes())?;
                let payload_offset = *offset + HEADER_LEN as u64;
                *offset += frame_len(bytes.len() as u32);
                moved.push((
                    *hash,
                    Slot {
                        segment: *id,
                        payload_offset,
                        len: bytes.len() as u32,
                    },
                ));
                chunks_rewritten += 1;
                bytes_rewritten += bytes.len() as u64;
            }
            if let Some((_, mut w, _)) = writer.take() {
                w.flush()?;
                w.get_ref().sync_all()?;
            }
        }

        // Phase 4: move the temp segments into place. A crash from here to
        // the manifest swap leaves unlisted orphans, deleted on open.
        for &id in &new_segments {
            fs::rename(
                Self::pack_tmp_path(&self.dir, id),
                Self::pack_path(&self.dir, id),
            )?;
        }
        Self::fsync_dir(&self.dir)?;

        // If the active segment is a victim, its replacement is a fresh
        // empty segment created (and listed) before the manifest swap.
        let active_is_victim = victims.contains(&active.segment);
        let new_active_id = if active_is_victim {
            let id = next_id;
            File::create(Self::pack_path(&self.dir, id))?.sync_all()?;
            Some(id)
        } else {
            None
        };

        // Phase 5: make the sweep durable — tombstone dead frames that
        // stay inside retained segments, and forget entries for segments
        // about to be deleted. Written before the manifest swap: if we
        // crash in between, the tombstones reference segments the old
        // manifest still lists, which is exactly right.
        {
            let mut tombs = self.tombstones.lock();
            tombs.retain(|(seg, _)| !victims.contains(seg));
            tombs.extend(
                dead_slots
                    .iter()
                    .filter(|s| !victims.contains(&s.segment))
                    .map(|s| (s.segment, s.payload_offset)),
            );
            Self::write_tombstones(&self.dir, &tombs)?;
        }

        // Phase 6: the commit point — swap the manifest.
        let mut next_manifest = Manifest {
            epoch: manifest.epoch + 1,
            active: new_active_id.unwrap_or(manifest.active),
            packs: manifest
                .packs
                .iter()
                .copied()
                .filter(|seg| !victims.contains(seg))
                .chain(new_segments.iter().copied())
                .chain(new_active_id)
                .collect(),
        };
        next_manifest.packs.sort_unstable();
        Self::write_manifest(&self.dir, &next_manifest)?;
        *self.manifest.lock() = next_manifest.clone();

        // Phase 7: repoint the index at the rewritten slots, then delete
        // the victims. Readers that copied an old slot before the repoint
        // retry through the index after the file disappears.
        {
            let mut index = self.index.write();
            for (hash, slot) in moved {
                if let Some(entry) = index.get_mut(&hash) {
                    *entry = slot;
                }
            }
        }
        for &seg in &victims {
            fs::remove_file(Self::pack_path(&self.dir, seg))?;
        }
        Self::fsync_dir(&self.dir)?;

        if let Some(id) = new_active_id {
            *active = Active {
                segment: id,
                writer: BufWriter::new(
                    OpenOptions::new()
                        .append(true)
                        .open(Self::pack_path(&self.dir, id))?,
                ),
                offset: 0,
            };
            self.publish_active(id);
        }
        drop(active);

        self.stats
            .record_compaction(chunks_rewritten, bytes_rewritten);

        let mut disk_bytes_after = 0u64;
        for &seg in &next_manifest.packs {
            if let Ok(md) = fs::metadata(Self::pack_path(&self.dir, seg)) {
                disk_bytes_after += md.len();
            }
        }
        Ok(SweepReport {
            chunks_reclaimed,
            bytes_reclaimed,
            chunks_rewritten,
            bytes_rewritten,
            segments_deleted: victims.len() as u64,
            disk_bytes_before,
            disk_bytes_after,
        })
    }

    /// Flush the active writer if `slot` may still be buffered in it. The
    /// lock is released before the caller's file read: holding it across
    /// disk I/O + hashing would serialize readers of fresh chunks against
    /// every writer, and the read path's retry loop already copes with a
    /// concurrent compaction relocating the slot.
    fn flush_if_active(&self, slot: Slot) -> StoreResult<()> {
        let mut active = self.active.lock();
        if slot.segment == active.segment {
            self.flush_active(&mut active)?;
        }
        Ok(())
    }
}

impl ChunkStore for FileStore {
    fn put_with_hash(&self, hash: Hash, bytes: Bytes) -> StoreResult<bool> {
        debug_assert_eq!(forkbase_crypto::sha256(&bytes), hash);
        let len = bytes.len() as u64;

        // Fast path: already stored.
        if self.index.read().contains_key(&hash) {
            self.stats.record_put(len, false);
            return Ok(false);
        }

        let mut active = self.active.lock();
        // Re-check under the writer lock (another thread may have won).
        if self.index.read().contains_key(&hash) {
            self.stats.record_put(len, false);
            return Ok(false);
        }

        let slot = self.append_frame(&mut active, &hash, &bytes)?;

        if self.cfg.sync_every_put {
            self.flush_active(&mut active)?;
            active.writer.get_ref().sync_all()?;
        }

        self.index.write().insert(hash, slot);
        drop(active);

        self.stats.record_put(len, true);
        Ok(true)
    }

    fn put_batch(&self, chunks: Vec<(Hash, Bytes)>) -> StoreResult<usize> {
        if chunks.is_empty() {
            return Ok(0);
        }
        let puts = chunks.len() as u64;
        let logical: u64 = chunks.iter().map(|(_, b)| b.len() as u64).sum();

        // Group commit: the active-segment lock is taken once for the whole
        // batch. Every other writer also serializes on this lock, so the
        // index cannot gain entries while we hold it — one read acquisition
        // suffices to split the batch into fresh vs dedup-hit chunks.
        let mut active = self.active.lock();
        let mut fresh: Vec<(Hash, Bytes)> = Vec::with_capacity(chunks.len());
        {
            let index = self.index.read();
            let mut seen = HashSet::new();
            for (hash, bytes) in chunks {
                debug_assert_eq!(forkbase_crypto::sha256(&bytes), hash);
                if index.contains_key(&hash) || !seen.insert(hash) {
                    continue;
                }
                fresh.push((hash, bytes));
            }
        }

        let mut staged: Vec<(Hash, Slot)> = Vec::with_capacity(fresh.len());
        let mut new_bytes = 0u64;
        for (hash, bytes) in fresh {
            let slot = self.append_frame(&mut active, &hash, &bytes)?;
            new_bytes += bytes.len() as u64;
            staged.push((hash, slot));
        }

        // At most one fsync per batch, only when durability-per-put is on.
        if self.cfg.sync_every_put && !staged.is_empty() {
            self.flush_active(&mut active)?;
            active.writer.get_ref().sync_all()?;
        }

        let new_chunks = staged.len() as u64;
        {
            let mut index = self.index.write();
            for (hash, slot) in staged {
                index.insert(hash, slot);
            }
        }
        drop(active);

        self.stats.record_put_batch(
            puts,
            logical,
            new_chunks,
            new_bytes,
            puts - new_chunks,
            logical - new_bytes,
        );
        Ok(new_chunks as usize)
    }

    fn get(&self, hash: &Hash) -> StoreResult<Option<Bytes>> {
        // A concurrent compaction can relocate the slot and delete the old
        // segment between our index read and the file read; the frame
        // itself is immutable, so retrying through the index is enough.
        const ATTEMPTS: usize = 3;
        for attempt in 0..ATTEMPTS {
            let slot = self.index.read().get(hash).copied();
            let Some(slot) = slot else {
                self.stats.record_get(false);
                return Ok(None);
            };
            // The slot may still be buffered in the active writer. The
            // lock-free watermark check covers the common cases — sealed
            // segments and already-flushed active frames (including the
            // whole of a compaction, which seals the log up front) — so
            // only a read of genuinely unflushed data touches the lock.
            use std::sync::atomic::Ordering;
            let frame_end = slot.payload_offset + u64::from(slot.len) + TRAILER_LEN as u64;
            if slot.segment == self.active_segment.load(Ordering::Acquire)
                && frame_end > self.active_flushed.load(Ordering::Acquire)
            {
                self.flush_if_active(slot)?;
            }
            match self.read_slot(slot) {
                Ok(bytes) => {
                    // End-to-end integrity: media corruption surfaces here
                    // rather than propagating bad data upward.
                    let actual = forkbase_crypto::sha256(&bytes);
                    if actual != *hash {
                        return Err(StoreError::Corrupt {
                            expected: *hash,
                            actual,
                        });
                    }
                    self.stats.record_get(true);
                    return Ok(Some(bytes));
                }
                Err(StoreError::Io(e))
                    if e.kind() == ErrorKind::NotFound && attempt + 1 < ATTEMPTS =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop always returns on the final attempt")
    }

    fn contains(&self, hash: &Hash) -> StoreResult<bool> {
        Ok(self.index.read().contains_key(hash))
    }

    fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    fn chunk_count(&self) -> usize {
        self.index.read().len()
    }

    fn stored_bytes(&self) -> u64 {
        self.stats.snapshot().stored_bytes
    }

    fn sync(&self) -> StoreResult<()> {
        let mut active = self.active.lock();
        self.flush_active(&mut active)?;
        active.writer.get_ref().sync_all()?;
        Ok(())
    }
}

impl SweepStore for FileStore {
    fn sweep(&self, live: &(dyn Fn(&Hash) -> bool + Sync)) -> StoreResult<SweepReport> {
        let live_set: HashSet<Hash> = {
            let index = self.index.read();
            index.keys().filter(|h| live(h)).copied().collect()
        };
        self.compact(&live_set)
    }

    fn utilization(&self) -> StoreResult<Utilization> {
        let live_bytes = {
            let index = self.index.read();
            index.values().map(|s| u64::from(s.len)).sum()
        };
        Ok(Utilization {
            live_bytes,
            disk_bytes: self.disk_bytes()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_crypto::sha256;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "forkbase-filestore-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip() {
        let dir = temp_dir("roundtrip");
        let s = FileStore::open(&dir).unwrap();
        let data = Bytes::from_static(b"persistent chunk");
        let h = s.put(data.clone()).unwrap();
        assert_eq!(s.get(&h).unwrap(), Some(data));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn survives_reopen() {
        let dir = temp_dir("reopen");
        let h1;
        let h2;
        {
            let s = FileStore::open(&dir).unwrap();
            h1 = s.put(Bytes::from_static(b"first")).unwrap();
            h2 = s.put(Bytes::from_static(b"second")).unwrap();
            s.sync().unwrap();
        }
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 2);
        assert_eq!(s.get(&h1).unwrap(), Some(Bytes::from_static(b"first")));
        assert_eq!(s.get(&h2).unwrap(), Some(Bytes::from_static(b"second")));
        // Reopening must not lose dedup: re-putting is a hit.
        assert!(!s.put_with_hash(h1, Bytes::from_static(b"first")).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovers_from_torn_tail() {
        let dir = temp_dir("torn");
        let good;
        {
            let s = FileStore::open(&dir).unwrap();
            good = s.put(Bytes::from_static(b"good chunk")).unwrap();
            s.put(Bytes::from_static(b"doomed chunk")).unwrap();
            s.sync().unwrap();
        }
        // Chop bytes off the end, simulating a crash mid-append.
        let seg = FileStore::pack_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 1, "torn frame must be dropped");
        assert_eq!(
            s.get(&good).unwrap(),
            Some(Bytes::from_static(b"good chunk"))
        );
        // The store must still accept appends after truncation.
        let h3 = s.put(Bytes::from_static(b"after recovery")).unwrap();
        s.sync().unwrap();
        drop(s); // release the directory lock before reopening
        let s2 = FileStore::open(&dir).unwrap();
        assert_eq!(s2.chunk_count(), 2);
        assert!(s2.contains(&h3).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_batch_roundtrip_and_stats() {
        let dir = temp_dir("batch");
        let s = FileStore::open(&dir).unwrap();
        let pre = s.put(Bytes::from_static(b"resident")).unwrap();
        let payloads: Vec<Bytes> = vec![
            Bytes::from_static(b"resident"), // dedup vs resident
            Bytes::from_static(b"batch-a"),
            Bytes::from_static(b"batch-b"),
            Bytes::from_static(b"batch-a"), // dedup within batch
            Bytes::from_static(b"batch-c"),
        ];
        let batch: Vec<(Hash, Bytes)> = payloads
            .iter()
            .map(|b| (forkbase_crypto::sha256(b), b.clone()))
            .collect();
        let hashes: Vec<Hash> = batch.iter().map(|(h, _)| *h).collect();
        assert_eq!(s.put_batch(batch).unwrap(), 3);
        let st = s.stats();
        assert_eq!(st.puts, 1 + 5, "every batched chunk counted exactly once");
        assert_eq!(st.unique_chunks, 4);
        assert_eq!(st.dedup_hits, 2);
        for (h, p) in hashes.iter().zip(&payloads) {
            assert_eq!(s.get(h).unwrap().as_ref(), Some(p));
        }
        // Batch survives reopen like any other write.
        s.sync().unwrap();
        drop(s);
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 4);
        assert!(s.contains(&pre).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_batch_rotates_segments() {
        let dir = temp_dir("batchrotate");
        let cfg = FileStoreConfig {
            segment_bytes: 256,
            sync_every_put: true, // group commit: still at most one fsync
            ..Default::default()
        };
        let s = FileStore::open_with(&dir, cfg).unwrap();
        let batch: Vec<(Hash, Bytes)> = (0..40u32)
            .map(|i| {
                let b = Bytes::from(format!("batch-chunk-{i}-{}", "y".repeat(24)));
                (forkbase_crypto::sha256(&b), b)
            })
            .collect();
        let hashes: Vec<Hash> = batch.iter().map(|(h, _)| *h).collect();
        assert_eq!(s.put_batch(batch).unwrap(), 40);
        assert!(s.segment_count() > 1, "batch must rotate segments mid-way");
        for h in &hashes {
            assert!(s.get(h).unwrap().is_some());
        }
        drop(s);
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 40);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovers_complete_frames_when_crash_hits_mid_batch() {
        // A crash in the middle of a group commit must behave exactly like
        // a crash mid-append: every complete frame of the batch replays,
        // the partial frame is truncated away, and the store stays usable.
        let dir = temp_dir("tornbatch");
        let batch: Vec<(Hash, Bytes)> = (0..10u32)
            .map(|i| {
                let b = Bytes::from(format!("group-commit-chunk-{i:02}-{}", "z".repeat(40)));
                (forkbase_crypto::sha256(&b), b)
            })
            .collect();
        let hashes: Vec<Hash> = batch.iter().map(|(h, _)| *h).collect();
        let one_frame = (HEADER_LEN + batch[0].1.len() + TRAILER_LEN) as u64;
        {
            let s = FileStore::open(&dir).unwrap();
            assert_eq!(s.put_batch(batch).unwrap(), 10);
            s.sync().unwrap();
        }
        // Cut into the middle of the 8th frame: 7 complete frames remain.
        let seg = FileStore::pack_path(&dir, 0);
        let cut = 7 * one_frame + one_frame / 2;
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let s = FileStore::open(&dir).unwrap();
        assert_eq!(
            s.chunk_count(),
            7,
            "complete frames recovered, torn one dropped"
        );
        for h in &hashes[..7] {
            assert!(s.get(h).unwrap().is_some());
        }
        for h in &hashes[7..] {
            assert!(s.get(h).unwrap().is_none());
        }
        assert_eq!(
            fs::metadata(&seg).unwrap().len(),
            7 * one_frame,
            "partial frame truncated back to the last good frame"
        );
        // Re-putting the lost tail of the batch works and survives reopen.
        let retry: Vec<(Hash, Bytes)> = hashes[7..]
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let b = Bytes::from(format!(
                    "group-commit-chunk-{:02}-{}",
                    i + 7,
                    "z".repeat(40)
                ));
                assert_eq!(forkbase_crypto::sha256(&b), *h);
                (*h, b)
            })
            .collect();
        assert_eq!(s.put_batch(retry).unwrap(), 3);
        s.sync().unwrap();
        drop(s);
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn detects_corrupted_frame_on_recovery() {
        let dir = temp_dir("crc");
        let a;
        {
            let s = FileStore::open(&dir).unwrap();
            a = s.put(Bytes::from_static(b"aaaa")).unwrap();
            s.put(Bytes::from_static(b"bbbb")).unwrap();
            s.sync().unwrap();
        }
        // Flip a byte inside the second frame's payload.
        let seg = FileStore::pack_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let second_frame = HEADER_LEN + 4 + TRAILER_LEN; // first frame size
        bytes[second_frame + HEADER_LEN] ^= 0xff;
        fs::write(&seg, &bytes).unwrap();

        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 1, "frame with bad CRC must be dropped");
        assert!(s.contains(&a).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn media_corruption_surfaces_as_error() {
        let dir = temp_dir("media");
        let s = FileStore::open(&dir).unwrap();
        let h = s.put(Bytes::from(vec![7u8; 100])).unwrap();
        s.sync().unwrap();

        // Corrupt the payload in place but leave the CRC region: simulate
        // silent bit-rot after a successful write. We re-write payload AND
        // a matching CRC so only the content-hash check can catch it.
        let seg = FileStore::pack_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        bytes[HEADER_LEN] ^= 0x01; // payload byte
        let payload = bytes[HEADER_LEN..HEADER_LEN + 100].to_vec();
        let mut crc_input = Vec::new();
        crc_input.extend_from_slice(&bytes[8..40]);
        crc_input.extend_from_slice(&payload);
        let crc = crc32(&crc_input).to_le_bytes();
        let crc_at = HEADER_LEN + 100;
        bytes[crc_at..crc_at + 4].copy_from_slice(&crc);
        fs::write(&seg, &bytes).unwrap();

        drop(s); // release the directory lock before reopening
        let s = FileStore::open(&dir).unwrap();
        match s.get(&h) {
            Err(StoreError::Corrupt { expected, .. }) => assert_eq!(expected, h),
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_rotation() {
        let dir = temp_dir("rotate");
        let cfg = FileStoreConfig {
            segment_bytes: 256,
            sync_every_put: false,
            ..Default::default()
        };
        let s = FileStore::open_with(&dir, cfg).unwrap();
        let mut hashes = Vec::new();
        for i in 0..50u32 {
            let data = Bytes::from(format!("chunk-{i}-{}", "x".repeat(32)));
            hashes.push(s.put(data).unwrap());
        }
        s.sync().unwrap();
        assert!(s.segment_count() > 1, "expected rotation");
        // Every chunk still readable, across all segments.
        for (i, h) in hashes.iter().enumerate() {
            let got = s.get(h).unwrap().unwrap();
            assert!(got.starts_with(format!("chunk-{i}-").as_bytes()));
        }
        // And after reopen.
        drop(s);
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 50);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn get_flushes_buffered_writes() {
        let dir = temp_dir("flush");
        let s = FileStore::open(&dir).unwrap();
        let h = s.put(Bytes::from_static(b"buffered")).unwrap();
        // No explicit sync: read must still see the chunk.
        assert_eq!(s.get(&h).unwrap(), Some(Bytes::from_static(b"buffered")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_garbage_segment_names() {
        let dir = temp_dir("names");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("pack-notanumber.fbk"), b"junk").unwrap();
        match FileStore::open(&dir) {
            Err(StoreError::BadLayout(msg)) => assert!(msg.contains("notanumber")),
            other => panic!("expected BadLayout, got {:?}", other.map(|_| ())),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn adopts_legacy_seg_files() {
        // A directory written by the pre-manifest layout (seg-*.fkb, no
        // MANIFEST) opens cleanly: segments are renamed and adopted.
        let dir = temp_dir("legacy");
        let h1;
        let h2;
        {
            let s = FileStore::open(&dir).unwrap();
            h1 = s.put(Bytes::from_static(b"legacy one")).unwrap();
            h2 = s.put(Bytes::from_static(b"legacy two")).unwrap();
            s.sync().unwrap();
        }
        // Devolve to the legacy layout.
        fs::remove_file(FileStore::manifest_path(&dir)).unwrap();
        fs::rename(FileStore::pack_path(&dir, 0), dir.join("seg-00000000.fkb")).unwrap();

        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 2);
        assert_eq!(s.get(&h1).unwrap(), Some(Bytes::from_static(b"legacy one")));
        assert_eq!(s.get(&h2).unwrap(), Some(Bytes::from_static(b"legacy two")));
        assert!(FileStore::manifest_path(&dir).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_corrupt_manifest() {
        let dir = temp_dir("badmanifest");
        {
            let s = FileStore::open(&dir).unwrap();
            s.put(Bytes::from_static(b"x")).unwrap();
            s.sync().unwrap();
        }
        let path = FileStore::manifest_path(&dir);
        let mut text = fs::read_to_string(&path).unwrap();
        text = text.replace("active 0", "active 7");
        fs::write(&path, text).unwrap();
        match FileStore::open(&dir) {
            Err(StoreError::BadLayout(msg)) => assert!(msg.contains("manifest")),
            other => panic!("expected BadLayout, got {:?}", other.map(|_| ())),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_roundtrip_and_crc() {
        let m = Manifest {
            epoch: 42,
            active: 7,
            packs: vec![3, 7, 9],
        };
        let text = m.encode();
        assert_eq!(Manifest::decode(&text).unwrap(), m);
        // Any flipped byte must be rejected.
        let tampered = text.replace("pack 3", "pack 4");
        assert!(Manifest::decode(&tampered).is_err());
    }

    #[test]
    fn directory_lock_excludes_concurrent_opens() {
        // Open deletes unlisted pack files as debris, so two live stores
        // on one directory would destroy each other's compaction output;
        // the LOCK file forbids it. Dropping the store releases the lock.
        let dir = temp_dir("lock");
        let s = FileStore::open(&dir).unwrap();
        match FileStore::open(&dir) {
            Err(StoreError::BadLayout(msg)) => assert!(msg.contains("locked"), "{msg}"),
            other => panic!("second open must fail, got {:?}", other.map(|_| ())),
        }
        drop(s);
        FileStore::open(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tombstone_codec_roundtrip_and_crc() {
        let mut tombs = TombstoneSet::new();
        tombs.insert((3, 1024));
        tombs.insert((0, 40));
        let text = encode_tombstones(&tombs);
        assert_eq!(decode_tombstones(&text).unwrap(), tombs);
        let tampered = text.replace("dead 0 40", "dead 0 44");
        assert!(
            decode_tombstones(&tampered).is_err(),
            "crc must catch edits"
        );
        assert_eq!(
            decode_tombstones(&encode_tombstones(&TombstoneSet::new())).unwrap(),
            TombstoneSet::new()
        );
    }

    fn sized_chunk(i: u32, len: usize) -> Bytes {
        let mut v = format!("chunk-{i:06}-").into_bytes();
        v.resize(len, b'0' + (i % 10) as u8);
        Bytes::from(v)
    }

    #[test]
    fn compaction_reclaims_disk_space() {
        let dir = temp_dir("compact");
        let cfg = FileStoreConfig {
            segment_bytes: 16 * 1024,
            sync_every_put: false,
            ..Default::default()
        };
        let s = FileStore::open_with(&dir, cfg).unwrap();
        // ~64 chunks of 4 KiB → ~16 segments.
        let batch: Vec<(Hash, Bytes)> = (0..64u32)
            .map(|i| {
                let b = sized_chunk(i, 4096);
                (sha256(&b), b)
            })
            .collect();
        let hashes: Vec<Hash> = batch.iter().map(|(h, _)| *h).collect();
        s.put_batch(batch.clone()).unwrap();
        s.sync().unwrap();
        let disk_full = s.disk_bytes().unwrap();

        // Keep every fourth chunk live.
        let live: HashSet<Hash> = hashes.iter().step_by(4).copied().collect();
        let report = s.compact(&live).unwrap();
        assert_eq!(report.chunks_reclaimed, 48);
        assert!(report.segments_deleted > 0);
        assert!(report.disk_bytes_after < disk_full / 2);

        // Live data survives, dead data is gone, and on-disk bytes are
        // within 1.25x of the live frame bytes (the utilization bound).
        let live_frames: u64 = live.iter().map(|_| frame_len(4096)).sum();
        assert!(
            report.disk_bytes_after as f64 <= 1.25 * live_frames as f64,
            "disk {} vs live frames {live_frames}",
            report.disk_bytes_after
        );
        for (i, h) in hashes.iter().enumerate() {
            if live.contains(h) {
                assert_eq!(s.get(h).unwrap(), Some(batch[i].1.clone()));
            } else {
                assert_eq!(s.get(h).unwrap(), None);
            }
        }
        // Stats: resident counters shrank; compaction counters moved; the
        // put counters did not (the churn-vs-dedup-ratio bugfix).
        let st = s.stats();
        assert_eq!(st.unique_chunks, live.len() as u64);
        assert_eq!(st.puts, 64);
        assert!(st.compaction_bytes_rewritten > 0);
        assert_eq!(st.sweep_chunks_reclaimed, 48);

        // The compacted store survives reopen with exactly the live set.
        drop(s);
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), live.len());
        for h in &live {
            assert!(s.get(h).unwrap().is_some());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_is_noop_on_well_utilized_store() {
        let dir = temp_dir("compact-noop");
        let s = FileStore::open(&dir).unwrap();
        let batch: Vec<(Hash, Bytes)> = (0..16u32)
            .map(|i| {
                let b = sized_chunk(i, 1024);
                (sha256(&b), b)
            })
            .collect();
        let live: HashSet<Hash> = batch.iter().map(|(h, _)| *h).collect();
        s.put_batch(batch).unwrap();
        s.sync().unwrap();
        let epoch_before = s.manifest_epoch();
        let report = s.compact(&live).unwrap();
        assert_eq!(report.chunks_reclaimed, 0);
        assert_eq!(report.chunks_rewritten, 0);
        assert_eq!(report.segments_deleted, 0);
        assert_eq!(report.disk_bytes_before, report.disk_bytes_after);
        assert_eq!(s.manifest_epoch(), epoch_before, "no manifest churn");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_stays_writable_after_compacting_active_segment() {
        let dir = temp_dir("compact-active");
        let s = FileStore::open(&dir).unwrap();
        let keep = s.put(sized_chunk(0, 512)).unwrap();
        for i in 1..10u32 {
            s.put(sized_chunk(i, 512)).unwrap();
        }
        s.sync().unwrap();
        // Only one chunk stays live → the (only, active) segment is a
        // victim; the store must swap to a fresh active and keep working.
        let live: HashSet<Hash> = [keep].into_iter().collect();
        let report = s.compact(&live).unwrap();
        assert_eq!(report.chunks_reclaimed, 9);
        assert_eq!(report.chunks_rewritten, 1);
        assert!(s.get(&keep).unwrap().is_some());
        let after = s
            .put(Bytes::from_static(b"written after compaction"))
            .unwrap();
        s.sync().unwrap();
        drop(s);
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.chunk_count(), 2);
        assert!(s.get(&keep).unwrap().is_some());
        assert!(s.get(&after).unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn utilization_tracks_dead_bytes() {
        let dir = temp_dir("util");
        let s = FileStore::open(&dir).unwrap();
        let keep = s.put(sized_chunk(0, 2048)).unwrap();
        s.put(sized_chunk(1, 2048)).unwrap();
        s.sync().unwrap();
        let u = s.utilization().unwrap();
        assert_eq!(u.live_bytes, 4096);
        assert!(u.disk_bytes >= u.live_bytes);
        let live: HashSet<Hash> = [keep].into_iter().collect();
        s.compact(&live).unwrap();
        let u = s.utilization().unwrap();
        assert_eq!(u.live_bytes, 2048);
        assert!(u.ratio() > 0.9, "compaction restored utilization");
        fs::remove_dir_all(&dir).unwrap();
    }
}
