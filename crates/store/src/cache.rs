//! Read-through LRU cache wrapper for slow chunk stores.
//!
//! Chunks are immutable, so caching needs no invalidation: a hash either
//! resolves to one set of bytes forever, or is absent. The cache bounds
//! *bytes* rather than entry count because chunk sizes vary by two orders
//! of magnitude (tiny index pages vs 64 KiB blob chunks).

use std::collections::HashMap;

use bytes::Bytes;
use forkbase_crypto::Hash;
use parking_lot::Mutex;

use crate::stats::StoreStats;
use crate::sweep::{SweepReport, SweepStore, Utilization};
use crate::{ChunkStore, StoreResult};

/// Doubly-linked LRU list over a slab of entries.
struct LruEntry {
    hash: Hash,
    bytes: Bytes,
    prev: Option<usize>,
    next: Option<usize>,
}

struct LruState {
    map: HashMap<Hash, usize>,
    slab: Vec<LruEntry>,
    free: Vec<usize>,
    head: Option<usize>, // most recently used
    tail: Option<usize>, // least recently used
    bytes: usize,
    capacity_bytes: usize,
    hits: u64,
    misses: u64,
}

impl LruState {
    fn new(capacity_bytes: usize) -> Self {
        LruState {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: None,
            tail: None,
            bytes: 0,
            capacity_bytes,
            hits: 0,
            misses: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        match prev {
            Some(p) => self.slab[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slab[n].prev = prev,
            None => self.tail = prev,
        }
        self.slab[idx].prev = None;
        self.slab[idx].next = None;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = None;
        self.slab[idx].next = self.head;
        if let Some(h) = self.head {
            self.slab[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head == Some(idx) {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn get(&mut self, hash: &Hash) -> Option<Bytes> {
        if let Some(&idx) = self.map.get(hash) {
            self.hits += 1;
            let bytes = self.slab[idx].bytes.clone();
            self.touch(idx);
            Some(bytes)
        } else {
            self.misses += 1;
            None
        }
    }

    fn insert(&mut self, hash: Hash, bytes: Bytes) {
        if bytes.len() > self.capacity_bytes {
            return; // never cache something bigger than the whole budget
        }
        // Cache a compact buffer so the LRU byte accounting matches what
        // the entry actually keeps alive (a slice view would pin its whole
        // backing allocation while being charged only its own length).
        let bytes = bytes.compact();
        if let Some(&idx) = self.map.get(&hash) {
            self.touch(idx);
            return;
        }
        // Evict from the tail until the new entry fits.
        while self.bytes + bytes.len() > self.capacity_bytes {
            let Some(tail) = self.tail else { break };
            self.unlink(tail);
            let evicted = std::mem::replace(
                &mut self.slab[tail],
                LruEntry {
                    hash: Hash::ZERO,
                    bytes: Bytes::new(),
                    prev: None,
                    next: None,
                },
            );
            self.map.remove(&evicted.hash);
            self.bytes -= evicted.bytes.len();
            self.free.push(tail);
        }
        let entry = LruEntry {
            hash,
            bytes: bytes.clone(),
            prev: None,
            next: None,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.bytes += bytes.len();
        self.map.insert(hash, idx);
        self.push_front(idx);
    }

    /// Drop every cached entry whose hash fails `keep`. Used when the
    /// backing store sweeps: a swept chunk must not stay servable from the
    /// cache, or `get` and `contains` would disagree with the store.
    fn retain(&mut self, keep: impl Fn(&Hash) -> bool) {
        let dead: Vec<(Hash, usize)> = self
            .map
            .iter()
            .filter(|(h, _)| !keep(h))
            .map(|(h, &idx)| (*h, idx))
            .collect();
        for (hash, idx) in dead {
            self.unlink(idx);
            let evicted = std::mem::replace(
                &mut self.slab[idx],
                LruEntry {
                    hash: Hash::ZERO,
                    bytes: Bytes::new(),
                    prev: None,
                    next: None,
                },
            );
            self.map.remove(&hash);
            self.bytes -= evicted.bytes.len();
            self.free.push(idx);
        }
    }
}

/// A read-through, write-through cache in front of another store.
pub struct CachedStore<S> {
    inner: S,
    lru: Mutex<LruState>,
}

impl<S: ChunkStore> CachedStore<S> {
    /// Wrap `inner` with a cache bounded to `capacity_bytes` of payload.
    pub fn new(inner: S, capacity_bytes: usize) -> Self {
        CachedStore {
            inner,
            lru: Mutex::new(LruState::new(capacity_bytes)),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// `(hits, misses)` observed by the cache layer.
    pub fn cache_stats(&self) -> (u64, u64) {
        let lru = self.lru.lock();
        (lru.hits, lru.misses)
    }

    /// Bytes currently cached.
    pub fn cached_bytes(&self) -> usize {
        self.lru.lock().bytes
    }
}

impl<S: ChunkStore> ChunkStore for CachedStore<S> {
    fn put_with_hash(&self, hash: Hash, bytes: Bytes) -> StoreResult<bool> {
        let newly = self.inner.put_with_hash(hash, bytes.clone())?;
        self.lru.lock().insert(hash, bytes);
        Ok(newly)
    }

    fn put_batch(&self, chunks: Vec<(Hash, Bytes)>) -> StoreResult<usize> {
        // Write through to the backing store's batch path first (it owns
        // the stats), then populate the cache under one lock acquisition.
        // Bytes clones are refcount bumps, not copies.
        let newly = self.inner.put_batch(chunks.clone())?;
        let mut lru = self.lru.lock();
        for (hash, bytes) in chunks {
            lru.insert(hash, bytes);
        }
        Ok(newly)
    }

    fn get(&self, hash: &Hash) -> StoreResult<Option<Bytes>> {
        if let Some(bytes) = self.lru.lock().get(hash) {
            return Ok(Some(bytes));
        }
        let fetched = self.inner.get(hash)?;
        if let Some(ref bytes) = fetched {
            self.lru.lock().insert(*hash, bytes.clone());
        }
        Ok(fetched)
    }

    fn contains(&self, hash: &Hash) -> StoreResult<bool> {
        if self.lru.lock().map.contains_key(hash) {
            return Ok(true);
        }
        self.inner.contains(hash)
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn chunk_count(&self) -> usize {
        self.inner.chunk_count()
    }

    fn stored_bytes(&self) -> u64 {
        self.inner.stored_bytes()
    }

    fn sync(&self) -> StoreResult<()> {
        self.inner.sync()
    }
}

impl<S: SweepStore> SweepStore for CachedStore<S> {
    fn sweep(&self, live: &(dyn Fn(&Hash) -> bool + Sync)) -> StoreResult<SweepReport> {
        let report = self.inner.sweep(live)?;
        // Evict swept chunks so the cache cannot resurrect them.
        self.lru.lock().retain(|h| live(h));
        Ok(report)
    }

    fn utilization(&self) -> StoreResult<Utilization> {
        self.inner.utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    #[test]
    fn read_through_and_hit() {
        let cached = CachedStore::new(MemStore::new(), 1024);
        let h = cached.put(Bytes::from_static(b"cached data")).unwrap();
        // First get may be served from cache (write-through).
        assert_eq!(
            cached.get(&h).unwrap(),
            Some(Bytes::from_static(b"cached data"))
        );
        let (hits, _) = cached.cache_stats();
        assert!(hits >= 1);
    }

    #[test]
    fn miss_populates_cache() {
        let inner = MemStore::new();
        let h = inner.put(Bytes::from_static(b"pre-existing")).unwrap();
        let cached = CachedStore::new(inner, 1024);
        assert_eq!(cached.cache_stats(), (0, 0));
        cached.get(&h).unwrap().unwrap();
        assert_eq!(cached.cache_stats().1, 1, "first get is a miss");
        cached.get(&h).unwrap().unwrap();
        assert_eq!(cached.cache_stats().0, 1, "second get is a hit");
    }

    #[test]
    fn put_batch_populates_cache_and_keeps_stats_consistent() {
        let cached = CachedStore::new(MemStore::new(), 4096);
        let batch: Vec<(Hash, Bytes)> = (0..10u8)
            .map(|i| {
                let b = Bytes::from(vec![i; 64]);
                (forkbase_crypto::sha256(&b), b)
            })
            .collect();
        let hashes: Vec<Hash> = batch.iter().map(|(h, _)| *h).collect();
        assert_eq!(cached.put_batch(batch.clone()).unwrap(), 10);
        // Inner store counted each chunk exactly once.
        let st = cached.stats();
        assert_eq!(st.puts, 10);
        assert_eq!(st.unique_chunks, 10);
        assert_eq!(st.dedup_hits, 0);
        // The batch write-through populated the cache: all gets are hits,
        // so cache_stats stays consistent on the batch path.
        assert_eq!(cached.cache_stats(), (0, 0));
        for h in &hashes {
            assert!(cached.get(h).unwrap().is_some());
        }
        assert_eq!(cached.cache_stats(), (10, 0));
        // Re-batching the same chunks is pure dedup and does not disturb
        // hit/miss accounting.
        assert_eq!(cached.put_batch(batch).unwrap(), 0);
        assert_eq!(cached.stats().dedup_hits, 10);
        assert_eq!(cached.cache_stats(), (10, 0));
    }

    #[test]
    fn eviction_respects_byte_budget() {
        let cached = CachedStore::new(MemStore::new(), 100);
        let mut hashes = Vec::new();
        for i in 0..10u8 {
            let data = Bytes::from(vec![i; 30]);
            hashes.push(cached.put(data).unwrap());
        }
        assert!(cached.cached_bytes() <= 100);
        // Everything is still retrievable via the backing store.
        for h in &hashes {
            assert!(cached.get(h).unwrap().is_some());
        }
    }

    #[test]
    fn oversized_entries_bypass_cache() {
        let cached = CachedStore::new(MemStore::new(), 16);
        let h = cached.put(Bytes::from(vec![1u8; 64])).unwrap();
        assert_eq!(cached.cached_bytes(), 0);
        assert!(cached.get(&h).unwrap().is_some(), "served by inner store");
    }

    #[test]
    fn sweep_evicts_dead_entries_from_cache() {
        let cached = CachedStore::new(MemStore::new(), 4096);
        let keep = cached.put(Bytes::from_static(b"keep")).unwrap();
        let dead = cached.put(Bytes::from_static(b"dead")).unwrap();
        let report = cached.sweep(&|h| *h == keep).unwrap();
        assert_eq!(report.chunks_reclaimed, 1);
        // The swept chunk must be gone even though it was cached.
        assert_eq!(cached.get(&dead).unwrap(), None);
        assert!(!cached.contains(&dead).unwrap());
        assert!(cached.get(&keep).unwrap().is_some());
        assert_eq!(cached.cached_bytes(), b"keep".len());
    }

    #[test]
    fn lru_order_is_respected() {
        let cached = CachedStore::new(MemStore::new(), 64);
        let a = cached.put(Bytes::from(vec![1u8; 30])).unwrap();
        let b = cached.put(Bytes::from(vec![2u8; 30])).unwrap();
        // Touch `a` so `b` becomes LRU.
        cached.get(&a).unwrap();
        // Inserting a third 30-byte chunk must evict `b`, not `a`.
        let _c = cached.put(Bytes::from(vec![3u8; 30])).unwrap();
        let before = cached.cache_stats();
        cached.get(&a).unwrap();
        let after = cached.cache_stats();
        assert_eq!(after.0, before.0 + 1, "a should still be cached");
        let before = cached.cache_stats();
        cached.get(&b).unwrap();
        let after = cached.cache_stats();
        assert_eq!(after.1, before.1 + 1, "b should have been evicted");
    }
}
