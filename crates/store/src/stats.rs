//! Store-level counters backing the paper's `Stat` verb and the Fig. 4
//! deduplication experiment.

use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of a store's counters.
///
/// `logical_bytes` counts every byte *presented* to the store, while
/// `stored_bytes` counts unique bytes actually kept — the gap between the
/// two is what the paper demonstrates in Fig. 4 (a 338.54 KB dataset whose
/// near-duplicate costs only 0.04 KB).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Unique chunks resident.
    pub unique_chunks: u64,
    /// Unique (deduplicated) payload bytes resident.
    pub stored_bytes: u64,
    /// Total put operations, including dedup hits.
    pub puts: u64,
    /// Total bytes presented across all puts.
    pub logical_bytes: u64,
    /// Puts that found the chunk already present.
    pub dedup_hits: u64,
    /// Bytes saved by deduplication (sum of sizes of dedup-hit chunks).
    pub dedup_saved_bytes: u64,
    /// Get operations served.
    pub gets: u64,
    /// Gets that found no chunk.
    pub misses: u64,
    /// Live chunks physically rewritten by compaction. Tracked separately
    /// from `puts` so compaction churn never inflates dedup-ratio metrics.
    pub compaction_chunks_rewritten: u64,
    /// Payload bytes physically rewritten by compaction (write
    /// amplification), excluded from `logical_bytes`/`stored_bytes`.
    pub compaction_bytes_rewritten: u64,
    /// Chunks physically reclaimed by sweep/compaction.
    pub sweep_chunks_reclaimed: u64,
    /// Payload bytes physically reclaimed by sweep/compaction.
    pub sweep_bytes_reclaimed: u64,
}

impl StoreStats {
    /// Deduplication ratio: logical bytes / stored bytes (≥ 1.0 once data
    /// exists; 1.0 means no sharing at all).
    pub fn dedup_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.stored_bytes as f64
        }
    }

    /// Difference in *stored* footprint relative to an earlier snapshot —
    /// "loading the second dataset only increases 0.04 KB" (Fig. 4).
    pub fn stored_delta(&self, earlier: &StoreStats) -> u64 {
        self.stored_bytes.saturating_sub(earlier.stored_bytes)
    }

    /// Difference in unique chunk count relative to an earlier snapshot.
    pub fn chunk_delta(&self, earlier: &StoreStats) -> u64 {
        self.unique_chunks.saturating_sub(earlier.unique_chunks)
    }
}

/// Internal thread-safe accumulator used by store implementations.
#[derive(Default)]
pub struct StatsCell {
    unique_chunks: AtomicU64,
    stored_bytes: AtomicU64,
    puts: AtomicU64,
    logical_bytes: AtomicU64,
    dedup_hits: AtomicU64,
    dedup_saved_bytes: AtomicU64,
    gets: AtomicU64,
    misses: AtomicU64,
    compaction_chunks_rewritten: AtomicU64,
    compaction_bytes_rewritten: AtomicU64,
    sweep_chunks_reclaimed: AtomicU64,
    sweep_bytes_reclaimed: AtomicU64,
}

impl StatsCell {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a put of `len` bytes; `newly_stored` is false on a dedup hit.
    pub fn record_put(&self, len: u64, newly_stored: bool) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.logical_bytes.fetch_add(len, Ordering::Relaxed);
        if newly_stored {
            self.unique_chunks.fetch_add(1, Ordering::Relaxed);
            self.stored_bytes.fetch_add(len, Ordering::Relaxed);
        } else {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            self.dedup_saved_bytes.fetch_add(len, Ordering::Relaxed);
        }
    }

    /// Record a whole batch of puts with one atomic add per counter.
    ///
    /// `puts`/`logical_bytes` cover every chunk presented (including dedup
    /// hits); `new_chunks`/`new_bytes` cover the newly stored subset and
    /// `dup_chunks`/`dup_bytes` the dedup-hit subset. Callers must ensure
    /// `puts == new_chunks + dup_chunks` so each chunk is counted exactly
    /// once, matching a sequence of [`Self::record_put`] calls.
    #[allow(clippy::too_many_arguments)]
    pub fn record_put_batch(
        &self,
        puts: u64,
        logical_bytes: u64,
        new_chunks: u64,
        new_bytes: u64,
        dup_chunks: u64,
        dup_bytes: u64,
    ) {
        debug_assert_eq!(puts, new_chunks + dup_chunks);
        debug_assert_eq!(logical_bytes, new_bytes + dup_bytes);
        self.puts.fetch_add(puts, Ordering::Relaxed);
        self.logical_bytes
            .fetch_add(logical_bytes, Ordering::Relaxed);
        self.unique_chunks.fetch_add(new_chunks, Ordering::Relaxed);
        self.stored_bytes.fetch_add(new_bytes, Ordering::Relaxed);
        self.dedup_hits.fetch_add(dup_chunks, Ordering::Relaxed);
        self.dedup_saved_bytes
            .fetch_add(dup_bytes, Ordering::Relaxed);
    }

    /// Record a get; `hit` is whether the chunk existed.
    pub fn record_get(&self, hit: bool) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        if !hit {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Bulk-register chunks discovered during recovery (no logical puts).
    pub fn record_recovered(&self, chunks: u64, bytes: u64) {
        self.unique_chunks.fetch_add(chunks, Ordering::Relaxed);
        self.stored_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record chunks physically reclaimed by a sweep: resident counters go
    /// down, and the sweep counters record the reclamation itself.
    pub fn record_swept(&self, chunks: u64, bytes: u64) {
        self.unique_chunks.fetch_sub(chunks, Ordering::Relaxed);
        self.stored_bytes.fetch_sub(bytes, Ordering::Relaxed);
        self.sweep_chunks_reclaimed
            .fetch_add(chunks, Ordering::Relaxed);
        self.sweep_bytes_reclaimed
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record live chunks rewritten by compaction. Deliberately does NOT
    /// touch `puts`/`logical_bytes`/`stored_bytes`: the chunk stays
    /// resident, only its physical location changed, and counting the
    /// rewrite as a put would inflate the dedup ratio with churn.
    pub fn record_compaction(&self, chunks: u64, bytes: u64) {
        self.compaction_chunks_rewritten
            .fetch_add(chunks, Ordering::Relaxed);
        self.compaction_bytes_rewritten
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Current snapshot.
    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            unique_chunks: self.unique_chunks.load(Ordering::Relaxed),
            stored_bytes: self.stored_bytes.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            logical_bytes: self.logical_bytes.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            dedup_saved_bytes: self.dedup_saved_bytes.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compaction_chunks_rewritten: self.compaction_chunks_rewritten.load(Ordering::Relaxed),
            compaction_bytes_rewritten: self.compaction_bytes_rewritten.load(Ordering::Relaxed),
            sweep_chunks_reclaimed: self.sweep_chunks_reclaimed.load(Ordering::Relaxed),
            sweep_bytes_reclaimed: self.sweep_bytes_reclaimed.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "chunks:        {}", self.unique_chunks)?;
        writeln!(f, "stored bytes:  {}", self.stored_bytes)?;
        writeln!(f, "logical bytes: {}", self.logical_bytes)?;
        writeln!(
            f,
            "dedup:         {} hits, {} bytes saved, ratio {:.2}x",
            self.dedup_hits,
            self.dedup_saved_bytes,
            self.dedup_ratio()
        )?;
        writeln!(f, "gets:          {} ({} misses)", self.gets, self.misses)?;
        write!(
            f,
            "gc:            {} chunks / {} bytes reclaimed, {} bytes rewritten by compaction",
            self.sweep_chunks_reclaimed,
            self.sweep_bytes_reclaimed,
            self.compaction_bytes_rewritten
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_accounting() {
        let cell = StatsCell::new();
        cell.record_put(100, true);
        cell.record_put(100, false); // dedup hit
        cell.record_put(50, true);
        let s = cell.snapshot();
        assert_eq!(s.unique_chunks, 2);
        assert_eq!(s.stored_bytes, 150);
        assert_eq!(s.logical_bytes, 250);
        assert_eq!(s.dedup_hits, 1);
        assert_eq!(s.dedup_saved_bytes, 100);
        assert!((s.dedup_ratio() - 250.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn batch_accounting_matches_sequential() {
        let seq = StatsCell::new();
        seq.record_put(100, true);
        seq.record_put(100, false);
        seq.record_put(40, true);
        let batched = StatsCell::new();
        batched.record_put_batch(3, 240, 2, 140, 1, 100);
        assert_eq!(seq.snapshot(), batched.snapshot());
    }

    #[test]
    fn get_accounting() {
        let cell = StatsCell::new();
        cell.record_get(true);
        cell.record_get(false);
        let s = cell.snapshot();
        assert_eq!(s.gets, 2);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn deltas() {
        let cell = StatsCell::new();
        cell.record_put(1000, true);
        let before = cell.snapshot();
        cell.record_put(1000, false);
        cell.record_put(40, true);
        let after = cell.snapshot();
        assert_eq!(after.stored_delta(&before), 40);
        assert_eq!(after.chunk_delta(&before), 1);
    }

    #[test]
    fn sweep_and_compaction_accounting_stay_separate() {
        let cell = StatsCell::new();
        cell.record_put(100, true);
        cell.record_put(60, true);
        let before = cell.snapshot();
        // Compaction rewrites the 100-byte chunk and sweeps the 60-byte one.
        cell.record_swept(1, 60);
        cell.record_compaction(1, 100);
        let s = cell.snapshot();
        assert_eq!(s.unique_chunks, 1);
        assert_eq!(s.stored_bytes, 100);
        assert_eq!(s.sweep_chunks_reclaimed, 1);
        assert_eq!(s.sweep_bytes_reclaimed, 60);
        assert_eq!(s.compaction_chunks_rewritten, 1);
        assert_eq!(s.compaction_bytes_rewritten, 100);
        // The user-visible put counters are untouched by GC churn, so the
        // dedup ratio cannot be inflated by compaction rewrites.
        assert_eq!(s.puts, before.puts);
        assert_eq!(s.logical_bytes, before.logical_bytes);
        assert_eq!(s.dedup_hits, before.dedup_hits);
    }

    #[test]
    fn empty_ratio_is_one() {
        assert_eq!(StoreStats::default().dedup_ratio(), 1.0);
    }

    #[test]
    fn display_contains_key_fields() {
        let cell = StatsCell::new();
        cell.record_put(10, true);
        let text = cell.snapshot().to_string();
        assert!(text.contains("chunks:"));
        assert!(text.contains("ratio"));
    }
}
