//! Fault-injection store modelling the paper's malicious storage provider.
//!
//! §II-D's threat model: "the storage is malicious, but the users keep track
//! of the latest uid of every branch". [`FaultyStore`] wraps any store and
//! lets tests make the provider lie in every way a real adversary could:
//! silently mutate chunk bytes, drop chunks, or substitute different
//! (self-consistent!) content. Tamper-evidence tests then assert ForkBase
//! *detects* every manipulation — never returning bad data as good.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::Bytes;
use forkbase_crypto::Hash;
use parking_lot::RwLock;

use crate::stats::StoreStats;
use crate::sweep::{SweepReport, SweepStore, Utilization};
use crate::{ChunkStore, StoreError, StoreResult};

/// How a particular chunk should misbehave on `get`.
#[derive(Clone, Debug)]
pub enum FaultMode {
    /// Return the stored bytes with one bit flipped.
    FlipBit {
        /// Which byte of the payload to corrupt (clamped to length).
        byte: usize,
    },
    /// Pretend the chunk does not exist.
    Drop,
    /// Return entirely different bytes.
    Substitute(Bytes),
    /// Return the stored bytes truncated to this length.
    Truncate(usize),
}

/// How the write path should misbehave ([`FaultyStore::inject_write`]).
///
/// Unlike the read-side [`FaultMode`]s (a lying adversary over an honest
/// store), write faults model a *crashing* provider: the put fails with an
/// I/O error and — for [`WriteFault::FailPutBatchAfter`] — may leave a torn
/// prefix of the batch behind, exactly what a mid-batch power cut leaves in
/// a pack file before the commit record lands.
#[derive(Clone, Copy, Debug)]
pub enum WriteFault {
    /// Every `put` / `put_with_hash` fails; `put_batch` fails before
    /// writing anything.
    FailPut,
    /// `put_batch` writes the first `n` chunks to the inner store, then
    /// fails — a torn batch. Single puts count against the same budget.
    FailPutBatchAfter(usize),
}

/// A store wrapper that injects faults on reads of selected chunks and,
/// optionally, on the write path.
///
/// Note the read faults are *read-side*: the underlying store still holds
/// the honest bytes, matching an adversary who serves bad data over the
/// wire. Write faults ([`WriteFault`]) instead model a crashing provider
/// whose failure may tear a batch.
pub struct FaultyStore<S> {
    inner: S,
    faults: RwLock<HashMap<Hash, FaultMode>>,
    write_fault: RwLock<Option<WriteFault>>,
    /// Chunks the armed [`WriteFault::FailPutBatchAfter`] still allows
    /// through before failing.
    write_budget: AtomicUsize,
}

impl<S: ChunkStore> FaultyStore<S> {
    /// Wrap `inner` with no faults armed.
    pub fn new(inner: S) -> Self {
        FaultyStore {
            inner,
            faults: RwLock::new(HashMap::new()),
            write_fault: RwLock::new(None),
            write_budget: AtomicUsize::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Arm a fault for the chunk at `hash`.
    pub fn inject(&self, hash: Hash, mode: FaultMode) {
        self.faults.write().insert(hash, mode);
    }

    /// Disarm the fault (if any) for `hash`.
    pub fn heal(&self, hash: &Hash) {
        self.faults.write().remove(hash);
    }

    /// Disarm all faults.
    pub fn heal_all(&self) {
        self.faults.write().clear();
    }

    /// Number of armed faults.
    pub fn fault_count(&self) -> usize {
        self.faults.read().len()
    }

    /// Arm a write-path fault (replacing any armed one).
    pub fn inject_write(&self, fault: WriteFault) {
        let budget = match fault {
            WriteFault::FailPut => 0,
            WriteFault::FailPutBatchAfter(n) => n,
        };
        // Budget before mode: a concurrent writer observing the armed
        // mode must never read a stale (larger) budget.
        self.write_budget.store(budget, Ordering::SeqCst);
        *self.write_fault.write() = Some(fault);
    }

    /// Disarm the write-path fault; writes are honest again.
    pub fn heal_writes(&self) {
        *self.write_fault.write() = None;
    }

    fn injected_write_error() -> StoreError {
        StoreError::Io(std::io::Error::other("injected write fault (FaultyStore)"))
    }

    /// Consume `want` chunks of write budget; returns how many may still
    /// be written before the armed fault fires (`None` = no fault armed).
    fn take_write_budget(&self, want: usize) -> Option<usize> {
        match *self.write_fault.read() {
            None => None,
            Some(WriteFault::FailPut) => Some(0),
            Some(WriteFault::FailPutBatchAfter(_)) => {
                let granted = self
                    .write_budget
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| {
                        Some(left.saturating_sub(want))
                    })
                    .expect("fetch_update closure never returns None");
                Some(granted.min(want))
            }
        }
    }
}

impl<S: ChunkStore> ChunkStore for FaultyStore<S> {
    fn put_with_hash(&self, hash: Hash, bytes: Bytes) -> StoreResult<bool> {
        match self.take_write_budget(1) {
            None | Some(1) => self.inner.put_with_hash(hash, bytes),
            Some(_) => Err(Self::injected_write_error()),
        }
    }

    fn put_batch(&self, chunks: Vec<(Hash, Bytes)>) -> StoreResult<usize> {
        match self.take_write_budget(chunks.len()) {
            // Read-side faults never touch writes (§II-D: the adversary
            // serves bad data, the write path is honest).
            None => self.inner.put_batch(chunks),
            Some(allowed) if allowed >= chunks.len() => self.inner.put_batch(chunks),
            Some(allowed) => {
                // Torn batch: a prefix lands in the inner store, then the
                // "crash". The caller sees only the error.
                let prefix: Vec<(Hash, Bytes)> = chunks.into_iter().take(allowed).collect();
                if !prefix.is_empty() {
                    self.inner.put_batch(prefix)?;
                }
                Err(Self::injected_write_error())
            }
        }
    }

    fn get(&self, hash: &Hash) -> StoreResult<Option<Bytes>> {
        let mode = self.faults.read().get(hash).cloned();
        let Some(mode) = mode else {
            return self.inner.get(hash);
        };
        match mode {
            FaultMode::Drop => Ok(None),
            FaultMode::Substitute(bytes) => Ok(Some(bytes)),
            FaultMode::FlipBit { byte } => {
                let honest = self.inner.get(hash)?;
                Ok(honest.map(|b| {
                    let mut v = b.to_vec();
                    if !v.is_empty() {
                        let idx = byte.min(v.len() - 1);
                        v[idx] ^= 0x01;
                    }
                    Bytes::from(v)
                }))
            }
            FaultMode::Truncate(len) => {
                let honest = self.inner.get(hash)?;
                Ok(honest.map(|b| b.slice(..len.min(b.len()))))
            }
        }
    }

    fn contains(&self, hash: &Hash) -> StoreResult<bool> {
        if matches!(self.faults.read().get(hash), Some(FaultMode::Drop)) {
            return Ok(false);
        }
        self.inner.contains(hash)
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn chunk_count(&self) -> usize {
        self.inner.chunk_count()
    }

    fn stored_bytes(&self) -> u64 {
        self.inner.stored_bytes()
    }

    fn sync(&self) -> StoreResult<()> {
        self.inner.sync()
    }
}

/// Sweeps are write-side (the adversary only lies on reads), so they pass
/// straight through to the honest inner store.
impl<S: SweepStore> SweepStore for FaultyStore<S> {
    fn sweep(&self, live: &(dyn Fn(&Hash) -> bool + Sync)) -> StoreResult<SweepReport> {
        self.inner.sweep(live)
    }

    fn utilization(&self) -> StoreResult<Utilization> {
        self.inner.utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use forkbase_crypto::sha256;

    fn setup() -> (FaultyStore<MemStore>, Hash, Bytes) {
        let s = FaultyStore::new(MemStore::new());
        let data = Bytes::from_static(b"honest chunk bytes");
        let h = s.put(data.clone()).unwrap();
        (s, h, data)
    }

    #[test]
    fn no_fault_passes_through() {
        let (s, h, data) = setup();
        assert_eq!(s.get(&h).unwrap(), Some(data));
    }

    #[test]
    fn put_batch_passes_through_with_read_side_faults() {
        let s = FaultyStore::new(MemStore::new());
        let a = Bytes::from_static(b"batch-honest-a");
        let b = Bytes::from_static(b"batch-honest-b");
        let batch = vec![(sha256(&a), a.clone()), (sha256(&b), b.clone())];
        assert_eq!(s.put_batch(batch).unwrap(), 2);
        s.inject(sha256(&a), FaultMode::Drop);
        assert_eq!(s.get(&sha256(&a)).unwrap(), None, "read-side fault");
        assert_eq!(s.get(&sha256(&b)).unwrap(), Some(b));
        assert_eq!(s.inner().chunk_count(), 2, "writes stayed honest");
    }

    #[test]
    fn flip_bit_changes_content() {
        let (s, h, data) = setup();
        s.inject(h, FaultMode::FlipBit { byte: 0 });
        let tampered = s.get(&h).unwrap().unwrap();
        assert_ne!(tampered, data);
        assert_ne!(sha256(&tampered), h, "tampering must be hash-detectable");
        assert_eq!(tampered.len(), data.len());
    }

    #[test]
    fn drop_hides_chunk() {
        let (s, h, _) = setup();
        s.inject(h, FaultMode::Drop);
        assert_eq!(s.get(&h).unwrap(), None);
        assert!(!s.contains(&h).unwrap());
    }

    #[test]
    fn substitute_returns_other_bytes() {
        let (s, h, _) = setup();
        s.inject(h, FaultMode::Substitute(Bytes::from_static(b"evil")));
        assert_eq!(s.get(&h).unwrap(), Some(Bytes::from_static(b"evil")));
    }

    #[test]
    fn truncate_shortens() {
        let (s, h, data) = setup();
        s.inject(h, FaultMode::Truncate(4));
        assert_eq!(s.get(&h).unwrap(), Some(data.slice(..4)));
    }

    #[test]
    fn fail_put_rejects_all_writes_until_healed() {
        let s = FaultyStore::new(MemStore::new());
        s.inject_write(WriteFault::FailPut);
        assert!(s.put(Bytes::from_static(b"doomed")).is_err());
        let batch = vec![(sha256(b"x"), Bytes::from_static(b"x"))];
        assert!(s.put_batch(batch).is_err());
        assert_eq!(s.inner().chunk_count(), 0, "FailPut writes nothing");
        s.heal_writes();
        s.put(Bytes::from_static(b"fine")).unwrap();
        assert_eq!(s.inner().chunk_count(), 1);
    }

    #[test]
    fn fail_put_batch_after_tears_the_batch() {
        let s = FaultyStore::new(MemStore::new());
        s.inject_write(WriteFault::FailPutBatchAfter(2));
        let payloads: Vec<Bytes> = (0..5).map(|i| Bytes::from(format!("chunk-{i}"))).collect();
        let batch: Vec<(Hash, Bytes)> = payloads.iter().map(|b| (sha256(b), b.clone())).collect();
        assert!(s.put_batch(batch).is_err(), "torn batch must error");
        assert_eq!(s.inner().chunk_count(), 2, "exactly the prefix landed");
        assert!(s.inner().contains(&sha256(&payloads[0])).unwrap());
        assert!(s.inner().contains(&sha256(&payloads[1])).unwrap());
        assert!(!s.inner().contains(&sha256(&payloads[2])).unwrap());
        // Budget exhausted: further writes fail outright until healed.
        assert!(s.put(Bytes::from_static(b"after")).is_err());
        s.heal_writes();
        s.put(Bytes::from_static(b"after")).unwrap();
    }

    #[test]
    fn single_puts_share_the_batch_budget() {
        let s = FaultyStore::new(MemStore::new());
        s.inject_write(WriteFault::FailPutBatchAfter(1));
        s.put(Bytes::from_static(b"first")).unwrap();
        assert!(s.put(Bytes::from_static(b"second")).is_err());
        assert_eq!(s.inner().chunk_count(), 1);
    }

    #[test]
    fn heal_restores_honesty() {
        let (s, h, data) = setup();
        s.inject(h, FaultMode::Drop);
        assert_eq!(s.get(&h).unwrap(), None);
        s.heal(&h);
        assert_eq!(s.get(&h).unwrap(), Some(data));
        s.inject(h, FaultMode::Drop);
        s.heal_all();
        assert_eq!(s.fault_count(), 0);
    }
}
