//! Concurrent in-memory chunk store.
//!
//! The default substrate for unit tests, benchmarks and the in-process
//! multi-servelet cluster. Chunk keys are already uniformly distributed
//! SHA-256 digests, so the map uses a pass-through hasher that reads the
//! first 8 bytes of the digest instead of re-hashing with SipHash.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use bytes::Bytes;
use forkbase_crypto::Hash;
use parking_lot::RwLock;

use crate::stats::{StatsCell, StoreStats};
use crate::sweep::{SweepReport, SweepStore, Utilization};
use crate::{ChunkStore, StoreResult};

/// Hasher that passes through the first 8 bytes of a SHA-256 digest.
#[derive(Default)]
pub struct DigestHasher(u64);

impl Hasher for DigestHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Called once with the 32-byte digest; fold the first 8 bytes.
        let mut buf = [0u8; 8];
        let n = bytes.len().min(8);
        buf[..n].copy_from_slice(&bytes[..n]);
        self.0 ^= u64::from_le_bytes(buf);
    }
}

type DigestMap = HashMap<Hash, Bytes, BuildHasherDefault<DigestHasher>>;

/// Number of independently locked shards. Power of two; picked so that the
/// bench workloads (≤ 32 threads) rarely contend.
const SHARDS: usize = 16;

/// In-memory content-addressed store.
pub struct MemStore {
    shards: Vec<RwLock<DigestMap>>,
    stats: StatsCell,
}

impl MemStore {
    /// Create an empty store.
    pub fn new() -> Self {
        MemStore {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(DigestMap::default()))
                .collect(),
            stats: StatsCell::new(),
        }
    }

    #[inline]
    fn shard(&self, hash: &Hash) -> &RwLock<DigestMap> {
        // Use trailing bytes for shard selection so it is independent of the
        // map's internal hash (which uses the leading bytes).
        let idx = hash.as_bytes()[31] as usize % SHARDS;
        &self.shards[idx]
    }

    /// Iterate over all `(hash, len)` pairs; used by GC and tests. Takes a
    /// snapshot per shard, so it is safe under concurrent writes.
    pub fn for_each_chunk(&self, mut f: impl FnMut(&Hash, usize)) {
        for shard in &self.shards {
            let guard = shard.read();
            for (h, b) in guard.iter() {
                f(h, b.len());
            }
        }
    }
}

/// In-memory sweep: dropping a chunk from the shard maps *is* the physical
/// reclamation, so there is never anything to rewrite. The mark phase
/// (reachability from branch heads) lives in `forkbase::gc`.
impl SweepStore for MemStore {
    fn sweep(&self, live: &(dyn Fn(&Hash) -> bool + Sync)) -> StoreResult<SweepReport> {
        let disk_bytes_before = self.stored_bytes();
        let mut chunks = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            let mut guard = shard.write();
            guard.retain(|h, b| {
                if live(h) {
                    true
                } else {
                    chunks += 1;
                    bytes += b.len() as u64;
                    false
                }
            });
        }
        if chunks > 0 {
            self.stats.record_swept(chunks, bytes);
        }
        Ok(SweepReport {
            chunks_reclaimed: chunks,
            bytes_reclaimed: bytes,
            disk_bytes_before,
            disk_bytes_after: disk_bytes_before.saturating_sub(bytes),
            ..Default::default()
        })
    }

    fn utilization(&self) -> StoreResult<Utilization> {
        let live = self.stored_bytes();
        Ok(Utilization {
            live_bytes: live,
            disk_bytes: live,
        })
    }
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkStore for MemStore {
    fn put_with_hash(&self, hash: Hash, bytes: Bytes) -> StoreResult<bool> {
        debug_assert_eq!(
            forkbase_crypto::sha256(&bytes),
            hash,
            "put_with_hash called with a hash that does not match the content"
        );
        let len = bytes.len() as u64;
        let mut guard = self.shard(&hash).write();
        let newly = match guard.entry(hash) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                // Retain a compact buffer: a chunk arriving as a small
                // slice of a large ingest buffer (the zero-copy blob path)
                // must not pin that whole buffer for the store's lifetime.
                v.insert(bytes.compact());
                true
            }
        };
        drop(guard);
        self.stats.record_put(len, newly);
        Ok(newly)
    }

    fn put_batch(&self, mut chunks: Vec<(Hash, Bytes)>) -> StoreResult<usize> {
        if chunks.is_empty() {
            return Ok(0);
        }
        let puts = chunks.len() as u64;
        let logical: u64 = chunks.iter().map(|(_, b)| b.len() as u64).sum();
        for (hash, bytes) in &chunks {
            debug_assert_eq!(
                forkbase_crypto::sha256(bytes),
                *hash,
                "put_batch called with a hash that does not match the content"
            );
        }

        let shard_of = |hash: &Hash| hash.as_bytes()[31] as usize % SHARDS;
        let mut new_chunks = 0u64;
        let mut new_bytes = 0u64;
        if chunks.len() <= SHARDS * 2 {
            // Small batch (the write-batch hot path): with ~one chunk per
            // shard, grouping costs more than the lock batching saves —
            // uncontended shard locks are ~20 ns, the grouping sort and
            // bucket bookkeeping are not. Straight-line install.
            for (hash, bytes) in chunks {
                let len = bytes.len() as u64;
                let mut guard = self.shards[shard_of(&hash)].write();
                if let std::collections::hash_map::Entry::Vacant(v) = guard.entry(hash) {
                    v.insert(bytes.compact());
                    new_chunks += 1;
                    new_bytes += len;
                }
            }
        } else {
            // Large batch (tree-builder flushes): group by shard via an
            // in-place sort so each shard lock is taken once per batch,
            // not once per chunk.
            chunks.sort_unstable_by_key(|(hash, _)| shard_of(hash));
            let mut iter = chunks.into_iter().peekable();
            while let Some((hash, bytes)) = iter.next() {
                let shard = shard_of(&hash);
                let mut guard = self.shards[shard].write();
                let mut install = |hash: Hash, bytes: Bytes| {
                    let len = bytes.len() as u64;
                    if let std::collections::hash_map::Entry::Vacant(v) = guard.entry(hash) {
                        v.insert(bytes.compact());
                        new_chunks += 1;
                        new_bytes += len;
                    }
                };
                install(hash, bytes);
                while let Some((next_hash, _)) = iter.peek() {
                    if shard_of(next_hash) != shard {
                        break;
                    }
                    let (hash, bytes) = iter.next().expect("peeked");
                    install(hash, bytes);
                }
            }
        }
        self.stats.record_put_batch(
            puts,
            logical,
            new_chunks,
            new_bytes,
            puts - new_chunks,
            logical - new_bytes,
        );
        Ok(new_chunks as usize)
    }

    fn get(&self, hash: &Hash) -> StoreResult<Option<Bytes>> {
        let guard = self.shard(hash).read();
        let found = guard.get(hash).cloned();
        drop(guard);
        self.stats.record_get(found.is_some());
        Ok(found)
    }

    fn contains(&self, hash: &Hash) -> StoreResult<bool> {
        Ok(self.shard(hash).read().contains_key(hash))
    }

    fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    fn chunk_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn stored_bytes(&self) -> u64 {
        self.stats.snapshot().stored_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_crypto::sha256;
    use std::sync::Arc;

    #[test]
    fn stored_slices_do_not_pin_their_backing_buffer() {
        // Zero-copy blob ingestion hands the store small slice views of a
        // large buffer; retaining them verbatim would keep the whole
        // buffer alive even when dedup stores only a sliver.
        let s = MemStore::new();
        let big = Bytes::from(vec![0xa5u8; 1 << 20]);
        let h = s.put(big.slice(1000..5096)).unwrap();
        let stored = s.get(&h).unwrap().expect("stored");
        assert_eq!(stored, big.slice(1000..5096));
        assert!(
            stored.backing_len() < 1 << 16,
            "stored chunk pins {} bytes of backing buffer",
            stored.backing_len()
        );
    }

    #[test]
    fn put_get_roundtrip() {
        let s = MemStore::new();
        let data = Bytes::from_static(b"chunk content");
        let h = s.put(data.clone()).unwrap();
        assert_eq!(s.get(&h).unwrap(), Some(data));
        assert_eq!(s.get(&sha256(b"missing")).unwrap(), None);
    }

    #[test]
    fn duplicate_put_is_dedup_hit() {
        let s = MemStore::new();
        let data = Bytes::from_static(b"same bytes");
        assert!(s.put_with_hash(sha256(&data), data.clone()).unwrap());
        assert!(!s.put_with_hash(sha256(&data), data.clone()).unwrap());
        let st = s.stats();
        assert_eq!(st.unique_chunks, 1);
        assert_eq!(st.dedup_hits, 1);
        assert_eq!(st.stored_bytes, data.len() as u64);
        assert_eq!(st.logical_bytes, 2 * data.len() as u64);
    }

    #[test]
    fn chunk_count_spans_shards() {
        let s = MemStore::new();
        for i in 0..100u32 {
            s.put(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        assert_eq!(s.chunk_count(), 100);
    }

    #[test]
    fn concurrent_puts_dedup_correctly() {
        let s = Arc::new(MemStore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    // All threads write the same 500 chunks.
                    let data = Bytes::from(format!("shared-{i}-{}", i * 3));
                    s.put(data).unwrap();
                    let _ = t;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.chunk_count(), 500);
        let st = s.stats();
        assert_eq!(st.puts, 8 * 500);
        assert_eq!(st.dedup_hits, 7 * 500);
    }

    #[test]
    fn put_batch_stats_update_exactly_once_per_chunk() {
        let s = MemStore::new();
        let pre = s.put(Bytes::from_static(b"already here")).unwrap();
        let batch: Vec<(Hash, Bytes)> = [
            Bytes::from_static(b"already here"), // dedup vs resident chunk
            Bytes::from_static(b"fresh-1"),
            Bytes::from_static(b"fresh-2"),
            Bytes::from_static(b"fresh-1"), // dedup within the batch
        ]
        .into_iter()
        .map(|b| (sha256(&b), b))
        .collect();
        let newly = s.put_batch(batch).unwrap();
        assert_eq!(newly, 2);
        let st = s.stats();
        assert_eq!(st.puts, 1 + 4);
        assert_eq!(st.unique_chunks, 3);
        assert_eq!(st.dedup_hits, 2);
        assert_eq!(
            st.stored_bytes,
            (b"already here".len() + b"fresh-1".len() + b"fresh-2".len()) as u64
        );
        assert_eq!(
            st.logical_bytes,
            (2 * b"already here".len() + 2 * b"fresh-1".len() + b"fresh-2".len()) as u64
        );
        assert!(s.contains(&pre).unwrap());
    }

    #[test]
    fn put_batch_equals_sequential_puts() {
        let sequential = MemStore::new();
        let batched = MemStore::new();
        let data: Vec<Bytes> = (0..200u32)
            .map(|i| Bytes::from(format!("chunk-{}", i % 120))) // ~40% dups
            .collect();
        for b in &data {
            sequential.put(b.clone()).unwrap();
        }
        batched
            .put_batch(data.iter().map(|b| (sha256(b), b.clone())).collect())
            .unwrap();
        assert_eq!(sequential.stats(), batched.stats());
        assert_eq!(sequential.chunk_count(), batched.chunk_count());
    }

    #[test]
    fn concurrent_batches_dedup_correctly() {
        let s = Arc::new(MemStore::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for round in 0..10u32 {
                    let batch: Vec<(Hash, Bytes)> = (0..50u32)
                        .map(|i| {
                            let b = Bytes::from(format!("shared-{round}-{i}"));
                            (sha256(&b), b)
                        })
                        .collect();
                    s.put_batch(batch).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.chunk_count(), 500);
        let st = s.stats();
        assert_eq!(st.puts, 8 * 500);
        assert_eq!(st.dedup_hits, 7 * 500);
    }

    #[test]
    fn sweep_removes_dead_chunks() {
        let s = MemStore::new();
        let keep = s.put(Bytes::from_static(b"keep me")).unwrap();
        let _dead = s.put(Bytes::from_static(b"dead chunk")).unwrap();
        let report = s.sweep(&|h| *h == keep).unwrap();
        assert_eq!(report.chunks_reclaimed, 1);
        assert_eq!(report.bytes_reclaimed, b"dead chunk".len() as u64);
        assert_eq!(report.chunks_rewritten, 0, "nothing to rewrite in RAM");
        assert_eq!(s.chunk_count(), 1);
        assert!(s.contains(&keep).unwrap());
        let st = s.stats();
        assert_eq!(st.stored_bytes, b"keep me".len() as u64);
        assert_eq!(st.sweep_chunks_reclaimed, 1);
        assert_eq!(s.utilization().unwrap().ratio(), 1.0);
    }

    #[test]
    fn for_each_chunk_visits_everything() {
        let s = MemStore::new();
        s.put(Bytes::from_static(b"a")).unwrap();
        s.put(Bytes::from_static(b"bb")).unwrap();
        let mut total = 0usize;
        let mut count = 0usize;
        s.for_each_chunk(|_, len| {
            total += len;
            count += 1;
        });
        assert_eq!(count, 2);
        assert_eq!(total, 3);
    }
}
