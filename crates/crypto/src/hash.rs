//! The 32-byte content address used throughout ForkBase.
//!
//! Every immutable chunk (POS-Tree node, blob chunk, FNode) is identified by
//! the SHA-256 digest of its canonical encoding. Version identifiers shown to
//! users are the Base32 rendering of the same digest (paper §III-C).

use std::fmt;

use crate::base32;
use crate::hex;

/// Number of bytes in a [`struct@Hash`].
pub const HASH_LEN: usize = 32;

/// A 32-byte SHA-256 content address.
///
/// `Hash` is `Copy` and orders lexicographically, which lets stores keep
/// chunks in ordered maps and lets tests make deterministic assertions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hash([u8; HASH_LEN]);

impl Hash {
    /// The all-zero hash, used as a sentinel for "no value" in a few
    /// persistent structures (never a valid SHA-256 output in practice).
    pub const ZERO: Hash = Hash([0u8; HASH_LEN]);

    /// Wrap raw digest bytes.
    pub const fn from_bytes(bytes: [u8; HASH_LEN]) -> Self {
        Hash(bytes)
    }

    /// Borrow the digest bytes.
    pub fn as_bytes(&self) -> &[u8; HASH_LEN] {
        &self.0
    }

    /// Copy out the digest bytes.
    pub fn to_bytes(self) -> [u8; HASH_LEN] {
        self.0
    }

    /// Parse from a byte slice; fails unless it is exactly 32 bytes.
    pub fn from_slice(slice: &[u8]) -> Option<Self> {
        if slice.len() != HASH_LEN {
            return None;
        }
        let mut b = [0u8; HASH_LEN];
        b.copy_from_slice(slice);
        Some(Hash(b))
    }

    /// True if this is the [`Hash::ZERO`] sentinel.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; HASH_LEN]
    }

    /// Lowercase hex rendering (64 chars).
    pub fn to_hex(&self) -> String {
        hex::hex_encode(&self.0)
    }

    /// Parse a 64-char hex string.
    pub fn from_hex(s: &str) -> Option<Self> {
        let bytes = hex::hex_decode(s)?;
        Self::from_slice(&bytes)
    }

    /// RFC 4648 Base32 rendering — the user-facing version id format
    /// shown in the paper's Fig. 6 (52 chars + padding trimmed).
    pub fn to_base32(&self) -> String {
        base32::base32_encode(&self.0)
    }

    /// Parse a Base32 version id produced by [`Hash::to_base32`].
    pub fn from_base32(s: &str) -> Option<Self> {
        let bytes = base32::base32_decode(s)?;
        Self::from_slice(&bytes)
    }

    /// Short prefix (first 8 hex chars) for logs and UI listings.
    pub fn short(&self) -> String {
        hex::hex_encode(&self.0[..4])
    }
}

impl fmt::Debug for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash({})", self.short())
    }
}

impl fmt::Display for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_base32())
    }
}

impl AsRef<[u8]> for Hash {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; HASH_LEN]> for Hash {
    fn from(b: [u8; HASH_LEN]) -> Self {
        Hash(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;

    #[test]
    fn zero_sentinel() {
        assert!(Hash::ZERO.is_zero());
        assert!(!sha256(b"x").is_zero());
    }

    #[test]
    fn slice_roundtrip() {
        let h = sha256(b"roundtrip");
        assert_eq!(Hash::from_slice(h.as_bytes()), Some(h));
        assert_eq!(Hash::from_slice(&h.as_bytes()[..31]), None);
        assert_eq!(Hash::from_slice(&[0u8; 33]), None);
    }

    #[test]
    fn hex_roundtrip() {
        let h = sha256(b"hex");
        assert_eq!(Hash::from_hex(&h.to_hex()), Some(h));
        assert_eq!(h.to_hex().len(), 64);
        assert_eq!(Hash::from_hex("zz"), None);
    }

    #[test]
    fn base32_roundtrip() {
        let h = sha256(b"base32");
        let s = h.to_base32();
        assert_eq!(Hash::from_base32(&s), Some(h));
        // 32 bytes -> ceil(32*8/5) = 52 base32 chars (unpadded; the encoder
        // emits padding to a multiple of 8, i.e. 56 chars total).
        assert!(s.len() == 52 || s.len() == 56, "len = {}", s.len());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Hash::from_bytes([0u8; 32]);
        let mut b2 = [0u8; 32];
        b2[31] = 1;
        let b = Hash::from_bytes(b2);
        assert!(a < b);
    }

    #[test]
    fn display_and_debug() {
        let h = sha256(b"fmt");
        assert_eq!(format!("{h}"), h.to_base32());
        assert!(format!("{h:?}").starts_with("Hash("));
        assert_eq!(h.short().len(), 8);
    }
}
