//! RFC 4648 §6 Base32 codec.
//!
//! The paper (§III-C) states that ForkBase version identifiers are "encoded
//! using the RFC 4648 Base32 alphabet". We implement the standard alphabet
//! `A–Z2–7` with `=` padding on encode and tolerant (padding-optional,
//! case-insensitive) decode.

const ALPHABET: &[u8; 32] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ234567";
const PAD: u8 = b'=';

/// Encode `data` as RFC 4648 Base32 (with padding).
pub fn base32_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(5) * 8);
    for group in data.chunks(5) {
        // Pack up to 5 bytes into a 40-bit buffer, left aligned.
        let mut buf = [0u8; 5];
        buf[..group.len()].copy_from_slice(group);
        let v = u64::from(buf[0]) << 32
            | u64::from(buf[1]) << 24
            | u64::from(buf[2]) << 16
            | u64::from(buf[3]) << 8
            | u64::from(buf[4]);
        // Number of significant base32 digits for this group length.
        let digits = match group.len() {
            1 => 2,
            2 => 4,
            3 => 5,
            4 => 7,
            _ => 8,
        };
        for i in 0..8 {
            if i < digits {
                let idx = ((v >> (35 - 5 * i)) & 0x1f) as usize;
                out.push(ALPHABET[idx] as char);
            } else {
                out.push(PAD as char);
            }
        }
    }
    // A 32-byte hash encodes to 52 digits + 4 pad chars; strip padding for
    // the canonical ForkBase uid rendering when the length is unambiguous.
    out
}

/// Decode an RFC 4648 Base32 string. Accepts lowercase input and missing
/// padding. Returns `None` on invalid characters or impossible lengths.
pub fn base32_decode(s: &str) -> Option<Vec<u8>> {
    let trimmed = s.trim_end_matches('=');
    let mut out = Vec::with_capacity(trimmed.len() * 5 / 8 + 1);

    let mut buf: u64 = 0;
    let mut bits: u32 = 0;
    for ch in trimmed.bytes() {
        let v = decode_char(ch)?;
        buf = (buf << 5) | u64::from(v);
        bits += 5;
        if bits >= 8 {
            bits -= 8;
            out.push((buf >> bits) as u8);
        }
    }
    // Leftover bits must be zero padding (RFC 4648 canonical form).
    if bits > 0 && (buf & ((1 << bits) - 1)) != 0 {
        return None;
    }
    // Valid unpadded lengths mod 8 are 0,2,4,5,7.
    if matches!(trimmed.len() % 8, 1 | 3 | 6) {
        return None;
    }
    Some(out)
}

fn decode_char(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a'),
        b'2'..=b'7' => Some(c - b'2' + 26),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4648 §10 test vectors.
    #[test]
    fn rfc4648_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", ""),
            (b"f", "MY======"),
            (b"fo", "MZXQ===="),
            (b"foo", "MZXW6==="),
            (b"foob", "MZXW6YQ="),
            (b"fooba", "MZXW6YTB"),
            (b"foobar", "MZXW6YTBOI======"),
        ];
        for (plain, encoded) in cases {
            assert_eq!(&base32_encode(plain), encoded, "encode {plain:?}");
            assert_eq!(
                base32_decode(encoded).as_deref(),
                Some(*plain),
                "decode {encoded}"
            );
        }
    }

    #[test]
    fn decode_without_padding() {
        assert_eq!(base32_decode("MZXW6YQ").as_deref(), Some(&b"foob"[..]));
        assert_eq!(base32_decode("mzxw6ytb").as_deref(), Some(&b"fooba"[..]));
    }

    #[test]
    fn decode_rejects_invalid() {
        assert_eq!(base32_decode("1"), None, "digit 1 not in alphabet");
        assert_eq!(base32_decode("M0======"), None, "digit 0 not in alphabet");
        assert_eq!(base32_decode("M"), None, "impossible length");
        assert_eq!(base32_decode("MZXW6YT!"), None, "punctuation");
    }

    #[test]
    fn decode_rejects_nonzero_trailing_bits() {
        // "MZ" decodes 10 bits; the low 2 bits must be zero. 'Z' = 25 =
        // 0b11001, so the trailing bits are 0b01 -> invalid.
        assert_eq!(base32_decode("MZ"), None);
        assert_eq!(base32_decode("MY"), Some(vec![b'f']));
    }

    #[test]
    fn roundtrip_binary() {
        let data: Vec<u8> = (0..=255u8).collect();
        for len in [0, 1, 2, 3, 4, 5, 31, 32, 33, 255] {
            let slice = &data[..len.min(data.len())];
            let enc = base32_encode(slice);
            assert_eq!(base32_decode(&enc).as_deref(), Some(slice), "len {len}");
        }
    }

    #[test]
    fn hash_sized_roundtrip() {
        let digest = [0xa5u8; 32];
        let enc = base32_encode(&digest);
        assert_eq!(enc.len(), 56); // 52 digits + 4 pads
        assert_eq!(base32_decode(&enc).unwrap(), digest);
    }
}
