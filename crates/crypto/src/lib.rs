#![forbid(unsafe_code)]
//! Cryptographic primitives for ForkBase.
//!
//! ForkBase identifies every immutable chunk by its SHA-256 digest and
//! renders version identifiers using the RFC 4648 Base32 alphabet
//! (paper §III-C). Because the canonical byte encodings feed directly into
//! Merkle hashing, this crate is implemented from scratch — byte-for-byte
//! stability matters more than raw speed, although the SHA-256 core below
//! compresses at several hundred MB/s which is ample for the benchmarks.
//!
//! # Example
//!
//! ```
//! use forkbase_crypto::{sha256, Hash};
//!
//! let h: Hash = sha256(b"hello world");
//! assert_eq!(
//!     h.to_hex(),
//!     "b94d27b9934d3e08a52e52d7da7dabfac484efe37a5380ee9088f7ace2efcde9"
//! );
//! let round = Hash::from_hex(&h.to_hex()).unwrap();
//! assert_eq!(h, round);
//! ```

pub mod base32;
pub mod hash;
pub mod hex;
pub mod sha256;

pub use base32::{base32_decode, base32_encode};
pub use hash::Hash;
pub use hex::{hex_decode, hex_encode};
pub use sha256::{sha256, Sha256};
