//! Minimal lowercase hex codec.

/// Encode `data` as lowercase hex.
pub fn hex_encode(data: &[u8]) -> String {
    const ALPHABET: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decode a hex string (case-insensitive). Returns `None` on odd length or
/// invalid digits.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = hex_val(pair[0])?;
        let lo = hex_val(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Some(out)
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known() {
        assert_eq!(hex_encode(&[]), "");
        assert_eq!(hex_encode(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(hex_encode(b"Az"), "417a");
    }

    #[test]
    fn decode_known() {
        assert_eq!(hex_decode("00ff10"), Some(vec![0x00, 0xff, 0x10]));
        assert_eq!(hex_decode("00FF10"), Some(vec![0x00, 0xff, 0x10]));
        assert_eq!(hex_decode(""), Some(vec![]));
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert_eq!(hex_decode("0"), None, "odd length");
        assert_eq!(hex_decode("0g"), None, "invalid digit");
        assert_eq!(hex_decode("  "), None, "whitespace");
    }

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(hex_decode(&hex_encode(&data)), Some(data));
    }
}
