//! SHA-256 per FIPS 180-4.
//!
//! A streaming implementation: feed arbitrary byte slices with
//! [`Sha256::update`] and finish with [`Sha256::finalize`]. The one-shot
//! helper [`sha256`] covers the common case.
//!
//! The implementation is validated in the unit tests against the NIST
//! short-message test vectors and the classic FIPS examples ("abc", the
//! 448-bit two-block message, and the one-million-`a` stress vector).

use crate::hash::Hash;

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes (the padding encodes it in bits).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;

        // Top up a partially-filled block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            } else {
                // Buffer still partial and input exhausted; nothing more to do.
                return;
            }
        }

        // Whole blocks straight from the input.
        let mut chunks = rest.chunks_exact(64);
        for block in &mut chunks {
            // chunks_exact guarantees 64 bytes.
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Finish the computation, producing the digest.
    pub fn finalize(mut self) -> Hash {
        let bit_len = self.len.wrapping_mul(8);

        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Room needed after current buffer: 1 pad byte + zeros + 8 length bytes,
        // such that (buf_len + pad_len) % 64 == 0.
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update_no_len(&pad[..pad_len + 8]);

        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Hash::from_bytes(out)
    }

    /// `update` without length accounting, used only for the final padding.
    fn update_no_len(&mut self, data: &[u8]) {
        let saved = self.len;
        self.update(data);
        self.len = saved;
    }

    #[inline]
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> Hash {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        sha256(data).to_hex()
    }

    #[test]
    fn empty_message() {
        assert_eq!(
            hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_abc() {
        assert_eq!(
            hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_two_block() {
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&block);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn nist_short_vectors() {
        // Selected from the NIST CAVP SHA256ShortMsg suite.
        let cases: &[(&[u8], &str)] = &[
            (
                &[0xd3],
                "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1",
            ),
            (
                &[0x11, 0xaf],
                "5ca7133fa735326081558ac312c620eeca9970d1e70a4b95533d956f072d1f98",
            ),
            (
                &[0x74, 0xba, 0x25, 0x21],
                "b16aa56be3880d18cd41e68384cf1ec8c17680c45a02b1575dc1518923ae8b0e",
            ),
            (
                b"\x09\xfc\x1a\xcc\xc2\x30\xa2\x05\xe4\xa2\x08\xe6\x4a\x8f\x20\x42\x91\xf5\x81\xa1\x27\x56\x39\x2d\xa4\xb8\xc0\xcf\x5e\xf0\x2b\x95",
                "4f44c1c7fbebb6f9601829f3897bfd650c56fa07844be76489076356ac1886a4",
            ),
        ];
        for (msg, want) in cases {
            assert_eq!(&hex(msg), want, "msg = {msg:02x?}");
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        // Split the input at many awkward boundaries.
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 1000, 99_999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split = {split}");
        }
    }

    #[test]
    fn incremental_many_small_updates() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Sha256::new();
        for b in data.iter() {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), sha256(data));
    }

    #[test]
    fn boundary_lengths() {
        // Exercise every buffer/padding edge around the 64-byte block size.
        for n in 0..200usize {
            let data = vec![0xabu8; n];
            let one = sha256(&data);
            let mut h = Sha256::new();
            for chunk in data.chunks(7) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), one, "length {n}");
        }
    }
}
