#![forbid(unsafe_code)]
//! Relational dataset layer over ForkBase.
//!
//! The demonstration (paper §III) revolves around CSV datasets: loading
//! them into ForkBase, branching them per collaborator, diffing branches
//! at multiple scopes (dataset → row → cell, Fig. 5), and watching the
//! chunk store absorb near-duplicates for almost nothing (Fig. 4).
//!
//! A dataset is stored as a `Map` value: one entry per row, keyed by the
//! primary-key column, with a canonical row encoding as the entry value;
//! the schema rides along under a reserved key that sorts before every
//! row. Everything the POS-Tree gives maps — structural invariance,
//! page-level dedup, `O(D log N)` diff, sub-tree merge — is inherited by
//! datasets for free, which is precisely the paper's point about
//! co-designing Git-for-data with the storage engine.

pub mod csv;
pub mod dataset;
pub mod diff;
pub mod row;
pub mod schema;

pub use csv::{parse_csv, write_csv, CsvError};
pub use dataset::TableStore;
pub use diff::{CellChange, DatasetDiff, RowChange};
pub use row::{decode_row, encode_row};
pub use schema::Schema;

/// Reserved map key holding the schema; `\0` sorts before all permitted
/// row keys (row keys must be non-empty and must not start with `\0`).
pub const SCHEMA_KEY: &[u8] = b"\0schema";
