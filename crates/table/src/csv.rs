//! Minimal RFC 4180 CSV codec.
//!
//! Supports quoted fields, embedded commas/newlines/quotes, and both LF
//! and CRLF line endings. Intentionally small: the demo workloads are
//! machine-generated CSVs, not arbitrary spreadsheets.

/// CSV parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line where the problem was found.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Parse CSV text into records (each a vector of fields).
///
/// Empty input yields no records. A trailing newline does not produce an
/// empty final record.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut line = 1usize;
    let mut in_quotes = false;
    let mut field_started_quoted = false;
    let mut any_field = false;

    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if field.is_empty() && !any_field || field.is_empty() {
                    in_quotes = true;
                    field_started_quoted = true;
                    any_field = true;
                } else {
                    return Err(CsvError {
                        line,
                        message: "quote inside unquoted field".into(),
                    });
                }
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                field_started_quoted = false;
                any_field = true;
            }
            '\r' => {
                // Swallow only as part of CRLF.
                if chars.peek() != Some(&'\n') {
                    field.push('\r');
                }
            }
            '\n' => {
                line += 1;
                if any_field || !field.is_empty() || !record.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                any_field = false;
                field_started_quoted = false;
            }
            _ => {
                if field_started_quoted && !in_quotes {
                    return Err(CsvError {
                        line,
                        message: "data after closing quote".into(),
                    });
                }
                field.push(c);
                any_field = true;
            }
        }
    }
    if in_quotes {
        return Err(CsvError {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if any_field || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Render records as CSV text (LF line endings, minimal quoting).
pub fn write_csv(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for record in records {
        for (i, fieldv) in record.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if fieldv.contains([',', '"', '\n', '\r']) {
                out.push('"');
                out.push_str(&fieldv.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(fieldv);
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fields: &[&str]) -> Vec<String> {
        fields.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn simple_rows() {
        let parsed = parse_csv("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(parsed, vec![rec(&["a", "b", "c"]), rec(&["1", "2", "3"])]);
    }

    #[test]
    fn no_trailing_newline() {
        let parsed = parse_csv("a,b\n1,2").unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1], rec(&["1", "2"]));
    }

    #[test]
    fn empty_input_and_empty_fields() {
        assert_eq!(parse_csv("").unwrap(), Vec::<Vec<String>>::new());
        assert_eq!(parse_csv("a,,c\n").unwrap(), vec![rec(&["a", "", "c"])]);
        assert_eq!(parse_csv(",\n").unwrap(), vec![rec(&["", ""])]);
    }

    #[test]
    fn quoted_fields() {
        let parsed = parse_csv("\"hello, world\",b\n").unwrap();
        assert_eq!(parsed, vec![rec(&["hello, world", "b"])]);
        let parsed = parse_csv("\"say \"\"hi\"\"\",x\n").unwrap();
        assert_eq!(parsed, vec![rec(&["say \"hi\"", "x"])]);
        let parsed = parse_csv("\"multi\nline\",y\n").unwrap();
        assert_eq!(parsed, vec![rec(&["multi\nline", "y"])]);
    }

    #[test]
    fn crlf_line_endings() {
        let parsed = parse_csv("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(parsed, vec![rec(&["a", "b"]), rec(&["1", "2"])]);
    }

    #[test]
    fn errors() {
        assert!(parse_csv("\"unterminated\n").is_err());
        assert!(parse_csv("\"closed\"junk,b\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let records = vec![
            rec(&["id", "name", "notes"]),
            rec(&["1", "plain", "simple"]),
            rec(&["2", "has,comma", "has\"quote"]),
            rec(&["3", "multi\nline", ""]),
        ];
        let text = write_csv(&records);
        assert_eq!(parse_csv(&text).unwrap(), records);
    }

    #[test]
    fn write_quotes_only_when_needed() {
        let text = write_csv(&[rec(&["plain", "with,comma"])]);
        assert_eq!(text, "plain,\"with,comma\"\n");
    }
}
