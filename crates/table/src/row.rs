//! Canonical row encoding.
//!
//! A row is a vector of string cells; its encoding is a length-prefixed
//! concatenation. The encoding is canonical (one byte string per logical
//! row), which matters because it feeds the dataset map and therefore the
//! version uid.

use bytes::Bytes;

/// Encode cells into the canonical row bytes.
pub fn encode_row(cells: &[String]) -> Bytes {
    let mut out = Vec::with_capacity(cells.iter().map(|c| c.len() + 4).sum::<usize>() + 4);
    out.extend_from_slice(&(cells.len() as u32).to_le_bytes());
    for c in cells {
        out.extend_from_slice(&(c.len() as u32).to_le_bytes());
        out.extend_from_slice(c.as_bytes());
    }
    Bytes::from(out)
}

/// Decode the canonical row bytes.
pub fn decode_row(bytes: &[u8]) -> Option<Vec<String>> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let s = bytes.get(*pos..*pos + n)?;
        *pos += n;
        Some(s)
    };
    let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    if n > 1 << 20 {
        return None;
    }
    let mut cells = Vec::with_capacity(n);
    for _ in 0..n {
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let cell = String::from_utf8(take(&mut pos, len)?.to_vec()).ok()?;
        cells.push(cell);
    }
    if pos != bytes.len() {
        return None;
    }
    Some(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let cells = vec!["1".to_string(), "hello, world".to_string(), String::new()];
        let enc = encode_row(&cells);
        assert_eq!(decode_row(&enc), Some(cells));
    }

    #[test]
    fn empty_row() {
        let enc = encode_row(&[]);
        assert_eq!(decode_row(&enc), Some(vec![]));
    }

    #[test]
    fn unicode_cells() {
        let cells = vec!["日本語".to_string(), "naïve".to_string()];
        assert_eq!(decode_row(&encode_row(&cells)), Some(cells));
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(decode_row(&[]), None);
        assert_eq!(decode_row(&[1, 0, 0, 0]), None, "missing cell");
        let mut enc = encode_row(&["a".into()]).to_vec();
        enc.push(0);
        assert_eq!(decode_row(&enc), None, "trailing bytes");
        assert_eq!(decode_row(&[0xff, 0xff, 0xff, 0xff]), None, "huge count");
    }

    #[test]
    fn encoding_is_injective_on_cell_boundaries() {
        // ["ab","c"] must differ from ["a","bc"].
        let a = encode_row(&["ab".into(), "c".into()]);
        let b = encode_row(&["a".into(), "bc".into()]);
        assert_ne!(a, b);
    }
}
