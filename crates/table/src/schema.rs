//! Dataset schema: column names plus the primary-key column.

/// Schema of a dataset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    /// Column names in order.
    pub columns: Vec<String>,
    /// Index of the primary-key column.
    pub key_column: usize,
}

impl Schema {
    /// Create a schema; panics if `key_column` is out of range or columns
    /// are empty/duplicated.
    pub fn new(columns: Vec<String>, key_column: usize) -> Self {
        assert!(!columns.is_empty(), "schema needs at least one column");
        assert!(key_column < columns.len(), "key column out of range");
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            assert!(seen.insert(c.clone()), "duplicate column name {c:?}");
        }
        Schema {
            columns,
            key_column,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Name of the primary-key column.
    pub fn key_column_name(&self) -> &str {
        &self.columns[self.key_column]
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Canonical encoding (feeds the dataset's map, hence the uid).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.key_column as u32).to_le_bytes());
        out.extend_from_slice(&(self.columns.len() as u32).to_le_bytes());
        for c in &self.columns {
            out.extend_from_slice(&(c.len() as u32).to_le_bytes());
            out.extend_from_slice(c.as_bytes());
        }
        out
    }

    /// Decode the canonical encoding.
    pub fn decode(bytes: &[u8]) -> Option<Schema> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let key_column = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        if n == 0 || n > 4096 {
            return None;
        }
        let mut columns = Vec::with_capacity(n);
        for _ in 0..n {
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            let name = String::from_utf8(take(&mut pos, len)?.to_vec()).ok()?;
            columns.push(name);
        }
        if pos != bytes.len() || key_column >= columns.len() {
            return None;
        }
        Some(Schema {
            columns,
            key_column,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let s = Schema::new(vec!["id".into(), "name".into(), "price".into()], 0);
        assert_eq!(Schema::decode(&s.encode()), Some(s.clone()));
        assert_eq!(s.arity(), 3);
        assert_eq!(s.key_column_name(), "id");
        assert_eq!(s.column_index("price"), Some(2));
        assert_eq!(s.column_index("ghost"), None);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(Schema::decode(&[]), None);
        assert_eq!(Schema::decode(&[1, 2, 3]), None);
        let mut bytes = Schema::new(vec!["a".into()], 0).encode();
        bytes.push(0);
        assert_eq!(Schema::decode(&bytes), None, "trailing bytes");
        // key_column out of range.
        let mut bytes = Schema::new(vec!["a".into()], 0).encode();
        bytes[0] = 9;
        assert_eq!(Schema::decode(&bytes), None);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        Schema::new(vec!["x".into(), "x".into()], 0);
    }

    #[test]
    #[should_panic(expected = "key column out of range")]
    fn bad_key_column_rejected() {
        Schema::new(vec!["x".into()], 5);
    }
}
