//! Dataset management: CSV load/export, row access, branch operations.
//!
//! [`TableStore`] is the "Dataset Management" application of the paper's
//! architecture diagram — a thin layer translating relational operations
//! into map-value commits on a [`ForkBase`] database.

use bytes::Bytes;
use forkbase::{CommitResult, DbError, DbResult, ForkBase, PutOptions, VersionSpec};
use forkbase_postree::MapEdit;
use forkbase_store::ChunkStore;
use forkbase_types::Value;

use crate::csv::{parse_csv, write_csv};
use crate::diff::DatasetDiff;
use crate::row::{decode_row, encode_row};
use crate::schema::Schema;
use crate::SCHEMA_KEY;

/// Per-column statistics: `(name, distinct count, min/max range)`.
pub type ColumnStats = Vec<(String, u64, Option<(String, String)>)>;

/// Dataset operations over a ForkBase database.
pub struct TableStore<'d, S> {
    db: &'d ForkBase<S>,
}

impl<'d, S: ChunkStore> TableStore<'d, S> {
    /// Wrap a database.
    pub fn new(db: &'d ForkBase<S>) -> Self {
        TableStore { db }
    }

    /// The wrapped database.
    pub fn db(&self) -> &'d ForkBase<S> {
        self.db
    }

    /// Load CSV text as a dataset: the first record is the header, the
    /// remaining records are rows keyed by `key_column`. Commits to
    /// `opts.branch` and returns the commit.
    pub fn load_csv(
        &self,
        key: &str,
        csv_text: &str,
        key_column: usize,
        opts: &PutOptions,
    ) -> DbResult<CommitResult> {
        let records = parse_csv(csv_text).map_err(|e| DbError::InvalidInput(e.to_string()))?;
        let Some((header, rows)) = records.split_first() else {
            return Err(DbError::InvalidInput("CSV has no header".into()));
        };
        if key_column >= header.len() {
            return Err(DbError::InvalidInput(format!(
                "key column {key_column} out of range (arity {})",
                header.len()
            )));
        }
        let schema = Schema::new(header.clone(), key_column);

        let mut pairs: Vec<(Bytes, Bytes)> = Vec::with_capacity(rows.len() + 1);
        pairs.push((Bytes::from_static(SCHEMA_KEY), Bytes::from(schema.encode())));
        for (i, row) in rows.iter().enumerate() {
            if row.len() != schema.arity() {
                return Err(DbError::InvalidInput(format!(
                    "row {} has {} cells, schema has {}",
                    i + 2,
                    row.len(),
                    schema.arity()
                )));
            }
            let row_key = &row[key_column];
            if row_key.is_empty() || row_key.starts_with('\0') {
                return Err(DbError::InvalidInput(format!(
                    "row {} has an empty/reserved primary key",
                    i + 2
                )));
            }
            pairs.push((Bytes::from(row_key.clone()), encode_row(row)));
        }
        let value = self.db.new_map(pairs)?;
        self.db.put(key, value, opts)
    }

    /// The schema of a dataset version.
    pub fn schema(&self, key: &str, spec: &VersionSpec) -> DbResult<Schema> {
        let uid = self.db.resolve(key, spec)?;
        let value = self.db.get_version(&uid)?.value;
        let bytes = self
            .db
            .map_get(&value, SCHEMA_KEY)?
            .ok_or_else(|| DbError::InvalidInput(format!("{key:?} is not a dataset")))?;
        Schema::decode(&bytes).ok_or_else(|| DbError::InvalidInput("corrupt schema entry".into()))
    }

    /// One row by primary key.
    pub fn row(
        &self,
        key: &str,
        spec: &VersionSpec,
        row_key: &str,
    ) -> DbResult<Option<Vec<String>>> {
        let uid = self.db.resolve(key, spec)?;
        let value = self.db.get_version(&uid)?.value;
        match self.db.map_get(&value, row_key.as_bytes())? {
            None => Ok(None),
            Some(bytes) => decode_row(&bytes)
                .map(Some)
                .ok_or_else(|| DbError::InvalidInput(format!("corrupt row {row_key:?}"))),
        }
    }

    /// All rows, in key order (schema entry excluded).
    pub fn rows(&self, key: &str, spec: &VersionSpec) -> DbResult<Vec<Vec<String>>> {
        let uid = self.db.resolve(key, spec)?;
        let value = self.db.get_version(&uid)?.value;
        let mut out = Vec::new();
        for (k, v) in self.db.map_entries(&value)? {
            if k.as_ref() == SCHEMA_KEY {
                continue;
            }
            out.push(decode_row(&v).ok_or_else(|| DbError::InvalidInput("corrupt row".into()))?);
        }
        Ok(out)
    }

    /// Number of rows (schema entry excluded).
    pub fn row_count(&self, key: &str, spec: &VersionSpec) -> DbResult<u64> {
        let uid = self.db.resolve(key, spec)?;
        let value = self.db.get_version(&uid)?.value;
        match value {
            Value::Map(t) => Ok(t.count.saturating_sub(1)),
            other => Err(DbError::TypeMismatch {
                expected: "map",
                found: other.value_type().name(),
            }),
        }
    }

    /// Insert or replace whole rows (cells must match the schema arity).
    pub fn upsert_rows(
        &self,
        key: &str,
        rows: Vec<Vec<String>>,
        opts: &PutOptions,
    ) -> DbResult<CommitResult> {
        let schema = self.schema(key, &VersionSpec::branch(&opts.branch))?;
        let mut edits = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != schema.arity() {
                return Err(DbError::InvalidInput(format!(
                    "row arity {} != schema arity {}",
                    row.len(),
                    schema.arity()
                )));
            }
            let row_key = row[schema.key_column].clone();
            if row_key.is_empty() || row_key.starts_with('\0') {
                return Err(DbError::InvalidInput("empty/reserved primary key".into()));
            }
            edits.push(MapEdit::put(Bytes::from(row_key), encode_row(&row)));
        }
        self.db.put_map_edits(key, edits, opts)
    }

    /// Update one cell of one row.
    pub fn update_cell(
        &self,
        key: &str,
        row_key: &str,
        column: &str,
        new_value: &str,
        opts: &PutOptions,
    ) -> DbResult<CommitResult> {
        let schema = self.schema(key, &VersionSpec::branch(&opts.branch))?;
        let col = schema
            .column_index(column)
            .ok_or_else(|| DbError::InvalidInput(format!("no column {column:?}")))?;
        if col == schema.key_column {
            return Err(DbError::InvalidInput(
                "cannot update the primary-key column in place".into(),
            ));
        }
        let mut row = self
            .row(key, &VersionSpec::branch(&opts.branch), row_key)?
            .ok_or_else(|| DbError::InvalidInput(format!("no row {row_key:?}")))?;
        row[col] = new_value.to_string();
        self.upsert_rows(key, vec![row], opts)
    }

    /// Delete rows by primary key.
    pub fn delete_rows(
        &self,
        key: &str,
        row_keys: &[&str],
        opts: &PutOptions,
    ) -> DbResult<CommitResult> {
        let edits = row_keys
            .iter()
            .map(|rk| MapEdit::delete(Bytes::from(rk.to_string())))
            .collect();
        self.db.put_map_edits(key, edits, opts)
    }

    /// Export a dataset version as CSV text (header + rows in key order).
    pub fn export_csv(&self, key: &str, spec: &VersionSpec) -> DbResult<String> {
        let schema = self.schema(key, spec)?;
        let mut records = vec![schema.columns.clone()];
        records.extend(self.rows(key, spec)?);
        Ok(write_csv(&records))
    }

    /// Multi-scope differential query between two dataset versions
    /// (Fig. 5): row-level adds/removes plus cell-level changes.
    pub fn diff(&self, key: &str, from: &VersionSpec, to: &VersionSpec) -> DbResult<DatasetDiff> {
        let schema = self.schema(key, from)?;
        let value_diff = self.db.diff(key, from, to)?;
        DatasetDiff::from_value_diff(&schema, value_diff)
    }

    /// Per-column statistics of a dataset version: distinct count and
    /// min/max lexicographic values (the demo UI's `Stat`).
    pub fn column_stats(&self, key: &str, spec: &VersionSpec) -> DbResult<ColumnStats> {
        let schema = self.schema(key, spec)?;
        let rows = self.rows(key, spec)?;
        let mut out = Vec::with_capacity(schema.arity());
        for (i, name) in schema.columns.iter().enumerate() {
            let mut distinct = std::collections::HashSet::new();
            let mut min: Option<&str> = None;
            let mut max: Option<&str> = None;
            for row in &rows {
                let v = row[i].as_str();
                distinct.insert(v);
                min = Some(match min {
                    Some(m) if m <= v => m,
                    _ => v,
                });
                max = Some(match max {
                    Some(m) if m >= v => m,
                    _ => v,
                });
            }
            let range = match (min, max) {
                (Some(a), Some(b)) => Some((a.to_string(), b.to_string())),
                _ => None,
            };
            out.push((name.clone(), distinct.len() as u64, range));
        }
        Ok(out)
    }
}
