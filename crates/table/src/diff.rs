//! Multi-scope dataset diff (paper Fig. 5).
//!
//! The demo UI highlights differences "at multiple scopes, e.g., from
//! dataset to data entry": which rows were added or removed, and — for
//! rows present on both sides — exactly which cells changed.

use forkbase::{DbError, DbResult, ValueDiff};
use forkbase_postree::DiffEntry;

use crate::row::decode_row;
use crate::schema::Schema;
use crate::SCHEMA_KEY;

/// A cell-level change within a modified row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellChange {
    /// Column name.
    pub column: String,
    /// Value on the "from" side.
    pub from: String,
    /// Value on the "to" side.
    pub to: String,
}

/// A row-level change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RowChange {
    /// Row exists only on the "to" side.
    Added {
        /// Primary key.
        key: String,
        /// The new row's cells.
        row: Vec<String>,
    },
    /// Row exists only on the "from" side.
    Removed {
        /// Primary key.
        key: String,
        /// The removed row's cells.
        row: Vec<String>,
    },
    /// Row exists on both sides with different cells.
    Modified {
        /// Primary key.
        key: String,
        /// The changed cells.
        cells: Vec<CellChange>,
    },
}

impl RowChange {
    /// The primary key the change concerns.
    pub fn key(&self) -> &str {
        match self {
            RowChange::Added { key, .. }
            | RowChange::Removed { key, .. }
            | RowChange::Modified { key, .. } => key,
        }
    }
}

/// The multi-scope diff of two dataset versions.
#[derive(Clone, Debug, Default)]
pub struct DatasetDiff {
    /// Row-level changes in key order.
    pub rows: Vec<RowChange>,
    /// Whether the schema itself changed between the versions.
    pub schema_changed: bool,
}

impl DatasetDiff {
    /// Whether the versions are identical.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && !self.schema_changed
    }

    /// `(added, removed, modified)` row counts — the dataset scope.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut a = 0;
        let mut r = 0;
        let mut m = 0;
        for c in &self.rows {
            match c {
                RowChange::Added { .. } => a += 1,
                RowChange::Removed { .. } => r += 1,
                RowChange::Modified { .. } => m += 1,
            }
        }
        (a, r, m)
    }

    /// Total changed cells across modified rows — the entry scope.
    pub fn changed_cells(&self) -> usize {
        self.rows
            .iter()
            .map(|c| match c {
                RowChange::Modified { cells, .. } => cells.len(),
                _ => 0,
            })
            .sum()
    }

    /// Translate a map-level [`ValueDiff`] into dataset scopes.
    pub fn from_value_diff(schema: &Schema, diff: ValueDiff) -> DbResult<DatasetDiff> {
        let mut out = DatasetDiff::default();
        let map_diff = match diff {
            ValueDiff::Identical => return Ok(out),
            ValueDiff::Map(d) => d,
            _ => {
                return Err(DbError::TypeMismatch {
                    expected: "dataset (map value)",
                    found: "other",
                })
            }
        };
        let bad_row = || DbError::InvalidInput("corrupt row encoding in diff".into());
        for entry in map_diff.entries {
            match entry {
                DiffEntry::Added { key, value } => {
                    if key.as_ref() == SCHEMA_KEY {
                        out.schema_changed = true;
                        continue;
                    }
                    out.rows.push(RowChange::Added {
                        key: String::from_utf8_lossy(&key).into_owned(),
                        row: decode_row(&value).ok_or_else(bad_row)?,
                    });
                }
                DiffEntry::Removed { key, value } => {
                    if key.as_ref() == SCHEMA_KEY {
                        out.schema_changed = true;
                        continue;
                    }
                    out.rows.push(RowChange::Removed {
                        key: String::from_utf8_lossy(&key).into_owned(),
                        row: decode_row(&value).ok_or_else(bad_row)?,
                    });
                }
                DiffEntry::Modified { key, from, to } => {
                    if key.as_ref() == SCHEMA_KEY {
                        out.schema_changed = true;
                        continue;
                    }
                    let from_row = decode_row(&from).ok_or_else(bad_row)?;
                    let to_row = decode_row(&to).ok_or_else(bad_row)?;
                    let mut cells = Vec::new();
                    for i in 0..from_row.len().max(to_row.len()) {
                        let f = from_row.get(i).cloned().unwrap_or_default();
                        let t = to_row.get(i).cloned().unwrap_or_default();
                        if f != t {
                            cells.push(CellChange {
                                column: schema
                                    .columns
                                    .get(i)
                                    .cloned()
                                    .unwrap_or_else(|| format!("col{i}")),
                                from: f,
                                to: t,
                            });
                        }
                    }
                    out.rows.push(RowChange::Modified {
                        key: String::from_utf8_lossy(&key).into_owned(),
                        cells,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Render a compact, git-diff-like textual report (the CLI analogue of
    /// the web UI's highlighting).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let (a, r, m) = self.counts();
        let _ = writeln!(
            out,
            "dataset scope: +{a} row(s), -{r} row(s), ~{m} row(s){}",
            if self.schema_changed {
                ", schema changed"
            } else {
                ""
            }
        );
        for c in &self.rows {
            match c {
                RowChange::Added { key, row } => {
                    let _ = writeln!(out, "+ {key}: {}", row.join(","));
                }
                RowChange::Removed { key, row } => {
                    let _ = writeln!(out, "- {key}: {}", row.join(","));
                }
                RowChange::Modified { key, cells } => {
                    let _ = writeln!(out, "~ {key}:");
                    for cell in cells {
                        let _ =
                            writeln!(out, "    {}: {:?} -> {:?}", cell.column, cell.from, cell.to);
                    }
                }
            }
        }
        out
    }
}
