//! End-to-end dataset tests: the paper's demonstration scenarios
//! (§III-A dedup, §III-B differential query) as executable assertions.

use forkbase::{ForkBase, PutOptions, VersionSpec};
use forkbase_postree::{MergePolicy, TreeConfig};
use forkbase_store::{ChunkStore, MemStore};
use forkbase_table::{DatasetDiff, RowChange, TableStore};

fn db() -> ForkBase<MemStore> {
    ForkBase::with_config(MemStore::new(), TreeConfig::test_config())
}

/// Deterministic CSV generator: `rows` data rows of product-like records.
fn sample_csv(rows: usize, mutate_row: Option<usize>) -> String {
    let mut out = String::from("id,name,category,price,stock\n");
    for i in 0..rows {
        let name = if Some(i) == mutate_row {
            format!("product-{i}-MUTATED")
        } else {
            format!("product-{i}")
        };
        out.push_str(&format!(
            "{i:06},{name},cat-{},{}.{:02},{}\n",
            i % 17,
            (i * 7) % 500,
            i % 100,
            (i * 13) % 1000
        ));
    }
    out
}

#[test]
fn load_and_read_back() {
    let db = db();
    let tables = TableStore::new(&db);
    tables
        .load_csv(
            "products",
            &sample_csv(200, None),
            0,
            &PutOptions::default(),
        )
        .unwrap();

    let schema = tables
        .schema("products", &VersionSpec::branch("master"))
        .unwrap();
    assert_eq!(
        schema.columns,
        vec!["id", "name", "category", "price", "stock"]
    );
    assert_eq!(schema.key_column, 0);

    assert_eq!(
        tables
            .row_count("products", &VersionSpec::branch("master"))
            .unwrap(),
        200
    );
    let row = tables
        .row("products", &VersionSpec::branch("master"), "000042")
        .unwrap()
        .unwrap();
    assert_eq!(row[1], "product-42");
}

#[test]
fn csv_export_roundtrips() {
    let db = db();
    let tables = TableStore::new(&db);
    let csv = sample_csv(50, None);
    tables
        .load_csv("ds", &csv, 0, &PutOptions::default())
        .unwrap();
    let exported = tables
        .export_csv("ds", &VersionSpec::branch("master"))
        .unwrap();
    // Same parsed content (row order is key order == original order here).
    assert_eq!(
        forkbase_table::parse_csv(&exported).unwrap(),
        forkbase_table::parse_csv(&csv).unwrap()
    );
}

#[test]
fn fig4_single_word_difference_costs_almost_nothing() {
    // §III-A: "Loading the first dataset increases 338.54 KB to the
    // storage, but afterwards loading the second dataset only increases
    // 0.04 KB." We assert the shape: the second, one-word-different load
    // adds well under 2% of the first load's footprint.
    let db = db();
    let tables = TableStore::new(&db);

    let csv1 = sample_csv(5000, None);
    let csv2 = sample_csv(5000, Some(2500)); // single word differs

    tables
        .load_csv("dataset-1", &csv1, 0, &PutOptions::default())
        .unwrap();
    let after_first = db.store().stored_bytes();

    tables
        .load_csv("dataset-2", &csv2, 0, &PutOptions::default())
        .unwrap();
    let delta = db.store().stored_bytes() - after_first;

    assert!(
        (delta as f64) < (after_first as f64) * 0.02,
        "second load added {delta} bytes of {after_first} — expected ≲2%"
    );
}

#[test]
fn fig5_differential_query_between_branches() {
    // §III-B: diff between master and VendorX branches of Dataset-1,
    // highlighted at dataset and entry scopes.
    let db = db();
    let tables = TableStore::new(&db);
    tables
        .load_csv(
            "dataset-1",
            &sample_csv(300, None),
            0,
            &PutOptions::default(),
        )
        .unwrap();
    db.branch("dataset-1", "master", "VendorX").unwrap();

    // VendorX edits one cell, adds a row, deletes a row.
    tables
        .update_cell(
            "dataset-1",
            "000100",
            "price",
            "999.99",
            &PutOptions::on_branch("VendorX"),
        )
        .unwrap();
    tables
        .upsert_rows(
            "dataset-1",
            vec![vec![
                "999999".into(),
                "vendor-special".into(),
                "cat-x".into(),
                "1.00".into(),
                "5".into(),
            ]],
            &PutOptions::on_branch("VendorX"),
        )
        .unwrap();
    tables
        .delete_rows("dataset-1", &["000200"], &PutOptions::on_branch("VendorX"))
        .unwrap();

    let diff: DatasetDiff = tables
        .diff(
            "dataset-1",
            &VersionSpec::branch("master"),
            &VersionSpec::branch("VendorX"),
        )
        .unwrap();

    assert_eq!(diff.counts(), (1, 1, 1));
    assert_eq!(diff.changed_cells(), 1);
    assert!(!diff.schema_changed);

    // Entry scope: exactly the price cell of row 000100.
    let modified = diff
        .rows
        .iter()
        .find_map(|c| match c {
            RowChange::Modified { key, cells } if key == "000100" => Some(cells),
            _ => None,
        })
        .expect("row 000100 modified");
    assert_eq!(modified.len(), 1);
    assert_eq!(modified[0].column, "price");
    assert_eq!(modified[0].to, "999.99");

    // The rendered report mentions every scope.
    let report = diff.render();
    assert!(report.contains("+1 row(s)"));
    assert!(report.contains("price"));

    // Master unchanged through it all.
    let row = tables
        .row("dataset-1", &VersionSpec::branch("master"), "000100")
        .unwrap()
        .unwrap();
    assert_ne!(row[3], "999.99");
}

#[test]
fn branch_edit_merge_workflow() {
    let db = db();
    let tables = TableStore::new(&db);
    tables
        .load_csv("shared", &sample_csv(400, None), 0, &PutOptions::default())
        .unwrap();

    // Two collaborators branch and edit disjoint rows.
    db.branch("shared", "master", "team-a").unwrap();
    db.branch("shared", "master", "team-b").unwrap();
    tables
        .update_cell(
            "shared",
            "000010",
            "stock",
            "0",
            &PutOptions::on_branch("team-a"),
        )
        .unwrap();
    tables
        .update_cell(
            "shared",
            "000390",
            "stock",
            "77",
            &PutOptions::on_branch("team-b"),
        )
        .unwrap();

    // Merge both back into master.
    db.merge(
        "shared",
        "master",
        "team-a",
        MergePolicy::Fail,
        &PutOptions::default(),
    )
    .unwrap();
    db.merge(
        "shared",
        "master",
        "team-b",
        MergePolicy::Fail,
        &PutOptions::default(),
    )
    .unwrap();

    let a = tables
        .row("shared", &VersionSpec::branch("master"), "000010")
        .unwrap()
        .unwrap();
    let b = tables
        .row("shared", &VersionSpec::branch("master"), "000390")
        .unwrap()
        .unwrap();
    assert_eq!(a[4], "0");
    assert_eq!(b[4], "77");

    // Full history verifies (tamper evidence over the whole workflow).
    db.verify_branch("shared", "master").unwrap();
}

#[test]
fn column_stats() {
    let db = db();
    let tables = TableStore::new(&db);
    tables
        .load_csv("ds", &sample_csv(100, None), 0, &PutOptions::default())
        .unwrap();
    let stats = tables
        .column_stats("ds", &VersionSpec::branch("master"))
        .unwrap();
    assert_eq!(stats.len(), 5);
    let (name, distinct, range) = &stats[0];
    assert_eq!(name, "id");
    assert_eq!(*distinct, 100);
    assert_eq!(
        range.as_ref().map(|(a, b)| (a.as_str(), b.as_str())),
        Some(("000000", "000099"))
    );
    let (_, categories, _) = &stats[2];
    assert_eq!(*categories, 17);
}

#[test]
fn malformed_inputs_rejected() {
    let db = db();
    let tables = TableStore::new(&db);
    // No header.
    assert!(tables.load_csv("x", "", 0, &PutOptions::default()).is_err());
    // Key column out of range.
    assert!(tables
        .load_csv("x", "a,b\n1,2\n", 5, &PutOptions::default())
        .is_err());
    // Ragged row.
    assert!(tables
        .load_csv("x", "a,b\n1,2,3\n", 0, &PutOptions::default())
        .is_err());
    // Empty primary key.
    assert!(tables
        .load_csv("x", "a,b\n,2\n", 0, &PutOptions::default())
        .is_err());

    tables
        .load_csv("ok", "a,b\n1,2\n", 0, &PutOptions::default())
        .unwrap();
    // Wrong arity upsert.
    assert!(tables
        .upsert_rows("ok", vec![vec!["1".into()]], &PutOptions::default())
        .is_err());
    // Unknown column update.
    assert!(tables
        .update_cell("ok", "1", "ghost", "v", &PutOptions::default())
        .is_err());
    // Updating the key column is refused.
    assert!(tables
        .update_cell("ok", "1", "a", "v", &PutOptions::default())
        .is_err());
    // Missing row.
    assert!(tables
        .update_cell("ok", "404", "b", "v", &PutOptions::default())
        .is_err());
}

#[test]
fn identical_loads_are_fully_deduplicated() {
    let db = db();
    let tables = TableStore::new(&db);
    let csv = sample_csv(1000, None);
    tables
        .load_csv("first", &csv, 0, &PutOptions::default())
        .unwrap();
    let stored = db.store().stored_bytes();
    tables
        .load_csv("second", &csv, 0, &PutOptions::default())
        .unwrap();
    // Only the new FNode differs (key name is part of it); the entire map
    // is shared.
    let delta = db.store().stored_bytes() - stored;
    assert!(delta < 300, "identical dataset re-load cost {delta} bytes");
}

#[test]
fn dataset_history_tracks_every_commit() {
    let db = db();
    let tables = TableStore::new(&db);
    tables
        .load_csv(
            "ds",
            &sample_csv(50, None),
            0,
            &PutOptions::default().message("initial load"),
        )
        .unwrap();
    for i in 0..4 {
        tables
            .update_cell(
                "ds",
                "000001",
                "stock",
                &format!("{i}"),
                &PutOptions::default().message(format!("stock update {i}")),
            )
            .unwrap();
    }
    let history = db.history("ds", &VersionSpec::branch("master")).unwrap();
    assert_eq!(history.len(), 5);
    assert_eq!(history.last().unwrap().message, "initial load");
    // Every version is tamper-evident Base32.
    for h in &history {
        assert!(h.uid.to_base32().len() >= 52);
    }
}
