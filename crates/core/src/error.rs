//! Unified error type for the ForkBase database layer.

use forkbase_crypto::Hash;
use forkbase_postree::node::NodeError;
use forkbase_postree::verify::VerifyError;
use forkbase_store::StoreError;
use forkbase_types::ValueDecodeError;

/// Result alias for database operations.
pub type DbResult<T> = Result<T, DbError>;

/// Errors raised by ForkBase operations.
#[derive(Debug)]
pub enum DbError {
    /// Chunk store failure.
    Store(StoreError),
    /// POS-Tree failure.
    Node(NodeError),
    /// Value codec failure.
    Value(ValueDecodeError),
    /// The requested key does not exist.
    NoSuchKey(String),
    /// The requested branch does not exist for this key.
    NoSuchBranch {
        /// The key queried.
        key: String,
        /// The missing branch.
        branch: String,
    },
    /// The requested version does not exist.
    NoSuchVersion(Hash),
    /// A branch with this name already exists.
    BranchExists {
        /// The key.
        key: String,
        /// The already-present branch.
        branch: String,
    },
    /// Merge found conflicting edits and the policy was `Fail`.
    MergeConflicts(Vec<forkbase_postree::merge::MergeConflict>),
    /// The two versions have no common ancestor (distinct histories).
    NoCommonAncestor(Hash, Hash),
    /// Merge/diff requires compatible value types.
    TypeMismatch {
        /// What the operation expected.
        expected: &'static str,
        /// What it found.
        found: &'static str,
    },
    /// Tamper evidence: content failed validation against its uid.
    TamperDetected(String),
    /// A cluster RPC targeted a servelet whose worker is dead or shut
    /// down. Callers can retry after a topology change; the stable
    /// [`DbError::code`] is `servelet_unavailable`.
    ServeletUnavailable {
        /// Stable id of the unreachable servelet.
        servelet: u64,
    },
    /// A cluster RPC was delivered (or may have been delivered) but no
    /// reply arrived within the per-call deadline. The outcome is
    /// **ambiguous**: the servelet may still apply the request. Idempotent
    /// verbs are safe to retry; writes are not auto-retried (see the
    /// cluster retry policy). Stable [`DbError::code`]:
    /// `servelet_timeout`.
    ServeletTimeout {
        /// Stable id of the servelet that missed the deadline.
        servelet: u64,
    },
    /// A fork-sandbox operation named a fork whose lease has expired (or
    /// that never existed — the reaper may already have erased it, so the
    /// two cases are indistinguishable by design). Stable
    /// [`DbError::code`]: `fork_expired`.
    ForkExpired {
        /// The fork id the caller presented.
        fork: String,
    },
    /// The caller exceeded its per-peer request budget and the request
    /// was shed. `retry_after_ms` is the earliest the bucket will hold a
    /// whole token again. Stable [`DbError::code`]: `rate_limited`.
    RateLimited {
        /// Suggested wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The caller lacks permission for the operation.
    PermissionDenied(String),
    /// Malformed input (bad key/branch names, etc.).
    InvalidInput(String),
    /// An error that crossed the wire from a remote servelet without a
    /// richer local form (store/tree/value internals, merge conflict
    /// lists). `code` is the *original* stable [`DbError::code`] as
    /// reported by the remote side, so clients branching on codes see
    /// the same value whether the servelet is in-process or remote.
    Remote {
        /// The remote side's stable error code.
        code: String,
        /// The remote side's rendered message.
        message: String,
    },
}

impl DbError {
    /// A stable, machine-readable error code (snake_case). The REST layer
    /// returns this alongside the human message so clients can branch on
    /// error kind without parsing prose.
    pub fn code(&self) -> &'static str {
        match self {
            DbError::Store(_) => "store_error",
            DbError::Node(_) => "tree_error",
            DbError::Value(_) => "value_error",
            DbError::NoSuchKey(_) => "no_such_key",
            DbError::NoSuchBranch { .. } => "no_such_branch",
            DbError::NoSuchVersion(_) => "no_such_version",
            DbError::BranchExists { .. } => "branch_exists",
            DbError::MergeConflicts(_) => "merge_conflicts",
            DbError::NoCommonAncestor(_, _) => "no_common_ancestor",
            DbError::TypeMismatch { .. } => "type_mismatch",
            DbError::TamperDetected(_) => "tamper_detected",
            DbError::ServeletUnavailable { .. } => "servelet_unavailable",
            DbError::ServeletTimeout { .. } => "servelet_timeout",
            DbError::ForkExpired { .. } => "fork_expired",
            DbError::RateLimited { .. } => "rate_limited",
            DbError::PermissionDenied(_) => "permission_denied",
            DbError::InvalidInput(_) => "invalid_input",
            // Remote errors keep the code the remote side computed. The
            // match interns the codes a servelet can actually produce so
            // the return type stays `&'static str`; an unrecognized code
            // (a newer remote) degrades to the generic bucket.
            DbError::Remote { code, .. } => match code.as_str() {
                "store_error" => "store_error",
                "tree_error" => "tree_error",
                "value_error" => "value_error",
                "merge_conflicts" => "merge_conflicts",
                "type_mismatch" => "type_mismatch",
                "fork_expired" => "fork_expired",
                "rate_limited" => "rate_limited",
                _ => "remote_error",
            },
        }
    }
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Store(e) => write!(f, "store error: {e}"),
            DbError::Node(e) => write!(f, "tree error: {e}"),
            DbError::Value(e) => write!(f, "value error: {e}"),
            DbError::NoSuchKey(k) => write!(f, "no such key: {k:?}"),
            DbError::NoSuchBranch { key, branch } => {
                write!(f, "key {key:?} has no branch {branch:?}")
            }
            DbError::NoSuchVersion(h) => write!(f, "no such version: {h}"),
            DbError::BranchExists { key, branch } => {
                write!(f, "branch {branch:?} already exists for key {key:?}")
            }
            DbError::MergeConflicts(c) => write!(f, "merge found {} conflict(s)", c.len()),
            DbError::NoCommonAncestor(a, b) => {
                write!(f, "versions {a} and {b} share no common ancestor")
            }
            DbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DbError::TamperDetected(m) => write!(f, "TAMPER DETECTED: {m}"),
            DbError::ServeletUnavailable { servelet } => {
                write!(f, "servelet {servelet} is unavailable (dead or shut down)")
            }
            DbError::ServeletTimeout { servelet } => {
                write!(
                    f,
                    "servelet {servelet} missed the RPC deadline (outcome ambiguous)"
                )
            }
            DbError::ForkExpired { fork } => {
                write!(f, "fork {fork:?} has expired (or never existed)")
            }
            DbError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited; retry after {retry_after_ms} ms")
            }
            DbError::PermissionDenied(m) => write!(f, "permission denied: {m}"),
            DbError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            DbError::Remote { code, message } => {
                write!(f, "remote servelet error ({code}): {message}")
            }
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Store(e) => Some(e),
            DbError::Node(e) => Some(e),
            DbError::Value(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for DbError {
    fn from(e: StoreError) -> Self {
        DbError::Store(e)
    }
}

impl From<NodeError> for DbError {
    fn from(e: NodeError) -> Self {
        DbError::Node(e)
    }
}

impl From<ValueDecodeError> for DbError {
    fn from(e: ValueDecodeError) -> Self {
        DbError::Value(e)
    }
}

impl From<VerifyError> for DbError {
    fn from(e: VerifyError) -> Self {
        DbError::TamperDetected(e.to_string())
    }
}

impl From<forkbase_postree::merge::MergeError> for DbError {
    fn from(e: forkbase_postree::merge::MergeError) -> Self {
        match e {
            forkbase_postree::merge::MergeError::Node(n) => DbError::Node(n),
            forkbase_postree::merge::MergeError::Conflicts(c) => DbError::MergeConflicts(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_crypto::sha256;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<DbError> = vec![
            DbError::NoSuchKey("k".into()),
            DbError::NoSuchBranch {
                key: "k".into(),
                branch: "b".into(),
            },
            DbError::NoSuchVersion(sha256(b"v")),
            DbError::BranchExists {
                key: "k".into(),
                branch: "b".into(),
            },
            DbError::NoCommonAncestor(sha256(b"a"), sha256(b"b")),
            DbError::TypeMismatch {
                expected: "map",
                found: "blob",
            },
            DbError::TamperDetected("bad hash".into()),
            DbError::ServeletUnavailable { servelet: 3 },
            DbError::ServeletTimeout { servelet: 3 },
            DbError::ForkExpired { fork: "f1".into() },
            DbError::RateLimited { retry_after_ms: 50 },
            DbError::PermissionDenied("nope".into()),
            DbError::InvalidInput("bad".into()),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            let code = e.code();
            assert!(
                !code.is_empty() && code.chars().all(|c| c == '_' || c.is_ascii_lowercase()),
                "codes are stable snake_case: {code}"
            );
        }
    }

    #[test]
    fn tamper_message_is_loud() {
        let e = DbError::TamperDetected("uid mismatch".into());
        assert!(e.to_string().contains("TAMPER"));
    }
}
