//! Compatibility alias for the pre-PR4 module layout.
//!
//! The database engine and its verb set now live in [`crate::api`], split
//! into `api::{verbs, snapshot, cursor_ext, batch}`. Every name that used
//! to live here is re-exported so `forkbase::db::…` paths keep working.

pub use crate::api::*;
