//! Wire-portable diff summaries for fork-vs-base comparison.
//!
//! [`ValueDiff`](crate::api::ValueDiff) embeds a full
//! [`MapDiff`](forkbase_postree::MapDiff) (every changed entry plus work
//! counters), which is exactly right for a local CLI but too heavy and
//! too internal to ship across the cluster wire. [`DiffSummary`] is the
//! bounded, self-contained projection: exact counts always, plus at most
//! [`MAX_DIFF_SAMPLES`] sampled entry deltas. It is what
//! `Request::DiffSpecs` returns (wire version 3) and what the fork REST
//! routes serialize.

use bytes::Bytes;
use forkbase_postree::DiffEntry;
use forkbase_types::Value;

use crate::api::ValueDiff;
use crate::fnode::Uid;

/// Cap on sampled map-entry deltas carried by a [`DiffSummary::Map`].
/// Counts stay exact past the cap; only the sample list truncates.
pub const MAX_DIFF_SAMPLES: usize = 64;

/// One sampled map-entry delta. `from: None` means the entry was added
/// in the "to" version; `to: None` means it was removed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapEntryDelta {
    /// The map key.
    pub key: Bytes,
    /// Value on the "from" side, absent for additions.
    pub from: Option<Bytes>,
    /// Value on the "to" side, absent for removals.
    pub to: Option<Bytes>,
}

/// A bounded summary of the difference between two versions of a key.
#[derive(Clone, Debug, PartialEq)]
pub enum DiffSummary {
    /// The versions hold identical values.
    Identical,
    /// Primitive (or type-changed) values, shown whole.
    Primitive {
        /// Value on the "from" side.
        from: Value,
        /// Value on the "to" side.
        to: Value,
    },
    /// Entry-level map/set differences: exact counts plus a bounded
    /// sample of the actual deltas.
    Map {
        /// Entries present only in "to".
        added: u64,
        /// Entries present only in "from".
        removed: u64,
        /// Entries present in both with different values.
        modified: u64,
        /// Up to [`MAX_DIFF_SAMPLES`] concrete deltas, in key order.
        entries: Vec<MapEntryDelta>,
    },
    /// Chunk-level similarity summary of blob/list values.
    Chunked {
        /// Byte (blob) or element (list) count on the "from" side.
        from_len: u64,
        /// Byte or element count on the "to" side.
        to_len: u64,
        /// Chunks of "from" also present in "to".
        shared_chunks: u64,
        /// Bytes of "from" shared with "to".
        shared_bytes: u64,
        /// Total chunks on the "from" side.
        from_chunks: u64,
        /// Total chunks on the "to" side.
        to_chunks: u64,
    },
}

impl DiffSummary {
    /// Whether the two versions were identical.
    pub fn is_identical(&self) -> bool {
        matches!(self, DiffSummary::Identical)
    }

    /// Project a full [`ValueDiff`] down to its wire-portable summary.
    /// Map counts are exact; entry samples truncate at
    /// [`MAX_DIFF_SAMPLES`].
    pub fn from_value_diff(diff: &ValueDiff) -> DiffSummary {
        match diff {
            ValueDiff::Identical => DiffSummary::Identical,
            ValueDiff::Primitive { from, to } => DiffSummary::Primitive {
                from: from.clone(),
                to: to.clone(),
            },
            ValueDiff::Map(m) => {
                let (a, r, md) = m.counts();
                let entries = m
                    .entries
                    .iter()
                    .take(MAX_DIFF_SAMPLES)
                    .map(|e| match e {
                        DiffEntry::Added { key, value } => MapEntryDelta {
                            key: key.clone(),
                            from: None,
                            to: Some(value.clone()),
                        },
                        DiffEntry::Removed { key, value } => MapEntryDelta {
                            key: key.clone(),
                            from: Some(value.clone()),
                            to: None,
                        },
                        DiffEntry::Modified { key, from, to } => MapEntryDelta {
                            key: key.clone(),
                            from: Some(from.clone()),
                            to: Some(to.clone()),
                        },
                    })
                    .collect();
                DiffSummary::Map {
                    added: a as u64,
                    removed: r as u64,
                    modified: md as u64,
                    entries,
                }
            }
            ValueDiff::Chunked {
                from_len,
                to_len,
                shared_chunks,
                shared_bytes,
                from_chunks,
                to_chunks,
            } => DiffSummary::Chunked {
                from_len: *from_len,
                to_len: *to_len,
                shared_chunks: *shared_chunks,
                shared_bytes: *shared_bytes,
                from_chunks: *from_chunks,
                to_chunks: *to_chunks,
            },
        }
    }

    /// Total changed-entry count for map diffs; `None` for other kinds.
    pub fn map_changes(&self) -> Option<u64> {
        match self {
            DiffSummary::Map {
                added,
                removed,
                modified,
                ..
            } => Some(added + removed + modified),
            _ => None,
        }
    }
}

/// Diff of one fork-touched key against its recorded base version.
#[derive(Clone, Debug)]
pub struct KeyDiff {
    /// The database key.
    pub key: String,
    /// The version the key resolved to when the fork first wrote it;
    /// `None` if the key did not exist in the base (created by the fork).
    pub base: Option<Uid>,
    /// Current head of the fork's branch for this key.
    pub head: Uid,
    /// Value-level summary; `None` when the key was created by the fork
    /// (there is no base version to diff against).
    pub summary: Option<DiffSummary>,
}

/// Full diff-vs-base report for a fork: one [`KeyDiff`] per touched key,
/// in key order.
#[derive(Clone, Debug)]
pub struct ForkDiff {
    /// The fork id.
    pub fork: String,
    /// Per-key diffs, sorted by key.
    pub keys: Vec<KeyDiff>,
}

impl ForkDiff {
    /// Number of touched keys whose value actually changed (created keys
    /// count as changed; identical round-trips do not).
    pub fn changed_keys(&self) -> usize {
        self.keys
            .iter()
            .filter(|k| !matches!(&k.summary, Some(s) if s.is_identical()))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_postree::{DiffStats, MapDiff};

    fn map_diff(entries: Vec<DiffEntry>) -> ValueDiff {
        ValueDiff::Map(MapDiff {
            entries,
            stats: DiffStats::default(),
        })
    }

    #[test]
    fn summary_preserves_exact_counts_past_sample_cap() {
        let entries: Vec<DiffEntry> = (0..(MAX_DIFF_SAMPLES + 40))
            .map(|i| DiffEntry::Added {
                key: Bytes::from(format!("k{i:05}")),
                value: Bytes::from_static(b"v"),
            })
            .collect();
        let s = DiffSummary::from_value_diff(&map_diff(entries));
        match s {
            DiffSummary::Map { added, entries, .. } => {
                assert_eq!(added as usize, MAX_DIFF_SAMPLES + 40);
                assert_eq!(entries.len(), MAX_DIFF_SAMPLES);
            }
            other => panic!("expected map summary, got {other:?}"),
        }
    }

    #[test]
    fn delta_encodes_add_remove_modify_as_option_pairs() {
        let s = DiffSummary::from_value_diff(&map_diff(vec![
            DiffEntry::Added {
                key: Bytes::from_static(b"a"),
                value: Bytes::from_static(b"1"),
            },
            DiffEntry::Removed {
                key: Bytes::from_static(b"b"),
                value: Bytes::from_static(b"2"),
            },
            DiffEntry::Modified {
                key: Bytes::from_static(b"c"),
                from: Bytes::from_static(b"3"),
                to: Bytes::from_static(b"4"),
            },
        ]));
        let DiffSummary::Map { entries, .. } = &s else {
            panic!("expected map summary");
        };
        assert_eq!(s.map_changes(), Some(3));
        assert!(entries[0].from.is_none() && entries[0].to.is_some());
        assert!(entries[1].from.is_some() && entries[1].to.is_none());
        assert!(entries[2].from.is_some() && entries[2].to.is_some());
    }
}
