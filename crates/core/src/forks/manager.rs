//! The fork registry and lifecycle engine: [`ForkService`] plus the
//! [`ForkBackend`] abstraction that lets one service drive either a
//! single-node [`ForkBase`] or a sharded
//! [`Cluster`](crate::cluster::Cluster).
//!
//! The service owns only *registry* state (which forks exist, their
//! leases, which keys each fork has touched and from which base
//! version). All data lives in the backend as ordinary branches named
//! `fork/<id>`, so every existing mechanism — striped head locks, the
//! wire protocol, replication, GC — applies to fork data unchanged.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bytes::Bytes;
use forkbase_store::{ChunkStore, SweepStore};
use forkbase_types::Value;

use super::diff::{DiffSummary, ForkDiff, KeyDiff};
use super::lease::{Lease, LeaseClock};
use crate::api::{CommitResult, ForkBase, GetResult, PutOptions, VersionSpec};
use crate::cluster::{Cluster, MapPage};
use crate::error::{DbError, DbResult};
use crate::fnode::Uid;

/// Default fork lease, in seconds, when the caller names no TTL.
pub const DEFAULT_FORK_TTL_SECS: u64 = 900;

/// Prefix of the namespaced branches a fork writes through. A fork with
/// id `f1` owns branch `fork/f1` on every key it touches.
pub const FORK_BRANCH_PREFIX: &str = "fork/";

/// First line of the persisted `FORKS` registry record.
pub const FORKS_MAGIC: &str = "forkbase-forks-v1";

/// Longest accepted fork id.
const MAX_FORK_ID_LEN: usize = 64;

/// The storage operations a fork needs from its host. Implemented by
/// the single-node [`ForkBase`] (direct calls) and by
/// [`Cluster`](crate::cluster::Cluster) (each call routes to the owning
/// servelet over the wire protocol, so fork ops inherit the cluster's
/// retry policy, deadlines, and persist-before-ack semantics).
pub trait ForkBackend {
    /// Resolve a spec to a concrete version uid.
    fn resolve_spec(&self, key: &str, spec: &VersionSpec) -> DbResult<Uid>;
    /// Read the value a spec resolves to.
    fn get_at(&self, key: &str, spec: &VersionSpec) -> DbResult<GetResult>;
    /// Commit a value on `opts.branch`.
    fn put_at(&self, key: &str, value: Value, opts: &PutOptions) -> DbResult<CommitResult>;
    /// Create `new_branch` pointing at an existing version.
    fn branch_from_version(&self, key: &str, uid: &Uid, new_branch: &str) -> DbResult<()>;
    /// Delete a branch head (versions stay until GC).
    fn delete_branch(&self, key: &str, branch: &str) -> DbResult<()>;
    /// Summarized diff between two specs of one key.
    fn diff_specs(&self, key: &str, from: &VersionSpec, to: &VersionSpec) -> DbResult<DiffSummary>;
    /// One page of map entries at a spec, `[start, end)`, at most
    /// `limit` entries.
    fn map_range_at(
        &self,
        key: &str,
        spec: &VersionSpec,
        start: Option<Bytes>,
        end: Option<Bytes>,
        limit: u64,
    ) -> DbResult<MapPage>;
}

impl<S: ChunkStore> ForkBackend for ForkBase<S> {
    fn resolve_spec(&self, key: &str, spec: &VersionSpec) -> DbResult<Uid> {
        self.resolve(key, spec)
    }

    fn get_at(&self, key: &str, spec: &VersionSpec) -> DbResult<GetResult> {
        let uid = self.resolve(key, spec)?;
        self.get_version(&uid)
    }

    fn put_at(&self, key: &str, value: Value, opts: &PutOptions) -> DbResult<CommitResult> {
        self.put(key, value, opts)
    }

    fn branch_from_version(&self, key: &str, uid: &Uid, new_branch: &str) -> DbResult<()> {
        ForkBase::branch_from_version(self, key, uid, new_branch)
    }

    fn delete_branch(&self, key: &str, branch: &str) -> DbResult<()> {
        ForkBase::delete_branch(self, key, branch)
    }

    fn diff_specs(&self, key: &str, from: &VersionSpec, to: &VersionSpec) -> DbResult<DiffSummary> {
        Ok(DiffSummary::from_value_diff(&self.diff(key, from, to)?))
    }

    fn map_range_at(
        &self,
        key: &str,
        spec: &VersionSpec,
        start: Option<Bytes>,
        end: Option<Bytes>,
        limit: u64,
    ) -> DbResult<MapPage> {
        use std::ops::Bound;
        let snap = self.snapshot(key, spec)?;
        let start_bound = match &start {
            Some(s) => Bound::Included(s.as_ref()),
            None => Bound::Unbounded,
        };
        let end_bound = match &end {
            Some(e) => Bound::Excluded(e.as_ref()),
            None => Bound::Unbounded,
        };
        let limit = usize::try_from(limit).unwrap_or(usize::MAX);
        let mut range = snap.map_range::<&[u8], _>((start_bound, end_bound))?;
        let mut entries = Vec::new();
        let mut truncated = false;
        for item in &mut range {
            let (k, v) = item?;
            if entries.len() == limit {
                truncated = true;
                break;
            }
            entries.push((k, v));
        }
        Ok(MapPage {
            entries,
            truncated,
            version: snap.uid(),
        })
    }
}

impl<S: SweepStore + Send + 'static> ForkBackend for Cluster<S> {
    fn resolve_spec(&self, key: &str, spec: &VersionSpec) -> DbResult<Uid> {
        // One routed RPC; `GetAt` already returns the resolved uid.
        Cluster::get_at(self, key, spec).map(|g| g.uid)
    }

    fn get_at(&self, key: &str, spec: &VersionSpec) -> DbResult<GetResult> {
        Cluster::get_at(self, key, spec)
    }

    fn put_at(&self, key: &str, value: Value, opts: &PutOptions) -> DbResult<CommitResult> {
        Cluster::put(self, key, value, opts.clone())
    }

    fn branch_from_version(&self, key: &str, uid: &Uid, new_branch: &str) -> DbResult<()> {
        Cluster::branch_from_version(self, key, uid, new_branch)
    }

    fn delete_branch(&self, key: &str, branch: &str) -> DbResult<()> {
        Cluster::delete_branch(self, key, branch)
    }

    fn diff_specs(&self, key: &str, from: &VersionSpec, to: &VersionSpec) -> DbResult<DiffSummary> {
        Cluster::diff_specs(self, key, from, to)
    }

    fn map_range_at(
        &self,
        key: &str,
        spec: &VersionSpec,
        start: Option<Bytes>,
        end: Option<Bytes>,
        limit: u64,
    ) -> DbResult<MapPage> {
        Cluster::map_range_at(self, key, spec, start, end, limit)
    }
}

/// Registry entry for one fork.
#[derive(Clone, Debug)]
pub struct ForkInfo {
    /// The fork id (also the suffix of its branch namespace).
    pub id: String,
    /// The spec the fork was created from. Reads of untouched keys pass
    /// through to this spec live.
    pub base: VersionSpec,
    /// The fork's lease window.
    pub lease: Lease,
    /// Total writes committed through the fork.
    pub writes: u64,
    /// Keys the fork has written, each with the version the key resolved
    /// to when the fork first wrote it (`None` when the key did not
    /// exist in the base).
    pub touched: BTreeMap<String, Option<Uid>>,
}

impl ForkInfo {
    /// The namespaced branch this fork writes through on every touched
    /// key.
    pub fn branch(&self) -> String {
        format!("{FORK_BRANCH_PREFIX}{}", self.id)
    }
}

/// What one reaper pass accomplished.
#[derive(Clone, Debug, Default)]
pub struct ReapReport {
    /// Ids of forks fully reaped (branches dropped, registry entry
    /// removed).
    pub reaped: Vec<String>,
    /// Branches actually deleted across all reaped forks.
    pub branches_dropped: u64,
    /// Expired forks left in the registry because a branch deletion
    /// failed transiently (e.g. a servelet was unreachable); the next
    /// pass retries them.
    pub failed: u64,
}

/// The fork-sandbox service: a lease-governed registry of writable
/// forks layered over any [`ForkBackend`].
///
/// The service is deliberately backend-stateless — every operation
/// takes the backend as an argument — so one `ForkService` can be
/// shared by a gateway that owns its `ForkBase`/`Cluster` behind an
/// `Arc` without generic infection of the service type itself.
#[derive(Debug, Default)]
pub struct ForkService {
    forks: Mutex<BTreeMap<String, ForkInfo>>,
    clock: LeaseClock,
    next_seq: AtomicU64,
    default_ttl_secs: u64,
}

impl ForkService {
    /// A service with the default lease TTL
    /// ([`DEFAULT_FORK_TTL_SECS`]).
    pub fn new() -> Self {
        Self::with_default_ttl(DEFAULT_FORK_TTL_SECS)
    }

    /// A service whose unspecified-TTL forks lease for `ttl_secs`.
    pub fn with_default_ttl(ttl_secs: u64) -> Self {
        ForkService {
            forks: Mutex::new(BTreeMap::new()),
            clock: LeaseClock::new(),
            next_seq: AtomicU64::new(1),
            default_ttl_secs: ttl_secs,
        }
    }

    /// The service clock. Tests fast-forward it with
    /// [`LeaseClock::advance`] to expire leases deterministically.
    pub fn clock(&self) -> &LeaseClock {
        &self.clock
    }

    /// Number of registered forks (live and expired-but-unreaped).
    pub fn len(&self) -> usize {
        self.forks.lock().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of forks whose lease is still live right now.
    pub fn live_count(&self) -> usize {
        let now = self.clock.now();
        self.forks
            .lock()
            .unwrap()
            .values()
            .filter(|i| i.lease.live_at(now))
            .count()
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Create a fork of `base`. O(1): no backend work happens until the
    /// first write. `id: None` generates a fresh `f<n>` id;
    /// `ttl_secs: None` uses the service default.
    pub fn create(
        &self,
        base: VersionSpec,
        ttl_secs: Option<u64>,
        id: Option<String>,
    ) -> DbResult<ForkInfo> {
        if let Some(id) = &id {
            validate_fork_id(id)?;
        }
        let ttl = ttl_secs.unwrap_or(self.default_ttl_secs);
        let now = self.clock.now();
        let mut forks = self.forks.lock().unwrap();
        let id = match id {
            Some(id) => {
                if forks.contains_key(&id) {
                    return Err(DbError::InvalidInput(format!(
                        "fork id {id:?} already in use"
                    )));
                }
                id
            }
            None => loop {
                let candidate = format!("f{}", self.next_seq.fetch_add(1, Ordering::Relaxed));
                if !forks.contains_key(&candidate) {
                    break candidate;
                }
            },
        };
        let info = ForkInfo {
            id: id.clone(),
            base,
            lease: Lease {
                created_at: now,
                expires_at: now.saturating_add(ttl),
            },
            writes: 0,
            touched: BTreeMap::new(),
        };
        forks.insert(id, info.clone());
        Ok(info)
    }

    /// Snapshot of every registry entry, in id order (includes expired
    /// forks the reaper has not collected yet).
    pub fn list(&self) -> Vec<ForkInfo> {
        self.forks.lock().unwrap().values().cloned().collect()
    }

    /// Look up a live fork. Expired or unknown ids both yield
    /// [`DbError::ForkExpired`] — after reaping the two states are
    /// indistinguishable, so the API never distinguishes them.
    pub fn info(&self, id: &str) -> DbResult<ForkInfo> {
        let forks = self.forks.lock().unwrap();
        self.live(&forks, id).cloned()
    }

    /// Renew a live fork's lease for `ttl_secs` (default TTL when
    /// `None`) from *now*. Expired forks cannot be resurrected.
    pub fn touch(&self, id: &str, ttl_secs: Option<u64>) -> DbResult<ForkInfo> {
        let ttl = ttl_secs.unwrap_or(self.default_ttl_secs);
        let now = self.clock.now();
        let mut forks = self.forks.lock().unwrap();
        self.live(&forks, id)?;
        let info = forks.get_mut(id).expect("liveness check found it");
        info.lease.expires_at = now.saturating_add(ttl);
        Ok(info.clone())
    }

    /// Explicitly drop a fork: delete its branches and remove the
    /// registry entry. Unlike the data verbs this also accepts a fork
    /// whose lease already expired (DELETE beats the reaper). Returns
    /// the number of branches deleted.
    pub fn drop_fork<B: ForkBackend + ?Sized>(&self, backend: &B, id: &str) -> DbResult<u64> {
        let (branch, keys) = {
            let forks = self.forks.lock().unwrap();
            let info = forks.get(id).ok_or_else(|| DbError::ForkExpired {
                fork: id.to_string(),
            })?;
            (
                info.branch(),
                info.touched.keys().cloned().collect::<Vec<_>>(),
            )
        };
        let dropped = drop_branches(backend, &branch, &keys)?;
        self.forks.lock().unwrap().remove(id);
        Ok(dropped)
    }

    /// One reaper pass: drop the branches of every expired fork and
    /// remove it from the registry. Infallible by design — per-fork
    /// failures are counted and retried on the next pass, so a flaky
    /// servelet cannot wedge the reaper. Call this from the supervisor
    /// tick or any periodic loop.
    pub fn reap_expired<B: ForkBackend + ?Sized>(&self, backend: &B) -> ReapReport {
        let now = self.clock.now();
        let expired: Vec<(String, String, Vec<String>)> = {
            let forks = self.forks.lock().unwrap();
            forks
                .values()
                .filter(|i| !i.lease.live_at(now))
                .map(|i| {
                    (
                        i.id.clone(),
                        i.branch(),
                        i.touched.keys().cloned().collect(),
                    )
                })
                .collect()
        };
        let mut report = ReapReport::default();
        for (id, branch, keys) in expired {
            match drop_branches(backend, &branch, &keys) {
                Ok(n) => {
                    self.forks.lock().unwrap().remove(&id);
                    report.branches_dropped += n;
                    report.reaped.push(id);
                }
                Err(_) => report.failed += 1,
            }
        }
        report
    }

    // ------------------------------------------------------------------
    // Data verbs
    // ------------------------------------------------------------------

    /// Read `key` as the fork sees it: its own branch if the fork has
    /// written the key, otherwise a live pass-through to the base spec.
    pub fn get<B: ForkBackend + ?Sized>(
        &self,
        backend: &B,
        id: &str,
        key: &str,
    ) -> DbResult<GetResult> {
        let spec = self.read_spec(id, key)?;
        backend.get_at(key, &spec)
    }

    /// One page of map entries of `key` as the fork sees it.
    pub fn range<B: ForkBackend + ?Sized>(
        &self,
        backend: &B,
        id: &str,
        key: &str,
        start: Option<Bytes>,
        end: Option<Bytes>,
        limit: u64,
    ) -> DbResult<MapPage> {
        let spec = self.read_spec(id, key)?;
        backend.map_range_at(key, &spec, start, end, limit)
    }

    /// Commit `value` to `key` inside the fork. The first write to a
    /// key lazily forks it: the base spec is resolved once, a
    /// `fork/<id>` branch is created at that version, and the base uid
    /// is recorded so diff-vs-base stays exact even if the base branch
    /// moves on afterwards. `opts.branch` is ignored — the service owns
    /// branch placement.
    pub fn put<B: ForkBackend + ?Sized>(
        &self,
        backend: &B,
        id: &str,
        key: &str,
        value: Value,
        opts: &PutOptions,
    ) -> DbResult<CommitResult> {
        let (branch, base_spec, needs_fork) = {
            let forks = self.forks.lock().unwrap();
            let info = self.live(&forks, id)?;
            (
                info.branch(),
                info.base.clone(),
                !info.touched.contains_key(key),
            )
        };
        if needs_fork {
            // Backend calls happen outside the registry lock so forks
            // write concurrently; a racing first-writer of the same
            // (fork, key) surfaces as a benign BranchExists.
            let base = match backend.resolve_spec(key, &base_spec) {
                Ok(uid) => match backend.branch_from_version(key, &uid, &branch) {
                    Ok(()) | Err(DbError::BranchExists { .. }) => Some(uid),
                    Err(e) => return Err(e),
                },
                // Key absent in the base: the put below creates the
                // fork branch as the key's first branch.
                Err(DbError::NoSuchKey(_)) | Err(DbError::NoSuchBranch { .. }) => None,
                Err(e) => return Err(e),
            };
            let mut forks = self.forks.lock().unwrap();
            if let Some(info) = forks.get_mut(id) {
                info.touched.entry(key.to_string()).or_insert(base);
            }
        }
        let opts = PutOptions {
            branch: branch.clone(),
            author: opts.author.clone(),
            message: opts.message.clone(),
        };
        let res = backend.put_at(key, value, &opts)?;
        let mut forks = self.forks.lock().unwrap();
        match forks.get_mut(id) {
            Some(info) => {
                info.writes += 1;
                info.touched.entry(key.to_string()).or_insert(None);
                Ok(res)
            }
            None => {
                // The reaper (or an explicit drop) won the race and
                // already erased the fork; un-create the branch the put
                // just re-made so no orphan survives.
                drop(forks);
                let _ = backend.delete_branch(key, &branch);
                Err(DbError::ForkExpired {
                    fork: id.to_string(),
                })
            }
        }
    }

    /// Full diff-vs-base: one [`KeyDiff`] per touched key. Keys the
    /// fork created (no base version) carry no value summary.
    pub fn diff<B: ForkBackend + ?Sized>(&self, backend: &B, id: &str) -> DbResult<ForkDiff> {
        let (branch, touched) = {
            let forks = self.forks.lock().unwrap();
            let info = self.live(&forks, id)?;
            (info.branch(), info.touched.clone())
        };
        let fork_spec = VersionSpec::Branch(branch);
        let mut keys = Vec::with_capacity(touched.len());
        for (key, base) in touched {
            let head = backend.resolve_spec(&key, &fork_spec)?;
            let summary = match &base {
                Some(uid) => {
                    Some(backend.diff_specs(&key, &VersionSpec::Version(*uid), &fork_spec)?)
                }
                None => None,
            };
            keys.push(KeyDiff {
                key,
                base,
                head,
                summary,
            });
        }
        Ok(ForkDiff {
            fork: id.to_string(),
            keys,
        })
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Serialize the registry as the `FORKS` record: a magic line, then
    /// one `fork` line per fork and one `key` line per touched key.
    /// Expiry is stored as absolute unix seconds so a later reopen
    /// resumes leases exactly.
    pub fn dump(&self) -> String {
        let forks = self.forks.lock().unwrap();
        let mut out = String::from(FORKS_MAGIC);
        out.push('\n');
        for info in forks.values() {
            let (kind, val) = match &info.base {
                VersionSpec::Branch(b) => ("branch", b.clone()),
                VersionSpec::Version(u) => ("version", u.to_hex()),
            };
            out.push_str(&format!(
                "fork\t{}\t{kind}\t{val}\t{}\t{}\t{}\n",
                info.id, info.lease.created_at, info.lease.expires_at, info.writes
            ));
            for (key, base) in &info.touched {
                let base = base
                    .as_ref()
                    .map(|u| u.to_hex())
                    .unwrap_or_else(|| "-".into());
                // Key last: keys are the one field with a free-form
                // alphabet (same layout bet as `dump_refs`).
                out.push_str(&format!("key\t{}\t{base}\t{key}\n", info.id));
            }
        }
        out
    }

    /// Restore a registry from [`Self::dump`] output, replacing current
    /// contents. Leases resume as persisted — already-expired forks
    /// load too and fall to the next reaper pass (their branches may
    /// still need dropping). Returns the number of forks loaded.
    pub fn load(&self, text: &str) -> DbResult<usize> {
        let mut lines = text.lines();
        match lines.next() {
            Some(FORKS_MAGIC) => {}
            other => {
                return Err(DbError::InvalidInput(format!(
                    "FORKS record: expected magic {FORKS_MAGIC:?}, found {other:?}"
                )))
            }
        }
        let mut loaded: BTreeMap<String, ForkInfo> = BTreeMap::new();
        let mut max_seq: u64 = 0;
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let bad = |what: &str| {
                DbError::InvalidInput(format!("FORKS record line {}: {what}", lineno + 2))
            };
            let mut fields = line.splitn(7, '\t');
            match fields.next() {
                Some("fork") => {
                    let id = fields.next().ok_or_else(|| bad("missing id"))?.to_string();
                    validate_fork_id(&id)?;
                    let kind = fields.next().ok_or_else(|| bad("missing base kind"))?;
                    let val = fields.next().ok_or_else(|| bad("missing base"))?;
                    let base = match kind {
                        "branch" => VersionSpec::Branch(val.to_string()),
                        "version" => VersionSpec::Version(
                            Uid::from_hex(val).ok_or_else(|| bad("bad base version hex"))?,
                        ),
                        _ => return Err(bad("unknown base kind")),
                    };
                    let num = |f: Option<&str>, what: &str| {
                        f.and_then(|s| s.parse::<u64>().ok())
                            .ok_or_else(|| bad(what))
                    };
                    let created_at = num(fields.next(), "bad created_at")?;
                    let expires_at = num(fields.next(), "bad expires_at")?;
                    let writes = num(fields.next(), "bad writes")?;
                    if let Some(rest) = id.strip_prefix('f') {
                        if let Ok(n) = rest.parse::<u64>() {
                            max_seq = max_seq.max(n);
                        }
                    }
                    loaded.insert(
                        id.clone(),
                        ForkInfo {
                            id,
                            base,
                            lease: Lease {
                                created_at,
                                expires_at,
                            },
                            writes,
                            touched: BTreeMap::new(),
                        },
                    );
                }
                Some("key") => {
                    let mut fields = line.splitn(4, '\t').skip(1);
                    let id = fields.next().ok_or_else(|| bad("missing fork id"))?;
                    let base = fields.next().ok_or_else(|| bad("missing base uid"))?;
                    let key = fields.next().ok_or_else(|| bad("missing key"))?.to_string();
                    let base = match base {
                        "-" => None,
                        hex => Some(Uid::from_hex(hex).ok_or_else(|| bad("bad base uid hex"))?),
                    };
                    loaded
                        .get_mut(id)
                        .ok_or_else(|| bad("key line before its fork line"))?
                        .touched
                        .insert(key, base);
                }
                _ => return Err(bad("unknown record tag")),
            }
        }
        let n = loaded.len();
        *self.forks.lock().unwrap() = loaded;
        // Keep generated ids collision-free across the reopen.
        self.next_seq.fetch_max(max_seq + 1, Ordering::Relaxed);
        Ok(n)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The spec a fork read of `key` resolves against.
    fn read_spec(&self, id: &str, key: &str) -> DbResult<VersionSpec> {
        let forks = self.forks.lock().unwrap();
        let info = self.live(&forks, id)?;
        Ok(if info.touched.contains_key(key) {
            VersionSpec::Branch(info.branch())
        } else {
            info.base.clone()
        })
    }

    /// Registry lookup that enforces the lease.
    fn live<'a>(&self, forks: &'a BTreeMap<String, ForkInfo>, id: &str) -> DbResult<&'a ForkInfo> {
        let now = self.clock.now();
        match forks.get(id) {
            Some(info) if info.lease.live_at(now) => Ok(info),
            _ => Err(DbError::ForkExpired {
                fork: id.to_string(),
            }),
        }
    }
}

/// Delete every `branch` head a fork created. Already-gone branches and
/// keys count as success (reaping is idempotent); any other error
/// aborts so the caller can retry the whole fork later.
fn drop_branches<B: ForkBackend + ?Sized>(
    backend: &B,
    branch: &str,
    keys: &[String],
) -> DbResult<u64> {
    let mut dropped = 0;
    for key in keys {
        match backend.delete_branch(key, branch) {
            Ok(()) => dropped += 1,
            Err(DbError::NoSuchKey(_)) | Err(DbError::NoSuchBranch { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(dropped)
}

/// Fork ids travel in branch names, URLs, CLI args, and the FORKS
/// record, so the alphabet is strict: `[A-Za-z0-9._-]`, 1..=64 chars.
fn validate_fork_id(id: &str) -> DbResult<()> {
    if id.is_empty() || id.len() > MAX_FORK_ID_LEN {
        return Err(DbError::InvalidInput(format!(
            "fork id must be 1..={MAX_FORK_ID_LEN} chars"
        )));
    }
    if !id
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        return Err(DbError::InvalidInput(format!(
            "fork id {id:?} has characters outside [A-Za-z0-9._-]"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_store::MemStore;
    use forkbase_types::Value;

    fn db() -> ForkBase<MemStore> {
        ForkBase::with_config(MemStore::new(), forkbase_postree::TreeConfig::test_config())
    }

    fn svc() -> ForkService {
        ForkService::with_default_ttl(60)
    }

    #[test]
    fn create_is_o1_and_reads_pass_through_to_base() {
        let db = db();
        let s = svc();
        db.put("k", Value::Str("base".into()), &PutOptions::default())
            .unwrap();
        let f = s
            .create(VersionSpec::Branch("master".into()), None, None)
            .unwrap();
        assert!(f.touched.is_empty());
        let got = s.get(&db, &f.id, "k").unwrap();
        assert_eq!(got.value, Value::Str("base".into()));
        // Base moves on; an untouched key tracks it (live pass-through).
        db.put("k", Value::Str("base2".into()), &PutOptions::default())
            .unwrap();
        assert_eq!(
            s.get(&db, &f.id, "k").unwrap().value,
            Value::Str("base2".into())
        );
    }

    #[test]
    fn first_write_pins_base_and_isolates_both_directions() {
        let db = db();
        let s = svc();
        db.put("k", Value::Str("base".into()), &PutOptions::default())
            .unwrap();
        let f = s
            .create(VersionSpec::Branch("master".into()), None, None)
            .unwrap();
        s.put(
            &db,
            &f.id,
            "k",
            Value::Str("forked".into()),
            &PutOptions::default(),
        )
        .unwrap();
        // Fork sees its write; master does not.
        assert_eq!(
            s.get(&db, &f.id, "k").unwrap().value,
            Value::Str("forked".into())
        );
        assert_eq!(
            db.get("k", "master").unwrap().value,
            Value::Str("base".into())
        );
        // Master moving on no longer affects the touched key.
        db.put("k", Value::Str("base2".into()), &PutOptions::default())
            .unwrap();
        assert_eq!(
            s.get(&db, &f.id, "k").unwrap().value,
            Value::Str("forked".into())
        );
        // Diff-vs-base is against the pinned version, exact.
        let d = s.diff(&db, &f.id).unwrap();
        assert_eq!(d.keys.len(), 1);
        assert!(matches!(
            d.keys[0].summary,
            Some(DiffSummary::Primitive { .. })
        ));
    }

    #[test]
    fn fork_created_keys_have_no_base() {
        let db = db();
        let s = svc();
        let f = s
            .create(VersionSpec::Branch("master".into()), None, None)
            .unwrap();
        s.put(
            &db,
            &f.id,
            "fresh",
            Value::Str("v".into()),
            &PutOptions::default(),
        )
        .unwrap();
        let d = s.diff(&db, &f.id).unwrap();
        assert_eq!(d.keys[0].base, None);
        assert!(d.keys[0].summary.is_none());
        assert_eq!(d.changed_keys(), 1);
        // The key is invisible outside the fork.
        assert!(db.get("fresh", "master").is_err());
    }

    #[test]
    fn expiry_blocks_all_verbs_and_touch_renews() {
        let db = db();
        let s = svc();
        let f = s
            .create(VersionSpec::Branch("master".into()), Some(10), None)
            .unwrap();
        s.clock().advance(5);
        s.touch(&f.id, Some(10)).unwrap(); // renewed to t=15
        s.clock().advance(9);
        assert!(s.info(&f.id).is_ok(), "renewed lease still live at t=14");
        s.clock().advance(1);
        for err in [
            s.info(&f.id).unwrap_err(),
            s.touch(&f.id, None).unwrap_err(),
            s.get(&db, &f.id, "k").unwrap_err(),
            s.put(
                &db,
                &f.id,
                "k",
                Value::Str("v".into()),
                &PutOptions::default(),
            )
            .unwrap_err(),
            s.diff(&db, &f.id).unwrap_err(),
        ] {
            assert!(
                matches!(&err, DbError::ForkExpired { fork } if fork == &f.id),
                "expected ForkExpired, got {err:?}"
            );
        }
    }

    #[test]
    fn reap_drops_branches_and_registry_entries() {
        let db = db();
        let s = svc();
        db.put("k", Value::Str("base".into()), &PutOptions::default())
            .unwrap();
        let f = s
            .create(VersionSpec::Branch("master".into()), Some(10), None)
            .unwrap();
        s.put(
            &db,
            &f.id,
            "k",
            Value::Str("forked".into()),
            &PutOptions::default(),
        )
        .unwrap();
        let branch = f.branch();
        assert!(db
            .list_branches("k")
            .unwrap()
            .iter()
            .any(|b| b.name == branch));
        s.clock().advance(11);
        let report = s.reap_expired(&db);
        assert_eq!(report.reaped, vec![f.id.clone()]);
        assert_eq!(report.branches_dropped, 1);
        assert_eq!(report.failed, 0);
        assert!(!db
            .list_branches("k")
            .unwrap()
            .iter()
            .any(|b| b.name == branch));
        assert_eq!(s.len(), 0);
        // Idempotent: a second pass is a no-op.
        assert!(s.reap_expired(&db).reaped.is_empty());
    }

    #[test]
    fn dump_load_roundtrip_resumes_leases() {
        let db = db();
        let s = svc();
        db.put("k", Value::Str("base".into()), &PutOptions::default())
            .unwrap();
        let base_uid = db.head("k", "master").unwrap();
        let f1 = s
            .create(VersionSpec::Branch("master".into()), Some(100), None)
            .unwrap();
        let f2 = s
            .create(
                VersionSpec::Version(base_uid),
                Some(200),
                Some("pinned".into()),
            )
            .unwrap();
        s.put(
            &db,
            &f1.id,
            "k",
            Value::Str("forked".into()),
            &PutOptions::default(),
        )
        .unwrap();
        let dump = s.dump();

        let restored = ForkService::with_default_ttl(60);
        assert_eq!(restored.load(&dump).unwrap(), 2);
        let g1 = restored.info(&f1.id).unwrap();
        assert_eq!(g1.lease, f1.lease.clone());
        assert_eq!(g1.writes, 1);
        assert_eq!(g1.touched.get("k"), Some(&Some(base_uid)));
        let g2 = restored.info(&f2.id).unwrap();
        assert_eq!(g2.base, VersionSpec::Version(base_uid));
        // Fork reads still work through the restored registry.
        assert_eq!(
            restored.get(&db, &f1.id, "k").unwrap().value,
            Value::Str("forked".into())
        );
        // Generated ids don't collide with restored ones.
        let f3 = restored
            .create(VersionSpec::Branch("master".into()), None, None)
            .unwrap();
        assert_ne!(f3.id, f1.id);
    }

    #[test]
    fn load_rejects_garbage() {
        let s = svc();
        assert!(s.load("not-the-magic\n").is_err());
        assert!(s.load(&format!("{FORKS_MAGIC}\nfork\tid only\n")).is_err());
        assert!(s
            .load(&format!("{FORKS_MAGIC}\nkey\tghost\t-\tk\n"))
            .is_err());
    }

    #[test]
    fn fork_ids_are_validated() {
        let s = svc();
        let base = VersionSpec::Branch("master".into());
        assert!(s
            .create(base.clone(), None, Some("ok-id_1.x".into()))
            .is_ok());
        assert!(s.create(base.clone(), None, Some("".into())).is_err());
        assert!(s
            .create(base.clone(), None, Some("has space".into()))
            .is_err());
        assert!(s
            .create(base.clone(), None, Some("tab\tchar".into()))
            .is_err());
        assert!(s.create(base.clone(), None, Some("x".repeat(65))).is_err());
        // Duplicate ids refused while the fork is registered.
        assert!(s.create(base, None, Some("ok-id_1.x".into())).is_err());
    }

    #[test]
    fn drop_fork_works_even_after_expiry() {
        let db = db();
        let s = svc();
        db.put("k", Value::Str("base".into()), &PutOptions::default())
            .unwrap();
        let f = s
            .create(VersionSpec::Branch("master".into()), Some(5), None)
            .unwrap();
        s.put(
            &db,
            &f.id,
            "k",
            Value::Str("x".into()),
            &PutOptions::default(),
        )
        .unwrap();
        s.clock().advance(10);
        assert_eq!(s.drop_fork(&db, &f.id).unwrap(), 1);
        assert_eq!(s.len(), 0);
        assert!(matches!(
            s.drop_fork(&db, &f.id).unwrap_err(),
            DbError::ForkExpired { .. }
        ));
    }
}
