//! Lease bookkeeping for fork sandboxes.
//!
//! A lease is two absolute unix-seconds timestamps (`created_at`,
//! `expires_at`). Absolute time — not a countdown — is what makes the
//! persisted `FORKS` record resumable: a process that reopens the store
//! hours later sees exactly the leases that survived, already expired or
//! not, with no clock state to replay.
//!
//! [`LeaseClock`] wraps `SystemTime` with an atomic test offset so
//! lifecycle tests can fast-forward time deterministically instead of
//! sleeping through real TTLs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// A fork's lease window, in unix seconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lease {
    /// When the fork was created.
    pub created_at: u64,
    /// When the lease runs out; the reaper drops the fork at the first
    /// tick at or after this instant.
    pub expires_at: u64,
}

impl Lease {
    /// Whether the lease is still live at `now`.
    pub fn live_at(&self, now: u64) -> bool {
        now < self.expires_at
    }

    /// Seconds of lease remaining at `now` (zero once expired).
    pub fn remaining_at(&self, now: u64) -> u64 {
        self.expires_at.saturating_sub(now)
    }
}

/// Wall clock with a test-only forward offset.
///
/// Production callers never touch the offset and get plain unix time;
/// tests call [`LeaseClock::advance`] to expire leases instantly.
#[derive(Debug, Default)]
pub struct LeaseClock {
    /// Seconds added on top of the system clock.
    offset_secs: AtomicU64,
}

impl LeaseClock {
    /// A clock reading real time (offset zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current unix time in seconds, plus any test offset.
    pub fn now(&self) -> u64 {
        let wall = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        wall + self.offset_secs.load(Ordering::Relaxed)
    }

    /// Fast-forward the clock by `secs`. Monotone: offsets accumulate
    /// and never rewind, matching how leases are compared.
    pub fn advance(&self, secs: u64) {
        self.offset_secs.fetch_add(secs, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_moves_clock_forward() {
        let clock = LeaseClock::new();
        let t0 = clock.now();
        clock.advance(3600);
        let t1 = clock.now();
        assert!(t1 >= t0 + 3600);
    }

    #[test]
    fn lease_liveness_and_remaining() {
        let lease = Lease {
            created_at: 100,
            expires_at: 160,
        };
        assert!(lease.live_at(100));
        assert!(lease.live_at(159));
        assert!(!lease.live_at(160));
        assert_eq!(lease.remaining_at(130), 30);
        assert_eq!(lease.remaining_at(500), 0);
    }
}
