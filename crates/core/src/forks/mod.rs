//! Fork sandboxes: leased, TTL-reaped writable forks as a first-class
//! subsystem (the paper's "branchable application" story, productized).
//!
//! A **fork** is an isolated writable namespace created from any
//! [`VersionSpec`](crate::api::VersionSpec) in O(1): no data is copied at
//! creation. The first write to a key inside the fork lazily creates a
//! namespaced branch (`fork/<id>`) for that key — pointing at the base
//! version the key resolved to at that moment — and all later fork reads
//! and writes of the key use that branch. Reads of keys the fork never
//! wrote pass through to the base spec, so an idle fork costs two
//! registry entries and nothing else.
//!
//! Lifecycle is governed by **leases**: every fork carries a TTL,
//! `touch` renews it, and a reaper (driven by the cluster
//! [`Supervisor`](crate::cluster::Supervisor) tick or any periodic
//! caller) expires leases, drops the fork's branches, and lets the
//! existing GC/compaction reclaim the chunks. Because versions are
//! immutable and content-addressed, dropping a fork's branches returns
//! the store to (within dedup) its pre-fork footprint after one GC pass.
//!
//! The service is generic over a [`ForkBackend`]: both the single-node
//! [`ForkBase`](crate::db::ForkBase) and the sharded
//! [`Cluster`](crate::cluster::Cluster) implement it, so fork verbs
//! route exactly like normal verbs (over the in-process channel
//! transport or TCP, wire version 3).

mod diff;
mod lease;
mod manager;

pub use diff::{DiffSummary, ForkDiff, KeyDiff, MapEntryDelta, MAX_DIFF_SAMPLES};
pub use lease::{Lease, LeaseClock};
pub use manager::{
    ForkBackend, ForkInfo, ForkService, ReapReport, DEFAULT_FORK_TTL_SECS, FORKS_MAGIC,
    FORK_BRANCH_PREFIX,
};
