//! The TCP leg of the cluster: a standalone servelet server and the
//! client used by the TCP transport in `super::rpc`.
//!
//! One request/reply exchange per frame, any number of frames per
//! connection; the router opens one connection per attempt. The server
//! executes every request through [`wire::dispatch`] — the same function
//! the in-process transport uses — so a verb behaves identically no
//! matter how it arrived.
//!
//! # Durability contract
//!
//! A servelet acks a mutating request only **after** its persist hook
//! ran (chunk-store sync + durable refs write). If the process dies
//! between applying a write and acking it, the client observes an
//! ambiguous outcome and never blind-retries — but an *acked* write is
//! on disk and survives the kill. This is what the CI `net` job proves
//! end to end.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use forkbase_store::SweepStore;
use parking_lot::Mutex;

use crate::db::ForkBase;
use crate::error::{DbError, DbResult};

use super::ratelimit::RateLimiter;
use super::rpc::AttemptError;
use super::wire::{self, FrameError, Reply, Request, WireError};

/// Runs after every mutating request, before the ack: make the applied
/// state durable (sync the store, persist the branch heads).
pub type PersistFn<S> = Arc<dyn Fn(&ForkBase<S>) -> DbResult<()> + Send + Sync>;

/// A standalone servelet: a TCP listener executing wire requests against
/// one `ForkBase`.
pub struct ServeletServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ServeletServer {
    /// Bind `addr` and serve `db` until [`Self::stop`]. `persist`, when
    /// given, runs after every mutating request before the reply is
    /// written — the ack-implies-durable contract.
    pub fn spawn<S: SweepStore + Send + Sync + 'static>(
        addr: &str,
        db: Arc<ForkBase<S>>,
        persist: Option<PersistFn<S>>,
    ) -> DbResult<ServeletServer> {
        Self::spawn_limited(addr, db, persist, None)
    }

    /// [`Self::spawn`] with per-peer rate limiting: each request frame
    /// spends one token from its peer's bucket, and an empty bucket
    /// sheds the request with a structured `rate_limited` error (the
    /// connection stays open — a well-behaved client backs off by the
    /// carried `retry_after_ms`).
    pub fn spawn_limited<S: SweepStore + Send + Sync + 'static>(
        addr: &str,
        db: Arc<ForkBase<S>>,
        persist: Option<PersistFn<S>>,
        limiter: Option<Arc<RateLimiter>>,
    ) -> DbResult<ServeletServer> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| DbError::InvalidInput(format!("bind {addr}: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| DbError::InvalidInput(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| DbError::InvalidInput(format!("set_nonblocking: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || {
            accept_loop(listener, db, persist, limiter, stop_flag);
        });
        Ok(ServeletServer {
            local_addr,
            stop,
            handle: Mutex::new(Some(handle)),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting and drop the listener; in-flight requests on
    /// already-accepted connections finish. New connects are refused —
    /// to a router this servelet is now unavailable.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServeletServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop<S: SweepStore + Send + Sync + 'static>(
    listener: TcpListener,
    db: Arc<ForkBase<S>>,
    persist: Option<PersistFn<S>>,
    limiter: Option<Arc<RateLimiter>>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((conn, peer)) => {
                let db = db.clone();
                let persist = persist.clone();
                let limiter = limiter.clone();
                std::thread::spawn(move || {
                    serve_conn(conn, &db, persist.as_ref(), limiter.as_deref(), peer)
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn serve_conn<S: SweepStore>(
    mut conn: TcpStream,
    db: &ForkBase<S>,
    persist: Option<&PersistFn<S>>,
    limiter: Option<&RateLimiter>,
    peer: SocketAddr,
) {
    // The listener was nonblocking; the exchange below must block.
    if conn.set_nonblocking(false).is_err() {
        return;
    }
    let _ = conn.set_nodelay(true);
    // A dead client must not pin this thread forever between frames.
    let _ = conn.set_read_timeout(Some(Duration::from_secs(60)));
    loop {
        // Replies are framed in the version the request carried, so a
        // down-level router rolling through an upgrade can still parse
        // the answer (servelets upgrade before routers).
        let (version, req) = match wire::read_frame_versioned(&mut conn) {
            Ok((version, body)) => match Request::decode(&body) {
                Ok(req) => (version, req),
                Err(e) => {
                    // Well-framed garbage gets a structured error back.
                    let reply = Reply::Err(WireError::from(&e));
                    let _ =
                        conn.write_all(&wire::encode_frame_with_version(version, &reply.encode()));
                    return;
                }
            },
            // EOF, timeout, torn frame, bad CRC, version skew: drop the
            // connection. The client maps this to an ambiguous outcome.
            Err(_) => return,
        };
        // Admission control before any work: a shed request costs the
        // servelet one bucket lookup, nothing else.
        if let Some(limiter) = limiter {
            if let Err(e) = limiter.check(peer.ip()) {
                let reply = Reply::Err(WireError::from(&e));
                if conn
                    .write_all(&wire::encode_frame_with_version(version, &reply.encode()))
                    .and_then(|_| conn.flush())
                    .is_err()
                {
                    return;
                }
                continue;
            }
        }
        let mutating = wire::mutates(&req);
        let mut reply = wire::dispatch(db, req);
        if mutating && !matches!(reply, Reply::Err(_)) {
            if let Some(persist) = persist {
                // Never ack a write that is not durable: a failed persist
                // downgrades the reply to the persist error.
                if let Err(e) = persist(db) {
                    reply = Reply::Err(WireError::from(&e));
                }
            }
        }
        if conn
            .write_all(&wire::encode_frame_with_version(version, &reply.encode()))
            .and_then(|_| conn.flush())
            .is_err()
        {
            return;
        }
    }
}

/// One client call: connect, send `req`, await the reply. The error
/// mapping implements the transport-boundary idempotence rules:
///
/// * connect failure (refused, unreachable, bad address) — the request
///   never left this process: [`AttemptError::NotDelivered`], safe to
///   retry even for writes;
/// * failure after the request (or part of it) was written — ambiguous:
///   [`AttemptError::DiedAfterDelivery`];
/// * read timeout waiting for the reply — ambiguous:
///   [`AttemptError::TimedOut`]; the servelet may still apply it.
pub(super) fn remote_call(
    addr: &str,
    req: &Request,
    deadline: Duration,
) -> Result<Reply, AttemptError> {
    let sock: SocketAddr = addr.parse().map_err(|_| AttemptError::NotDelivered)?;
    // Zero would mean "no timeout" to the socket APIs; clamp up.
    let deadline = deadline.max(Duration::from_millis(1));
    let mut conn =
        TcpStream::connect_timeout(&sock, deadline).map_err(|_| AttemptError::NotDelivered)?;
    let _ = conn.set_nodelay(true);
    let _ = conn.set_write_timeout(Some(deadline));
    let _ = conn.set_read_timeout(Some(deadline));
    let frame = wire::encode_frame(&req.encode());
    if conn.write_all(&frame).and_then(|_| conn.flush()).is_err() {
        // Bytes may have partially left the process.
        return Err(AttemptError::DiedAfterDelivery);
    }
    match wire::read_frame(&mut conn) {
        Ok(body) => Reply::decode(&body).map_err(|_| AttemptError::DiedAfterDelivery),
        Err(FrameError::Io(e))
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Err(AttemptError::TimedOut)
        }
        Err(_) => Err(AttemptError::DiedAfterDelivery),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_store::MemStore;
    use forkbase_types::Value;

    use crate::api::PutOptions;

    fn server() -> (ServeletServer, Arc<ForkBase<MemStore>>) {
        let db = Arc::new(ForkBase::new(MemStore::new()));
        let srv = ServeletServer::spawn("127.0.0.1:0", db.clone(), None).unwrap();
        (srv, db)
    }

    #[test]
    fn put_then_get_over_tcp() {
        let (srv, _db) = server();
        let addr = srv.addr().to_string();
        let deadline = Duration::from_secs(5);
        let reply = remote_call(
            &addr,
            &Request::Put {
                key: "k".into(),
                value: Value::string("v"),
                opts: PutOptions::default(),
            },
            deadline,
        )
        .unwrap();
        let commit = reply.expect_commit().unwrap();
        let got = remote_call(
            &addr,
            &Request::Get {
                key: "k".into(),
                branch: "master".into(),
            },
            deadline,
        )
        .unwrap()
        .expect_get()
        .unwrap();
        assert_eq!(got.value, Value::string("v"));
        assert_eq!(got.uid, commit.uid);
        // Data errors cross the wire as structured errors.
        let err = remote_call(
            &addr,
            &Request::Get {
                key: "missing".into(),
                branch: "master".into(),
            },
            deadline,
        )
        .unwrap()
        .expect_get()
        .unwrap_err();
        assert_eq!(err.code(), "no_such_key");
        srv.stop();
        // After stop the listener is gone: connection refused, never
        // delivered.
        assert_eq!(
            remote_call(&addr, &Request::Probe, Duration::from_millis(500)).unwrap_err(),
            AttemptError::NotDelivered
        );
    }

    #[test]
    fn limited_server_sheds_with_retry_hint_then_recovers() {
        use super::super::ratelimit::{RateLimit, RateLimiter};
        let db = Arc::new(ForkBase::new(MemStore::new()));
        let limiter = Arc::new(RateLimiter::new(RateLimit::new(5.0, 2.0)));
        let srv = ServeletServer::spawn_limited("127.0.0.1:0", db, None, Some(limiter)).unwrap();
        let addr = srv.addr().to_string();
        let deadline = Duration::from_secs(5);
        // The burst admits the first two requests.
        for _ in 0..2 {
            assert_eq!(
                remote_call(&addr, &Request::Probe, deadline).unwrap(),
                Reply::Unit
            );
        }
        // The third is shed with a structured, coded error + hint.
        let err = remote_call(&addr, &Request::Probe, deadline)
            .unwrap()
            .expect_unit()
            .unwrap_err();
        assert_eq!(err.code(), "rate_limited");
        let DbError::RateLimited { retry_after_ms } = err else {
            panic!("expected structured RateLimited, got {err:?}");
        };
        assert!(retry_after_ms > 0);
        // Backing off by the hint gets the peer served again.
        std::thread::sleep(Duration::from_millis(retry_after_ms + 50));
        assert_eq!(
            remote_call(&addr, &Request::Probe, deadline).unwrap(),
            Reply::Unit
        );
    }

    #[test]
    fn server_survives_garbage_and_hostile_length_prefixes() {
        use std::io::Read;
        let (srv, _db) = server();
        let addr = srv.addr();
        // Raw garbage: server drops the connection without panicking.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut sink = Vec::new();
        let _ = conn.read_to_end(&mut sink);
        // Hostile length prefix: rejected at the framing layer.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut sink = Vec::new();
        let _ = conn.read_to_end(&mut sink);
        // The server still serves real clients afterwards.
        let reply =
            remote_call(&addr.to_string(), &Request::Probe, Duration::from_secs(5)).unwrap();
        assert_eq!(reply, Reply::Unit);
    }
}
