//! RPC plumbing for the cluster: the servelet network boundary.
//!
//! Every routed verb crosses this one layer as a serializable
//! [`Request`], so deadlines, deterministic retry/backoff, and chaos
//! injection all live here and apply uniformly — regardless of which
//! [`Transport`] carries the request:
//!
//! * [`ChannelTransport`] — the in-process channel pair. A worker thread
//!   owns a private `ForkBase<S>` and executes requests via
//!   [`wire::dispatch`]. Kept for tests, benches, and the chaos harness,
//!   whose fault injection needs deterministic, instant "network" hops.
//! * [`TcpTransport`] — frames the same request bytes over TCP to a
//!   standalone servelet process (see [`super::net`]). Chaos faults are
//!   **not** injected here: the chaos harness is an in-process
//!   deterministic simulator, and a real network provides its own
//!   faults.
//!
//! The failure taxonomy matters for correctness and is identical on both
//! transports:
//!
//! * **not delivered** — the send itself failed (channel closed,
//!   connection refused). The servelet never saw the request. Safe to
//!   retry even for writes.
//! * **died after delivery** — the connection dropped after the request
//!   was (or may have been) handed over. Ambiguous.
//! * **timed out** — no reply within the per-call deadline; the servelet
//!   may still apply the request later. Ambiguous.
//!
//! Ambiguous outcomes surface as [`DbError::ServeletUnavailable`] /
//! [`DbError::ServeletTimeout`] and are **never** auto-retried for writes;
//! idempotent verbs retry per [`RetryPolicy`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use forkbase_postree::TreeConfig;
use forkbase_store::SweepStore;
use parking_lot::Mutex;

use crate::db::ForkBase;
use crate::error::{DbError, DbResult};

use super::chaos::{ChaosState, Fault};
use super::net;
use super::wire::{dispatch, Reply, Request};

/// A maintenance job shipped to an in-process servelet thread. Not part
/// of the wire surface: tests and local administration (refs dump/load
/// on the CLI's own servelets, key fingerprinting in the test suites)
/// use this side door, which only [`ChannelTransport`] provides.
pub(super) type Job<S> = Box<dyn FnOnce(&ForkBase<S>) + Send>;

/// What travels over an in-process servelet's channel.
pub(super) enum Msg<S> {
    Job(Job<S>),
    /// Stop the worker loop (clean shutdown or fault injection).
    Shutdown,
}

/// One servelet as seen by the router: a stable identity plus whatever
/// transport reaches it.
pub(super) struct Node<S> {
    /// Stable identity: allocated once, never reused, persisted in the
    /// topology record. Ring points derive from this, not from the slot.
    pub(super) id: u64,
    pub(super) transport: Box<dyn Transport<S>>,
}

impl<S> Node<S> {
    /// The remote address, if this servelet lives in another process.
    pub(super) fn addr(&self) -> Option<&str> {
        self.transport.addr()
    }

    /// Whether this servelet is reached over the network.
    pub(super) fn is_remote(&self) -> bool {
        self.addr().is_some()
    }
}

/// How many times to attempt an idempotent RPC and how long to wait
/// between attempts. The schedule is deterministic — exponential doubling
/// from [`RetryPolicy::base_backoff`] capped at
/// [`RetryPolicy::max_backoff`], no jitter — so chaos tests replay
/// identically from a seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each further attempt.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// The backoff slept before 1-based attempt `attempt` (≥ 2):
    /// `base · 2^(attempt-2)`, capped at `max_backoff`.
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(2).min(20);
        self.base_backoff
            .saturating_mul(1u32 << shift)
            .min(self.max_backoff)
    }
}

/// Per-call deadlines and the retry policy for the cluster's RPCs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcConfig {
    /// Deadline for one data-plane attempt (routed verbs, scatter-gather).
    pub deadline: Duration,
    /// Deadline for control-plane calls (migration export/import, refs
    /// restore) — generous, these move whole key histories.
    pub control_deadline: Duration,
    /// Deadline for supervision liveness probes — short, a probe does no
    /// work.
    pub probe_deadline: Duration,
    /// Retry schedule for idempotent verbs.
    pub retry: RetryPolicy,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            deadline: Duration::from_secs(30),
            control_deadline: Duration::from_secs(300),
            probe_deadline: Duration::from_secs(1),
            retry: RetryPolicy::default(),
        }
    }
}

/// How one RPC attempt failed, before mapping to [`DbError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum AttemptError {
    /// The send failed: the worker was already gone or the connection was
    /// refused; the request was **never** delivered. Safe to retry even
    /// for writes.
    NotDelivered,
    /// Delivered (or possibly delivered), then the connection dropped
    /// without a reply. Ambiguous.
    DiedAfterDelivery,
    /// No reply within the deadline; the servelet may still apply the
    /// request. Ambiguous.
    TimedOut,
}

impl AttemptError {
    pub(super) fn into_db(self, servelet: u64) -> DbError {
        match self {
            AttemptError::NotDelivered | AttemptError::DiedAfterDelivery => {
                DbError::ServeletUnavailable { servelet }
            }
            AttemptError::TimedOut => DbError::ServeletTimeout { servelet },
        }
    }

    /// Whether a write may retry after this failure: only when the
    /// request provably never reached the servelet.
    fn write_retry_safe(self) -> bool {
        matches!(self, AttemptError::NotDelivered)
    }
}

/// The transport-level outcome of one attempt. `Ok(Reply::Err(_))` is a
/// *successful* round trip carrying a data error — never retried.
pub(super) type Outcome = Result<Reply, AttemptError>;

/// An attempt in flight: either it already failed at send time, or a
/// reply (or transport error) will arrive on the receiver.
pub(super) enum Pending {
    Fail(AttemptError),
    Wait {
        rx: Receiver<Outcome>,
        /// Held open for the `DropReply` fault so the caller observes a
        /// timeout (lost reply, live worker) rather than a disconnect.
        _keepalive: Option<Sender<Outcome>>,
    },
}

impl Pending {
    /// Wait up to `deadline` for the outcome.
    pub(super) fn gather(self, deadline: Duration) -> Outcome {
        match self {
            Pending::Fail(e) => Err(e),
            Pending::Wait { rx, _keepalive } => match rx.recv_timeout(deadline) {
                Ok(out) => out,
                Err(RecvTimeoutError::Disconnected) => Err(AttemptError::DiedAfterDelivery),
                Err(RecvTimeoutError::Timeout) => Err(AttemptError::TimedOut),
            },
        }
    }
}

/// How requests reach a servelet. Implementations differ only in how
/// bytes move; verb semantics live in [`wire::dispatch`] on the servelet
/// side of whichever transport is in use.
pub(super) trait Transport<S>: Send + Sync {
    /// Begin one attempt: ship `req`, return a handle the caller gathers
    /// with a deadline. `fault` is the chaos draw for this attempt
    /// (ignored by network transports); `allow_duplicate` gates the
    /// `Duplicate` fault — only idempotent attempts may be delivered
    /// twice, a write sees clean delivery instead (the transport never
    /// double-applies a write on its own).
    fn begin(
        &self,
        deadline: Duration,
        fault: Fault,
        req: Request,
        allow_duplicate: bool,
    ) -> Pending;

    /// The maintenance side door: the raw channel sender, for in-process
    /// servelets only. Remote servelets return `None` — closures cannot
    /// cross the wire.
    fn maint_sender(&self) -> Option<&Sender<Msg<S>>>;

    /// Ask the servelet to stop (no-op for remote servelets, which are
    /// owned by their own process).
    fn signal_shutdown(&self);

    /// Wait for the servelet to finish stopping. Joining matters for
    /// durable backends: it drops the worker's `ForkBase` (and store),
    /// releasing e.g. a `FileStore`'s advisory lock so a respawn can
    /// reopen the directory.
    fn join(&self);

    /// The remote address, if any.
    fn addr(&self) -> Option<&str>;
}

/// The in-process transport: a crossbeam channel into a worker thread
/// that owns a private `ForkBase<S>`.
pub(super) struct ChannelTransport<S> {
    tx: Sender<Msg<S>>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl<S: SweepStore + 'static> Transport<S> for ChannelTransport<S> {
    fn begin(
        &self,
        _deadline: Duration,
        fault: Fault,
        req: Request,
        allow_duplicate: bool,
    ) -> Pending {
        // A write is never delivered twice by the transport itself:
        // Duplicate degrades to clean delivery (the fault draw still
        // happened, keeping chaos schedules deterministic).
        let fault = if fault == Fault::Duplicate && !allow_duplicate {
            Fault::None
        } else {
            fault
        };
        if fault == Fault::DropRequest {
            // The request frame is lost in the "network": the worker never
            // sees it and the caller's deadline expires. Simulated time is
            // compressed — the outcome is reported without sleeping.
            return Pending::Fail(AttemptError::TimedOut);
        }
        if fault == Fault::CrashBefore {
            // FIFO: the worker sees Shutdown before the job, so the job is
            // provably never applied — yet the caller observes only a
            // disconnect, i.e. an ambiguous outcome. Conservative by design.
            let _ = self.tx.send(Msg::Shutdown);
        }
        // Capacity 2 so the worker never blocks replying to a duplicate.
        let (tx, rx) = bounded::<Outcome>(2);
        let suppress = matches!(fault, Fault::DropReply | Fault::CrashAfter);
        let jtx = tx.clone();
        let main_req = req.clone();
        let job: Job<S> = Box::new(move |db| {
            let r = dispatch(db, main_req);
            if !suppress {
                let _ = jtx.send(Ok(r));
            }
        });
        // DropReply models a lost reply with a live worker: keep a sender
        // open so the caller times out instead of observing a disconnect.
        let keepalive = (fault == Fault::DropReply).then(|| tx.clone());
        if fault == Fault::Duplicate {
            // At-least-once network: the request arrives twice; the first
            // reply wins.
            let jtx = tx.clone();
            let dup: Job<S> = Box::new(move |db| {
                let _ = jtx.send(Ok(dispatch(db, req)));
            });
            let _ = self.tx.send(Msg::Job(dup));
        }
        drop(tx);
        if self.tx.send(Msg::Job(job)).is_err() {
            return Pending::Fail(AttemptError::NotDelivered);
        }
        if fault == Fault::CrashAfter {
            // The worker applies the job, suppresses the reply, then dies —
            // the "acked-by-disk, lost-by-network" worst case for writes.
            let _ = self.tx.send(Msg::Shutdown);
        }
        Pending::Wait {
            rx,
            _keepalive: keepalive,
        }
    }

    fn maint_sender(&self) -> Option<&Sender<Msg<S>>> {
        Some(&self.tx)
    }

    fn signal_shutdown(&self) {
        let _ = self.tx.send(Msg::Shutdown);
    }

    fn join(&self) {
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }

    fn addr(&self) -> Option<&str> {
        None
    }
}

/// The network transport: one TCP connection per attempt to a standalone
/// servelet process (see [`super::net`] for the client and server).
pub(super) struct TcpTransport {
    addr: String,
}

impl<S> Transport<S> for TcpTransport {
    fn begin(
        &self,
        deadline: Duration,
        _fault: Fault,
        req: Request,
        _allow_duplicate: bool,
    ) -> Pending {
        // Chaos faults are in-process-only; a real network injects its
        // own. The blocking call runs on its own thread so scatter can
        // begin every node before gathering any.
        let (tx, rx) = bounded::<Outcome>(1);
        let addr = self.addr.clone();
        std::thread::spawn(move || {
            let _ = tx.send(net::remote_call(&addr, &req, deadline));
        });
        Pending::Wait {
            rx,
            _keepalive: None,
        }
    }

    fn maint_sender(&self) -> Option<&Sender<Msg<S>>> {
        None
    }

    fn signal_shutdown(&self) {}

    fn join(&self) {}

    fn addr(&self) -> Option<&str> {
        Some(&self.addr)
    }
}

pub(super) fn spawn_node<S: SweepStore + Send + 'static>(
    id: u64,
    store: S,
    cfg: TreeConfig,
) -> Arc<Node<S>> {
    let (tx, rx) = unbounded::<Msg<S>>();
    let handle = std::thread::spawn(move || {
        let db = ForkBase::with_config(store, cfg);
        while let Ok(msg) = rx.recv() {
            match msg {
                Msg::Job(job) => job(&db),
                Msg::Shutdown => break,
            }
        }
    });
    Arc::new(Node {
        id,
        transport: Box::new(ChannelTransport {
            tx,
            handle: Mutex::new(Some(handle)),
        }),
    })
}

/// A servelet reached over TCP; the process at `addr` owns the store.
pub(super) fn remote_node<S: SweepStore + 'static>(id: u64, addr: String) -> Arc<Node<S>> {
    Arc::new(Node {
        id,
        transport: Box::new(TcpTransport { addr }),
    })
}

/// Stop a servelet and wait for it. In-process: stops the worker and
/// joins its thread. Remote: no-op — the process owns its own lifecycle.
pub(super) fn shutdown_node<S>(node: &Node<S>) {
    node.transport.signal_shutdown();
    node.transport.join();
}

/// One RPC attempt with a chaos draw.
pub(super) fn attempt<S>(
    node: &Node<S>,
    deadline: Duration,
    chaos: Option<&ChaosState>,
    req: Request,
    allow_duplicate: bool,
) -> Outcome {
    let fault = chaos.map_or(Fault::None, |c| c.next_fault());
    node.transport
        .begin(deadline, fault, req, allow_duplicate)
        .gather(deadline)
}

/// Run a maintenance closure on an in-process servelet's thread: the
/// local-only side door for tests and CLI administration. One attempt,
/// no chaos. Remote servelets reject — closures cannot cross the wire.
pub(super) fn maint_call<S, R: Send + 'static>(
    node: &Node<S>,
    deadline: Duration,
    f: impl FnOnce(&ForkBase<S>) -> R + Send + 'static,
) -> DbResult<R> {
    let Some(tx) = node.transport.maint_sender() else {
        return Err(DbError::InvalidInput(format!(
            "servelet {} is remote ({}): maintenance closures require an in-process servelet",
            node.id,
            node.addr().unwrap_or("?"),
        )));
    };
    let (rtx, rrx) = bounded::<R>(1);
    let job: Job<S> = Box::new(move |db| {
        let _ = rtx.send(f(db));
    });
    tx.send(Msg::Job(job))
        .map_err(|_| AttemptError::NotDelivered.into_db(node.id))?;
    match rrx.recv_timeout(deadline) {
        Ok(r) => Ok(r),
        Err(RecvTimeoutError::Disconnected) => {
            Err(AttemptError::DiedAfterDelivery.into_db(node.id))
        }
        Err(RecvTimeoutError::Timeout) => Err(AttemptError::TimedOut.into_db(node.id)),
    }
}

/// Ship `req` with retries per `cfg`. `resolve` is called before
/// **every** attempt so a retry lands on the current servelet at the
/// route — a supervisor restart between attempts heals the call
/// mid-retry.
///
/// `idempotent` selects the retry rule: idempotent verbs retry on any
/// transport failure; writes retry only a provably-undelivered request
/// (the ambiguous-write rule). A `Reply::Err` is a successful round trip
/// carrying a data error and is never retried.
pub(super) fn retry_loop<S>(
    cfg: &RpcConfig,
    chaos: Option<&ChaosState>,
    idempotent: bool,
    resolve: impl Fn() -> Arc<Node<S>>,
    req: Request,
) -> DbResult<Reply> {
    let mut attempt_no = 1u32;
    loop {
        let node = resolve();
        match attempt(&node, cfg.deadline, chaos, req.clone(), idempotent) {
            Ok(r) => return Ok(r),
            Err(e) => {
                let may_retry = idempotent || e.write_retry_safe();
                if !may_retry || attempt_no >= cfg.retry.max_attempts {
                    return Err(e.into_db(node.id));
                }
                attempt_no += 1;
                std::thread::sleep(cfg.retry.backoff_before(attempt_no));
            }
        }
    }
}

/// Control-plane call: one attempt, no chaos, no retry, caller-chosen
/// deadline. Used by migration internals and supervision so the recovery
/// machinery itself is exempt from fault injection (injecting there would
/// test the simulator, not the system).
pub(super) fn call_control<S>(node: &Node<S>, deadline: Duration, req: Request) -> DbResult<Reply> {
    attempt(node, deadline, None, req, false).map_err(|e| e.into_db(node.id))
}

/// Ship `req` to every node concurrently, then gather per-node outcomes
/// in slot order. The whole gather shares one deadline window, so a
/// scatter verb is bounded by ~`deadline` wall-clock regardless of how
/// many members are slow. Failures come back per node — the caller
/// decides between strict (first error wins) and partial (degraded set)
/// semantics. Scatter verbs are reads, so the `Duplicate` fault applies.
pub(super) fn scatter_nodes<S>(
    nodes: &[Arc<Node<S>>],
    deadline: Duration,
    chaos: Option<&ChaosState>,
    req: &Request,
) -> Vec<(u64, Outcome)> {
    let pending: Vec<(u64, Pending)> = nodes
        .iter()
        .map(|node| {
            let fault = chaos.map_or(Fault::None, |c| c.next_fault());
            (
                node.id,
                node.transport.begin(deadline, fault, req.clone(), true),
            )
        })
        .collect();
    // One shared window: attempts already run concurrently, so each node
    // gets whatever remains of the original deadline.
    let deadline_at = Instant::now() + deadline;
    pending
        .into_iter()
        .map(|(id, p)| {
            let left = deadline_at.saturating_duration_since(Instant::now());
            (id, p.gather(left))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_store::MemStore;

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(45),
        };
        assert_eq!(p.backoff_before(2), Duration::from_millis(10));
        assert_eq!(p.backoff_before(3), Duration::from_millis(20));
        assert_eq!(p.backoff_before(4), Duration::from_millis(40));
        assert_eq!(p.backoff_before(5), Duration::from_millis(45), "capped");
        assert_eq!(
            p.backoff_before(60),
            Duration::from_millis(45),
            "no overflow"
        );
        assert_eq!(RetryPolicy::no_retry().max_attempts, 1);
    }

    #[test]
    fn channel_transport_round_trips_requests() {
        let node = spawn_node(7, MemStore::new(), TreeConfig::default());
        let reply = attempt(&node, Duration::from_secs(5), None, Request::Probe, true).unwrap();
        assert_eq!(reply, Reply::Unit);
        shutdown_node(&node);
        // After shutdown the send fails before delivery.
        let err = attempt(&node, Duration::from_secs(1), None, Request::Probe, true).unwrap_err();
        assert_eq!(err, AttemptError::NotDelivered);
    }

    #[test]
    fn remote_transport_refuses_connection_as_not_delivered() {
        // Port 1 on loopback is essentially never listening: connection
        // refused must map to NotDelivered (write-retry safe).
        let node = remote_node::<MemStore>(3, "127.0.0.1:1".to_string());
        let err = attempt(
            &node,
            Duration::from_millis(500),
            None,
            Request::Probe,
            true,
        )
        .unwrap_err();
        assert_eq!(err, AttemptError::NotDelivered);
        // Maintenance closures cannot cross the wire.
        let err = maint_call(&node, Duration::from_millis(100), |_db| ()).unwrap_err();
        assert!(matches!(err, DbError::InvalidInput(_)));
    }
}
