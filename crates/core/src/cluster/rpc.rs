//! RPC plumbing for the cluster: the servelet "network" boundary.
//!
//! Every routed verb crosses this one layer, so deadlines, deterministic
//! retry/backoff, and chaos injection all live here and apply uniformly.
//! The failure taxonomy matters for correctness:
//!
//! * **not delivered** — the send itself failed, the worker never saw the
//!   request. Safe to retry even for writes.
//! * **died after delivery** — the worker's channel disconnected after the
//!   request was (or may have been) handed over. Ambiguous.
//! * **timed out** — no reply within the per-call deadline; the worker may
//!   still apply the request later. Ambiguous.
//!
//! Ambiguous outcomes surface as [`DbError::ServeletUnavailable`] /
//! [`DbError::ServeletTimeout`] and are **never** auto-retried for writes;
//! idempotent verbs retry per [`RetryPolicy`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use forkbase_postree::TreeConfig;
use forkbase_store::SweepStore;
use parking_lot::Mutex;

use crate::db::ForkBase;
use crate::error::{DbError, DbResult};

use super::chaos::{ChaosState, Fault};

/// A job shipped to a servelet thread.
pub(super) type Job<S> = Box<dyn FnOnce(&ForkBase<S>) + Send>;

/// What travels over a servelet's "network" channel.
pub(super) enum Msg<S> {
    Job(Job<S>),
    /// Stop the worker loop (clean shutdown or fault injection).
    Shutdown,
}

/// One servelet: a worker thread owning a private `ForkBase<S>`.
pub(super) struct Node<S> {
    /// Stable identity: allocated once, never reused, persisted in the
    /// topology record. Ring points derive from this, not from the slot.
    pub(super) id: u64,
    pub(super) tx: Sender<Msg<S>>,
    pub(super) handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// How many times to attempt an idempotent RPC and how long to wait
/// between attempts. The schedule is deterministic — exponential doubling
/// from [`RetryPolicy::base_backoff`] capped at
/// [`RetryPolicy::max_backoff`], no jitter — so chaos tests replay
/// identically from a seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each further attempt.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// The backoff slept before 1-based attempt `attempt` (≥ 2):
    /// `base · 2^(attempt-2)`, capped at `max_backoff`.
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(2).min(20);
        self.base_backoff
            .saturating_mul(1u32 << shift)
            .min(self.max_backoff)
    }
}

/// Per-call deadlines and the retry policy for the cluster's RPCs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcConfig {
    /// Deadline for one data-plane attempt (routed verbs, scatter-gather).
    pub deadline: Duration,
    /// Deadline for control-plane calls (migration export/import, refs
    /// restore) — generous, these move whole key histories.
    pub control_deadline: Duration,
    /// Deadline for supervision liveness probes — short, a probe does no
    /// work.
    pub probe_deadline: Duration,
    /// Retry schedule for idempotent verbs.
    pub retry: RetryPolicy,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            deadline: Duration::from_secs(30),
            control_deadline: Duration::from_secs(300),
            probe_deadline: Duration::from_secs(1),
            retry: RetryPolicy::default(),
        }
    }
}

/// How one RPC attempt failed, before mapping to [`DbError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum AttemptError {
    /// The send failed: the worker was already gone; the request was
    /// **never** delivered. Safe to retry even for writes.
    NotDelivered,
    /// Delivered (or possibly delivered), then the worker's channel
    /// disconnected without a reply. Ambiguous.
    DiedAfterDelivery,
    /// No reply within the deadline; the worker may still apply the
    /// request. Ambiguous.
    TimedOut,
}

impl AttemptError {
    pub(super) fn into_db(self, servelet: u64) -> DbError {
        match self {
            AttemptError::NotDelivered | AttemptError::DiedAfterDelivery => {
                DbError::ServeletUnavailable { servelet }
            }
            AttemptError::TimedOut => DbError::ServeletTimeout { servelet },
        }
    }

    /// Whether a write may retry after this failure: only when the
    /// request provably never reached the worker.
    fn write_retry_safe(self) -> bool {
        matches!(self, AttemptError::NotDelivered)
    }
}

pub(super) fn spawn_node<S: SweepStore + Send + 'static>(
    id: u64,
    store: S,
    cfg: TreeConfig,
) -> Arc<Node<S>> {
    let (tx, rx) = unbounded::<Msg<S>>();
    let handle = std::thread::spawn(move || {
        let db = ForkBase::with_config(store, cfg);
        while let Ok(msg) = rx.recv() {
            match msg {
                Msg::Job(job) => job(&db),
                Msg::Shutdown => break,
            }
        }
    });
    Arc::new(Node {
        id,
        tx,
        handle: Mutex::new(Some(handle)),
    })
}

/// Stop a worker and join its thread. Joining matters for durable
/// backends: it drops the worker's `ForkBase` (and store), releasing e.g.
/// a `FileStore`'s advisory lock so a respawn can reopen the directory.
pub(super) fn shutdown_node<S>(node: &Node<S>) {
    let _ = node.tx.send(Msg::Shutdown);
    if let Some(h) = node.handle.lock().take() {
        let _ = h.join();
    }
}

fn gather<R>(
    rx: Receiver<R>,
    _keepalive: Option<Sender<R>>,
    deadline: Duration,
) -> Result<R, AttemptError> {
    match rx.recv_timeout(deadline) {
        Ok(r) => Ok(r),
        Err(RecvTimeoutError::Disconnected) => Err(AttemptError::DiedAfterDelivery),
        Err(RecvTimeoutError::Timeout) => Err(AttemptError::TimedOut),
    }
}

/// One RPC attempt with a `FnOnce` job. Chaos faults apply, except
/// `Duplicate` (a one-shot job cannot be delivered twice) which degrades
/// to clean delivery.
pub(super) fn attempt_once<S, R: Send + 'static>(
    node: &Node<S>,
    deadline: Duration,
    chaos: Option<&ChaosState>,
    f: impl FnOnce(&ForkBase<S>) -> R + Send + 'static,
) -> Result<R, AttemptError> {
    let fault = chaos.map_or(Fault::None, |c| c.next_fault());
    dispatch_one(node, deadline, fault, f)
}

/// One RPC attempt with a cloneable job, enabling the `Duplicate` chaos
/// fault (the request is delivered twice; the first reply wins, mirroring
/// an at-least-once network).
pub(super) fn attempt_idem<S, R: Send + 'static>(
    node: &Node<S>,
    deadline: Duration,
    chaos: Option<&ChaosState>,
    f: impl Fn(&ForkBase<S>) -> R + Clone + Send + 'static,
) -> Result<R, AttemptError> {
    let fault = chaos.map_or(Fault::None, |c| c.next_fault());
    if fault == Fault::Duplicate {
        // Capacity 2 so the worker never blocks replying to the duplicate.
        let (tx, rx) = bounded::<R>(2);
        for first in [true, false] {
            let f = f.clone();
            let jtx = tx.clone();
            let job: Job<S> = Box::new(move |db| {
                let _ = jtx.send(f(db));
            });
            let sent = node.tx.send(Msg::Job(job));
            if first {
                sent.map_err(|_| AttemptError::NotDelivered)?;
            }
        }
        drop(tx);
        return gather(rx, None, deadline);
    }
    dispatch_one(node, deadline, fault, f)
}

fn dispatch_one<S, R: Send + 'static>(
    node: &Node<S>,
    deadline: Duration,
    fault: Fault,
    f: impl FnOnce(&ForkBase<S>) -> R + Send + 'static,
) -> Result<R, AttemptError> {
    if fault == Fault::DropRequest {
        // The request frame is lost in the "network": the worker never
        // sees it and the caller's deadline expires. Simulated time is
        // compressed — the outcome is reported without sleeping.
        return Err(AttemptError::TimedOut);
    }
    if fault == Fault::CrashBefore {
        // FIFO: the worker sees Shutdown before the job, so the job is
        // provably never applied — yet the caller observes only a
        // disconnect, i.e. an ambiguous outcome. Conservative by design.
        let _ = node.tx.send(Msg::Shutdown);
    }
    let (tx, rx) = bounded::<R>(1);
    let suppress = matches!(fault, Fault::DropReply | Fault::CrashAfter);
    let jtx = tx.clone();
    let job: Job<S> = Box::new(move |db| {
        let r = f(db);
        if !suppress {
            let _ = jtx.send(r);
        }
    });
    // DropReply models a lost reply with a live worker: keep a sender open
    // so the caller times out instead of observing a disconnect.
    let keepalive = (fault == Fault::DropReply).then(|| tx.clone());
    drop(tx);
    node.tx
        .send(Msg::Job(job))
        .map_err(|_| AttemptError::NotDelivered)?;
    if fault == Fault::CrashAfter {
        // The worker applies the job, suppresses the reply, then dies —
        // the "acked-by-disk, lost-by-network" worst case for writes.
        let _ = node.tx.send(Msg::Shutdown);
    }
    gather(rx, keepalive, deadline)
}

/// Run `f` with retries per `cfg`. `resolve` is called before **every**
/// attempt so a retry lands on the current worker at the route — a
/// supervisor restart between attempts heals the call mid-retry.
///
/// `idempotent` selects the retry rule: idempotent verbs retry on any
/// failure; writes retry only a provably-undelivered request (the
/// ambiguous-write rule).
pub(super) fn retry_loop<S, R: Send + 'static>(
    cfg: &RpcConfig,
    chaos: Option<&ChaosState>,
    idempotent: bool,
    resolve: impl Fn() -> Arc<Node<S>>,
    f: impl Fn(&ForkBase<S>) -> R + Clone + Send + 'static,
) -> DbResult<R> {
    let mut attempt = 1u32;
    loop {
        let node = resolve();
        let outcome = if idempotent {
            attempt_idem(&node, cfg.deadline, chaos, f.clone())
        } else {
            attempt_once(&node, cfg.deadline, chaos, f.clone())
        };
        match outcome {
            Ok(r) => return Ok(r),
            Err(e) => {
                let may_retry = idempotent || e.write_retry_safe();
                if !may_retry || attempt >= cfg.retry.max_attempts {
                    return Err(e.into_db(node.id));
                }
                attempt += 1;
                std::thread::sleep(cfg.retry.backoff_before(attempt));
            }
        }
    }
}

/// Control-plane call: one attempt, no chaos, no retry, caller-chosen
/// deadline. Used by migration internals and supervision so the recovery
/// machinery itself is exempt from fault injection (injecting there would
/// test the simulator, not the system).
pub(super) fn call_control<S, R: Send + 'static>(
    node: &Node<S>,
    deadline: Duration,
    f: impl FnOnce(&ForkBase<S>) -> R + Send + 'static,
) -> DbResult<R> {
    attempt_once(node, deadline, None, f).map_err(|e| e.into_db(node.id))
}

/// Dispatch `f` to every node concurrently, then gather per-node outcomes
/// in slot order. The whole gather shares one deadline window, so a
/// scatter verb is bounded by ~`deadline` wall-clock regardless of how
/// many members are slow. Failures come back per node — the caller
/// decides between strict (first error wins) and partial (degraded set)
/// semantics.
pub(super) fn scatter_nodes<S, R: Send + 'static>(
    nodes: &[Arc<Node<S>>],
    deadline: Duration,
    chaos: Option<&ChaosState>,
    f: impl Fn(&ForkBase<S>) -> R + Clone + Send + 'static,
) -> Vec<(u64, Result<R, AttemptError>)> {
    enum Fate<R> {
        Wait(Receiver<R>, Option<Sender<R>>),
        Fail(AttemptError),
    }
    let mut pending: Vec<(u64, Fate<R>)> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let fault = chaos.map_or(Fault::None, |c| c.next_fault());
        if fault == Fault::DropRequest {
            pending.push((node.id, Fate::Fail(AttemptError::TimedOut)));
            continue;
        }
        if fault == Fault::CrashBefore {
            let _ = node.tx.send(Msg::Shutdown);
        }
        let (tx, rx) = bounded::<R>(2);
        let suppress = matches!(fault, Fault::DropReply | Fault::CrashAfter);
        let jtx = tx.clone();
        let fj = f.clone();
        let job: Job<S> = Box::new(move |db| {
            let r = fj(db);
            if !suppress {
                let _ = jtx.send(r);
            }
        });
        let keepalive = (fault == Fault::DropReply).then(|| tx.clone());
        if fault == Fault::Duplicate {
            let fj = f.clone();
            let jtx = tx.clone();
            let dup: Job<S> = Box::new(move |db| {
                let _ = jtx.send(fj(db));
            });
            let _ = node.tx.send(Msg::Job(dup));
        }
        drop(tx);
        if node.tx.send(Msg::Job(job)).is_err() {
            pending.push((node.id, Fate::Fail(AttemptError::NotDelivered)));
            continue;
        }
        if fault == Fault::CrashAfter {
            let _ = node.tx.send(Msg::Shutdown);
        }
        pending.push((node.id, Fate::Wait(rx, keepalive)));
    }
    // One shared window: jobs already run concurrently, so each node gets
    // whatever remains of the original deadline.
    let deadline_at = Instant::now() + deadline;
    pending
        .into_iter()
        .map(|(id, fate)| match fate {
            Fate::Fail(e) => (id, Err(e)),
            Fate::Wait(rx, keep) => {
                let left = deadline_at.saturating_duration_since(Instant::now());
                (id, gather(rx, keep, left))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(45),
        };
        assert_eq!(p.backoff_before(2), Duration::from_millis(10));
        assert_eq!(p.backoff_before(3), Duration::from_millis(20));
        assert_eq!(p.backoff_before(4), Duration::from_millis(40));
        assert_eq!(p.backoff_before(5), Duration::from_millis(45), "capped");
        assert_eq!(
            p.backoff_before(60),
            Duration::from_millis(45),
            "no overflow"
        );
        assert_eq!(RetryPolicy::no_retry().max_attempts, 1);
    }
}
