//! Servelet supervision: liveness probing, health reporting, and restart
//! of crashed workers from their durable backends.
//!
//! A dead servelet is not removed from the ring — its keys live in its
//! store, and dropping them would lose data. Instead the supervisor
//! rebuilds the worker **in place**: join the dead thread (releasing the
//! store's advisory lock for durable backends), reopen the store through
//! the cluster's *respawn factory*, restore branch heads from persisted
//! refs when the factory supplies them, and swap the fresh worker into
//! the same slot under the same stable id. Routing never changes; this is
//! the PR-3 crash-recovery path (reopen `FileStore` packs + refs) driven
//! end-to-end from the cluster layer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use forkbase_store::SweepStore;

use crate::error::{DbError, DbResult};

use super::rpc::{call_control, shutdown_node, spawn_node};
use super::wire::{Reply, Request};
use super::Cluster;

/// Liveness of one servelet as seen by the supervisor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// The worker answered a probe within the probe deadline.
    Alive,
    /// The worker is gone or unresponsive.
    Dead,
    /// A restart is currently in flight.
    Restarting,
}

impl HealthState {
    /// Stable lowercase name (`alive` / `dead` / `restarting`).
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Alive => "alive",
            HealthState::Dead => "dead",
            HealthState::Restarting => "restarting",
        }
    }
}

/// One servelet's health record ([`Cluster::health`]).
#[derive(Clone, Debug)]
pub struct ServeletHealth {
    /// Stable servelet id.
    pub servelet: u64,
    /// Current liveness.
    pub state: HealthState,
    /// Probe failures since the last success.
    pub consecutive_failures: u32,
    /// The most recent probe or restart error, if any.
    pub last_error: Option<String>,
}

/// Book-keeping behind [`Cluster::health`].
#[derive(Clone, Debug, Default)]
pub(super) struct HealthRecord {
    pub(super) restarting: bool,
    pub(super) consecutive_failures: u32,
    pub(super) last_error: Option<String>,
}

/// What a respawn factory hands back: the reopened store, plus the
/// servelet's persisted refs text (see
/// [`ForkBase::dump_refs`](crate::ForkBase::dump_refs)) when the backend
/// persists branch heads. Without refs, committed versions remain
/// resolvable by uid but branch heads start empty.
pub struct Respawned<S> {
    /// The reopened store (e.g. `FileStore` packs recovered on open).
    pub store: S,
    /// Persisted refs to restore via
    /// [`ForkBase::load_refs`](crate::ForkBase::load_refs), if any.
    pub refs: Option<String>,
}

pub(super) type RespawnFn<S> = Arc<dyn Fn(u64) -> DbResult<Respawned<S>> + Send + Sync>;

/// Hook that re-launches a crashed **remote** servelet process
/// ([`Cluster::set_remote_respawn`]). Called with the servelet's stable
/// id and address; it should get a process listening on that address
/// again (e.g. re-exec `forkbase serve --servelet ADDR --data DIR` — the
/// reopened `FileStore` recovers its packs and refs itself). The
/// supervisor then polls the probe until the servelet answers or the
/// control deadline expires.
pub type RemoteRespawnFn = Arc<dyn Fn(u64, &str) -> DbResult<()> + Send + Sync>;

/// Outcome of one supervision pass ([`Cluster::supervise_once`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SupervisionReport {
    /// Servelets that answered their probe.
    pub alive: Vec<u64>,
    /// Dead servelets this pass successfully restarted.
    pub restarted: Vec<u64>,
    /// Dead servelets whose restart failed, with the error.
    pub failed: Vec<(u64, String)>,
    /// Dead primaries this pass failed over to a replica, as
    /// `(retired primary id, promoted replica id)`. Only populated when a
    /// failover threshold is set ([`Cluster::set_failover_threshold`]).
    pub promoted: Vec<(u64, u64)>,
}

impl<S: SweepStore + Send + 'static> Cluster<S> {
    /// Install the respawn factory used by [`Self::restart_servelet`] /
    /// [`Self::supervise_once`] to rebuild a crashed servelet from its
    /// durable backend. [`Self::from_topology`] installs its `open`
    /// closure automatically (without refs); callers whose backend also
    /// persists refs should install a factory that returns them.
    pub fn set_respawn(&self, f: impl Fn(u64) -> DbResult<Respawned<S>> + Send + Sync + 'static) {
        *self.respawn.write() = Some(Arc::new(f));
    }

    /// Install the hook used to restart crashed **remote** servelets
    /// (entries routed over TCP). The hook must get a process listening
    /// on the servelet's address again; the supervisor then waits for the
    /// probe to answer. Without a hook, remote restarts fail with
    /// [`DbError::InvalidInput`] — the router cannot exec processes on
    /// other machines by itself.
    pub fn set_remote_respawn(
        &self,
        f: impl Fn(u64, &str) -> DbResult<()> + Send + Sync + 'static,
    ) {
        *self.remote_respawn.write() = Some(Arc::new(f));
    }

    /// Probe every servelet (short control-plane ping, exempt from chaos)
    /// and report per-servelet health in slot order.
    pub fn health(&self) -> Vec<ServeletHealth> {
        let nodes = self.state.read().nodes.clone();
        let probe = self.rpc.read().probe_deadline;
        let mut out = Vec::with_capacity(nodes.len());
        for node in nodes {
            if self
                .health_records
                .lock()
                .get(&node.id)
                .is_some_and(|r| r.restarting)
            {
                let rec = self
                    .health_records
                    .lock()
                    .get(&node.id)
                    .cloned()
                    .unwrap_or_default();
                out.push(ServeletHealth {
                    servelet: node.id,
                    state: HealthState::Restarting,
                    consecutive_failures: rec.consecutive_failures,
                    last_error: rec.last_error,
                });
                continue;
            }
            match call_control(&node, probe, Request::Probe).and_then(Reply::expect_unit) {
                Ok(()) => {
                    let mut recs = self.health_records.lock();
                    let rec = recs.entry(node.id).or_default();
                    rec.consecutive_failures = 0;
                    rec.last_error = None;
                    out.push(ServeletHealth {
                        servelet: node.id,
                        state: HealthState::Alive,
                        consecutive_failures: 0,
                        last_error: None,
                    });
                }
                Err(e) => {
                    let mut recs = self.health_records.lock();
                    let rec = recs.entry(node.id).or_default();
                    rec.consecutive_failures += 1;
                    rec.last_error = Some(e.to_string());
                    out.push(ServeletHealth {
                        servelet: node.id,
                        state: HealthState::Dead,
                        consecutive_failures: rec.consecutive_failures,
                        last_error: rec.last_error.clone(),
                    });
                }
            }
        }
        out
    }

    /// Whether every servelet currently answers its probe.
    pub fn is_fully_healthy(&self) -> bool {
        self.health().iter().all(|h| h.state == HealthState::Alive)
    }

    /// Rebuild servelet `id`'s worker from its durable backend: join the
    /// dead thread (releasing any store lock), reopen the store via the
    /// respawn factory, restore refs if supplied, and swap the fresh
    /// worker into the same slot. Safe on a live servelet too (a bounce).
    ///
    /// Fails with [`DbError::InvalidInput`] if no respawn factory is
    /// installed or the id is unknown; factory errors pass through.
    pub fn restart_servelet(&self, id: u64) -> DbResult<()> {
        // One restart at a time; shared on the rebalance gate so a
        // restart never interleaves with a migration's node traffic.
        let _restart = self.restart_lock.lock();
        let _gate = self.rebalance_gate.read();
        let old = {
            let state = self.state.read();
            state
                .nodes
                .iter()
                .find(|n| n.id == id)
                .cloned()
                .ok_or_else(|| DbError::InvalidInput(format!("no servelet with id {id}")))?
        };
        {
            let mut recs = self.health_records.lock();
            recs.entry(id).or_default().restarting = true;
        }
        let result = if let Some(addr) = old.addr().map(str::to_string) {
            // Remote servelet: ask the installed hook to re-launch the
            // process, then wait until its probe answers. The node itself
            // is kept — it addresses the same endpoint.
            (|| {
                let hook = self.remote_respawn.read().clone().ok_or_else(|| {
                    DbError::InvalidInput(format!(
                        "cannot restart remote servelet {id} ({addr}): no remote respawn \
                         hook installed (Cluster::set_remote_respawn)"
                    ))
                })?;
                hook(id, &addr)?;
                let (probe, deadline) = {
                    let rpc = self.rpc.read();
                    (rpc.probe_deadline, rpc.control_deadline)
                };
                let give_up = std::time::Instant::now() + deadline;
                loop {
                    match call_control(&old, probe, Request::Probe).and_then(Reply::expect_unit) {
                        Ok(()) => return Ok(()),
                        Err(e) if std::time::Instant::now() >= give_up => {
                            return Err(DbError::InvalidInput(format!(
                                "remote servelet {id} ({addr}) did not come back within \
                                 the control deadline: {e}"
                            )))
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(50)),
                    }
                }
            })()
        } else {
            (|| {
                let respawn = self.respawn.read().clone().ok_or_else(|| {
                    DbError::InvalidInput(format!(
                        "cannot restart servelet {id}: no respawn factory installed \
                         (Cluster::set_respawn)"
                    ))
                })?;
                // Join first: drops the old worker's ForkBase and store,
                // releasing e.g. FileStore's advisory lock before reopen.
                shutdown_node(&old);
                let Respawned { store, refs } = respawn(id)?;
                let node = spawn_node(id, store, self.cfg);
                if let Some(refs) = refs {
                    let deadline = self.rpc.read().control_deadline;
                    call_control(&node, deadline, Request::LoadRefs { refs })?.expect_unit()?;
                }
                let mut state = self.state.write();
                match state.nodes.iter().position(|n| n.id == id) {
                    Some(slot) => {
                        state.nodes[slot] = node;
                        Ok(())
                    }
                    None => {
                        drop(state);
                        shutdown_node(&node);
                        Err(DbError::InvalidInput(format!(
                            "servelet {id} was removed during restart"
                        )))
                    }
                }
            })()
        };
        let mut recs = self.health_records.lock();
        let rec = recs.entry(id).or_default();
        rec.restarting = false;
        match &result {
            Ok(()) => {
                rec.consecutive_failures = 0;
                rec.last_error = None;
            }
            Err(e) => rec.last_error = Some(e.to_string()),
        }
        result
    }

    /// One supervision pass: pump the replication ship log, probe
    /// everything, then deal with the dead — promote a replica when the
    /// failover threshold is crossed, otherwise restart in place.
    /// This is the loop body [`Supervisor`] runs on its interval; tests
    /// call it directly for deterministic scheduling.
    pub fn supervise_once(&self) -> SupervisionReport {
        // The supervisor is the async ship pump: replicas catch up every
        // tick without any write blocking on them.
        let _ = self.ship_replication();
        let failover_after = self.failover_threshold();
        let mut report = SupervisionReport::default();
        for h in self.health() {
            match h.state {
                HealthState::Alive => report.alive.push(h.servelet),
                HealthState::Restarting => {}
                HealthState::Dead => {
                    // Past the threshold a primary with a promotable
                    // replica fails over instead of restarting: the slot
                    // swings to the replica and the dead id retires.
                    if failover_after.is_some_and(|t| h.consecutive_failures >= t) {
                        if let Some(rid) = self.try_failover(h.servelet) {
                            report.promoted.push((h.servelet, rid));
                            continue;
                        }
                    }
                    match self.restart_servelet(h.servelet) {
                        Ok(()) => report.restarted.push(h.servelet),
                        Err(e) => report.failed.push((h.servelet, e.to_string())),
                    }
                }
            }
        }
        report
    }
}

/// A background thread running [`Cluster::supervise_once`] on a fixed
/// interval. Stops (and joins) on [`Supervisor::stop`] or drop.
pub struct Supervisor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Start supervising `cluster`, probing (and restarting the dead)
    /// every `interval`.
    pub fn spawn<S: SweepStore + Send + 'static>(
        cluster: Arc<Cluster<S>>,
        interval: Duration,
    ) -> Supervisor {
        Self::spawn_with_tick(cluster, interval, |_| {})
    }

    /// [`Self::spawn`] with an extra per-tick hook, run after each
    /// supervision pass with the cluster in hand. This is how periodic
    /// maintenance that belongs *next to* supervision — the fork-lease
    /// reaper ([`ForkService::reap_expired`](crate::forks::ForkService::reap_expired)),
    /// registry persistence — rides the existing loop instead of
    /// spawning its own thread.
    pub fn spawn_with_tick<S: SweepStore + Send + 'static>(
        cluster: Arc<Cluster<S>>,
        interval: Duration,
        tick: impl Fn(&Cluster<S>) + Send + 'static,
    ) -> Supervisor {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                let _ = cluster.supervise_once();
                tick(&cluster);
                // Sleep in slices so stop() is prompt.
                let mut left = interval;
                while !flag.load(Ordering::Relaxed) && left > Duration::ZERO {
                    let step = left.min(Duration::from_millis(20));
                    std::thread::sleep(step);
                    left = left.saturating_sub(step);
                }
            }
        });
        Supervisor {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the supervision loop and join its thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.halt();
    }
}
