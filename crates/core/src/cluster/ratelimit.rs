//! Per-peer token-bucket rate limiting, shared by the wire server
//! ([`ServeletServer`](super::ServeletServer)) and the REST gateways.
//!
//! One bucket per peer IP address: `burst` tokens capacity, refilled at
//! `per_sec` tokens per second; each admitted request spends one token.
//! A peer with an empty bucket is **shed**, not queued — the caller gets
//! a structured [`DbError::RateLimited`] carrying the earliest time a
//! whole token will be available, which the wire layer maps to
//! `WireError::RateLimited` and the REST layer to `429` +
//! `retry-after`. Shedding at the edge keeps one chatty peer from
//! monopolizing servelet worker threads.
//!
//! Time is passed in, not read, so tests drive the bucket with a fake
//! clock; production callers use [`RateLimiter::check`].

use std::collections::HashMap;
use std::net::IpAddr;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::error::{DbError, DbResult};

/// Keep at most this many peer buckets; beyond it, full (idle) buckets
/// are evicted first. Bounds memory against address-spoofing floods.
const MAX_TRACKED_PEERS: usize = 4096;

/// Admission policy: sustained rate and burst headroom per peer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateLimit {
    /// Sustained tokens (requests) per second per peer.
    pub per_sec: f64,
    /// Bucket capacity: how many requests a quiet peer may burst.
    pub burst: f64,
}

impl RateLimit {
    /// A limit of `per_sec` sustained with `burst` headroom.
    pub fn new(per_sec: f64, burst: f64) -> RateLimit {
        RateLimit { per_sec, burst }
    }
}

struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// Token buckets keyed by peer IP. Cheap to share behind an `Arc`; one
/// lock, touched once per request.
pub struct RateLimiter {
    limit: RateLimit,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl RateLimiter {
    /// A limiter enforcing `limit` independently per peer.
    pub fn new(limit: RateLimit) -> RateLimiter {
        RateLimiter {
            limit,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The policy this limiter enforces.
    pub fn limit(&self) -> RateLimit {
        self.limit
    }

    /// Admit or shed one request from `peer` now.
    pub fn check(&self, peer: IpAddr) -> DbResult<()> {
        self.check_at(peer, Instant::now())
    }

    /// [`Self::check`] with an explicit clock reading (test hook; `now`
    /// readings must be monotone per peer, which `Instant` guarantees).
    pub fn check_at(&self, peer: IpAddr, now: Instant) -> DbResult<()> {
        let mut buckets = self.buckets.lock();
        if buckets.len() >= MAX_TRACKED_PEERS && !buckets.contains_key(&peer) {
            // Evict idle peers (buckets that have refilled to full)
            // rather than grow without bound; an attacker cycling
            // addresses only ever evicts other attackers' idle buckets.
            buckets.retain(|_, b| {
                let elapsed = now.saturating_duration_since(b.refilled).as_secs_f64();
                b.tokens + elapsed * self.limit.per_sec < self.limit.burst
            });
        }
        let bucket = buckets.entry(peer).or_insert(Bucket {
            tokens: self.limit.burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.limit.per_sec).min(self.limit.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            let wait = Duration::from_secs_f64(deficit / self.limit.per_sec.max(f64::MIN_POSITIVE));
            Err(DbError::RateLimited {
                retry_after_ms: (wait.as_millis() as u64).max(1),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn burst_admits_then_sheds_with_retry_hint() {
        let rl = RateLimiter::new(RateLimit::new(10.0, 3.0));
        let t0 = Instant::now();
        for _ in 0..3 {
            rl.check_at(ip(1), t0).unwrap();
        }
        let err = rl.check_at(ip(1), t0).unwrap_err();
        let DbError::RateLimited { retry_after_ms } = err else {
            panic!("expected RateLimited, got {err:?}");
        };
        // One whole token at 10/s is 100ms away.
        assert!(
            (50..=150).contains(&retry_after_ms),
            "retry_after_ms = {retry_after_ms}"
        );
        // Waiting the hinted time admits again.
        rl.check_at(ip(1), t0 + Duration::from_millis(retry_after_ms))
            .unwrap();
    }

    #[test]
    fn refill_caps_at_burst() {
        let rl = RateLimiter::new(RateLimit::new(100.0, 2.0));
        let t0 = Instant::now();
        // Long idle must not bank more than `burst` tokens.
        let later = t0 + Duration::from_secs(60);
        rl.check_at(ip(2), t0).unwrap();
        rl.check_at(ip(2), later).unwrap();
        rl.check_at(ip(2), later).unwrap();
        assert!(rl.check_at(ip(2), later).is_err());
    }

    #[test]
    fn peers_are_limited_independently() {
        let rl = RateLimiter::new(RateLimit::new(1.0, 1.0));
        let t0 = Instant::now();
        rl.check_at(ip(3), t0).unwrap();
        assert!(rl.check_at(ip(3), t0).is_err());
        // A different peer has its own bucket.
        rl.check_at(ip(4), t0).unwrap();
    }

    #[test]
    fn eviction_bounds_tracked_peers() {
        let rl = RateLimiter::new(RateLimit::new(1000.0, 5.0));
        let t0 = Instant::now();
        for i in 0..MAX_TRACKED_PEERS + 100 {
            let peer = IpAddr::V4(Ipv4Addr::from((i as u32).to_be_bytes()));
            // Advance time so earlier buckets refill to full and become
            // evictable.
            rl.check_at(peer, t0 + Duration::from_millis(i as u64 * 10))
                .unwrap();
        }
        assert!(rl.buckets.lock().len() <= MAX_TRACKED_PEERS + 1);
    }

    #[test]
    fn error_carries_stable_code() {
        let rl = RateLimiter::new(RateLimit::new(1.0, 1.0));
        let t0 = Instant::now();
        rl.check_at(ip(5), t0).unwrap();
        assert_eq!(rl.check_at(ip(5), t0).unwrap_err().code(), "rate_limited");
    }
}
