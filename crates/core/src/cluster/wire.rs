//! The serializable RPC surface and versioned wire format of the cluster.
//!
//! Every routed verb and every control-plane verb (probe, migration
//! export/import, refs restore) is a [`Request`] variant with a stable
//! one-byte tag; every answer is a [`Reply`]. The same
//! [`dispatch`] function executes a request against a servelet's
//! [`ForkBase`] whether the request arrived over the in-process channel
//! transport or over TCP — the two transports differ only in how bytes
//! move, never in what a verb does.
//!
//! # Frame layout (`PROTOCOL.md` is the normative spec)
//!
//! ```text
//! frame := len(u32 LE) || version(u8) || body || crc32(u32 LE)
//! ```
//!
//! * `len` counts everything after itself: `1 + body.len() + 4`.
//! * `version` is [`WIRE_VERSION`] on anything this build sends; on
//!   receive, any version in `MIN_WIRE_VERSION..=WIRE_VERSION` is
//!   accepted and replies are framed with the version the request
//!   carried, so an old router keeps working against upgraded servelets
//!   (upgrade servelets first — see the rollout rules in `PROTOCOL.md`).
//!   Anything outside the range is rejected before the body is parsed.
//! * `crc32` (same IEEE polynomial as the segment files) covers
//!   `version || body`, so torn writes and bit-rot are detected at the
//!   framing layer — the same defense-in-depth split the chunk store
//!   uses (CRC for framing, SHA-256 for end-to-end content).
//! * `len` is capped at [`MAX_FRAME_LEN`] and the reader allocates
//!   proportionally to bytes actually received, so a hostile length
//!   prefix cannot OOM a servelet.
//!
//! # Stability
//!
//! Tags, field order, and integer endianness are **frozen wire format**:
//! changing any of them is a protocol break and must bump
//! [`WIRE_VERSION`]. The golden-bytes tests at the bottom of this file
//! pin the encoding; an accidental re-tag fails the build, not a
//! production handshake.

use std::io::Read;

use bytes::Bytes;
use forkbase_crypto::hash::HASH_LEN;
use forkbase_crypto::Hash;
use forkbase_store::crc::crc32;
use forkbase_store::{ChunkStore, SweepStore};
use forkbase_types::Value;

use crate::api::{BatchOutcome, CommitResult, DbStat, GetResult, PutOptions, VersionSpec};
use crate::bundle::{export_bundle_keys, import_bundle, import_bundle_replace};
use crate::db::ForkBase;
use crate::error::{DbError, DbResult};
use crate::fnode::Uid;
use crate::forks::{DiffSummary, MapEntryDelta};
use crate::gc::GcReport;

use super::MapPage;

/// The wire protocol version this build speaks (stamps on every frame it
/// sends). Version 2 added the `Replicate` control verb (`0x25`);
/// version 3 added the fork-sandbox verbs (`GetAt`/`BranchFromVersion`/
/// `DiffSpecs`/`MapRangeAt`/`DeleteBranch`, `0x26..=0x2A`), the `Diff`
/// reply (`0x8C`), and the structured `rate_limited` error (`0x0C`).
/// Earlier surfaces are unchanged, so down-level frames are still
/// accepted (see [`MIN_WIRE_VERSION`]).
pub const WIRE_VERSION: u8 = 3;

/// The oldest wire protocol version this build still accepts on receive.
/// Servelets reply in the version the request carried, so a router at any
/// version in `MIN_WIRE_VERSION..=WIRE_VERSION` interoperates. The
/// rollout rule this enables: upgrade servelets first, routers second
/// (`PROTOCOL.md` § Compatibility).
pub const MIN_WIRE_VERSION: u8 = 1;

/// Upper bound on one frame's `len` field (version + body + CRC).
/// Migration bundles are the largest payloads; 256 MiB comfortably holds
/// any bundle this codebase produces while bounding what a hostile peer
/// can make a servelet allocate.
pub const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

// ----------------------------------------------------------------------
// Frame codec
// ----------------------------------------------------------------------

/// Why a frame failed to decode.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying read failed (includes timeouts — inspect the
    /// wrapped error's [`std::io::Error::kind`]).
    Io(std::io::Error),
    /// The stream ended mid-frame.
    Torn,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// The CRC tail does not match the received bytes.
    BadCrc,
    /// The peer speaks a different protocol version.
    BadVersion(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Torn => write!(f, "torn frame: stream ended mid-frame"),
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            FrameError::BadCrc => write!(f, "frame CRC mismatch"),
            FrameError::BadVersion(v) => {
                write!(
                    f,
                    "peer speaks wire version {v}, this build accepts \
                     {MIN_WIRE_VERSION}..={WIRE_VERSION}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode `body` as one wire frame stamped [`WIRE_VERSION`].
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    encode_frame_with_version(WIRE_VERSION, body)
}

/// Encode `body` as one wire frame stamped `version`. Servers use this to
/// reply in the version the request carried, so a down-level router can
/// parse the answer.
pub fn encode_frame_with_version(version: u8, body: &[u8]) -> Vec<u8> {
    debug_assert!(
        (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version),
        "framing an unsupported wire version {version}"
    );
    let len = 1 + body.len() + 4;
    assert!(len <= MAX_FRAME_LEN as usize, "frame body too large");
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(version);
    out.extend_from_slice(body);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Read one frame from `r`, returning the body (version and CRC already
/// validated and stripped). See [`read_frame_versioned`] when the caller
/// needs the version the frame was stamped with.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    read_frame_versioned(r).map(|(_, body)| body)
}

/// Read one frame from `r`, returning `(version, body)` with the CRC
/// already validated and stripped. Any version in
/// `MIN_WIRE_VERSION..=WIRE_VERSION` is accepted.
///
/// Allocation is bounded: the length prefix is checked against
/// [`MAX_FRAME_LEN`] before any allocation, and the buffer grows with
/// bytes actually received (via [`Read::take`]), so a hostile peer
/// cannot force a large allocation by sending a large prefix alone.
pub fn read_frame_versioned(r: &mut impl Read) -> Result<(u8, Vec<u8>), FrameError> {
    let mut len_buf = [0u8; 4];
    read_exact_or_torn(r, &mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    if len < 5 {
        // version + at least an empty body + crc
        return Err(FrameError::Torn);
    }
    let mut buf = Vec::with_capacity((len as usize).min(64 * 1024));
    let got = r
        .take(u64::from(len))
        .read_to_end(&mut buf)
        .map_err(FrameError::Io)?;
    if got != len as usize {
        return Err(FrameError::Torn);
    }
    let (payload, crc_tail) = buf.split_at(buf.len() - 4);
    let want = match crc_tail.try_into() {
        Ok(tail) => u32::from_le_bytes(tail),
        Err(_) => return Err(FrameError::Torn),
    };
    if crc32(payload) != want {
        return Err(FrameError::BadCrc);
    }
    let version = payload[0];
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(FrameError::BadVersion(version));
    }
    buf.truncate(buf.len() - 4);
    buf.remove(0);
    Ok((version, buf))
}

fn read_exact_or_torn(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(FrameError::Torn),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Body primitives
// ----------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(u8::from(b));
}

fn put_hash(out: &mut Vec<u8>, h: &Hash) {
    out.extend_from_slice(h.as_bytes());
}

fn put_opt_bytes(out: &mut Vec<u8>, b: &Option<Bytes>) {
    match b {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            put_bytes(out, b);
        }
    }
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    put_bytes(out, &v.encode());
}

fn put_opts(out: &mut Vec<u8>, o: &PutOptions) {
    put_str(out, &o.branch);
    put_str(out, &o.author);
    put_str(out, &o.message);
}

const SPEC_BRANCH: u8 = 0x01;
const SPEC_VERSION: u8 = 0x02;

fn put_spec(out: &mut Vec<u8>, spec: &VersionSpec) {
    match spec {
        VersionSpec::Branch(b) => {
            out.push(SPEC_BRANCH);
            put_str(out, b);
        }
        VersionSpec::Version(uid) => {
            out.push(SPEC_VERSION);
            put_hash(out, uid);
        }
    }
}

/// A bounds-checked reader over a fully received frame body. Every
/// length is validated against the remaining buffer before use, so no
/// decode allocates beyond the frame it was handed.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }

    fn err(what: &str) -> DbError {
        DbError::InvalidInput(format!("wire decode: {what}"))
    }

    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(Self::err("truncated body"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> DbResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DbResult<u32> {
        match self.take(4)?.try_into() {
            Ok(b) => Ok(u32::from_le_bytes(b)),
            Err(_) => Err(Self::err("truncated body")),
        }
    }

    fn u64(&mut self) -> DbResult<u64> {
        match self.take(8)?.try_into() {
            Ok(b) => Ok(u64::from_le_bytes(b)),
            Err(_) => Err(Self::err("truncated body")),
        }
    }

    fn bool(&mut self) -> DbResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Self::err(&format!("bad bool byte {b:#04x}"))),
        }
    }

    fn bytes(&mut self) -> DbResult<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn string(&mut self) -> DbResult<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| Self::err("non-UTF-8 string"))
    }

    fn hash(&mut self) -> DbResult<Hash> {
        let b = self.take(HASH_LEN)?;
        Hash::from_slice(b).ok_or_else(|| Self::err("bad hash length"))
    }

    fn opt_bytes(&mut self) -> DbResult<Option<Bytes>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(Bytes::copy_from_slice(self.bytes()?))),
            b => Err(Self::err(&format!("bad option byte {b:#04x}"))),
        }
    }

    fn value(&mut self) -> DbResult<Value> {
        let b = self.bytes()?;
        Value::decode(b).map_err(DbError::Value)
    }

    fn opts(&mut self) -> DbResult<PutOptions> {
        Ok(PutOptions {
            branch: self.string()?,
            author: self.string()?,
            message: self.string()?,
        })
    }

    fn spec(&mut self) -> DbResult<VersionSpec> {
        match self.u8()? {
            SPEC_BRANCH => Ok(VersionSpec::Branch(self.string()?)),
            SPEC_VERSION => Ok(VersionSpec::Version(self.hash()?)),
            t => Err(Self::err(&format!("bad version-spec tag {t:#04x}"))),
        }
    }

    /// Element count for a vec about to be decoded. Bounded: each element
    /// encodes to ≥ 1 byte, so a count beyond the remaining buffer is
    /// rejected before any allocation.
    fn count(&mut self) -> DbResult<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(Self::err("implausible element count"));
        }
        Ok(n)
    }

    fn done(&self) -> DbResult<()> {
        if self.pos != self.buf.len() {
            return Err(Self::err("trailing bytes after body"));
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Requests
// ----------------------------------------------------------------------

/// One operation of a routed [`Request::Batch`].
#[derive(Clone, Debug, PartialEq)]
pub enum WireOp {
    /// Stage a put of `value` on `(key, opts.branch)`.
    Put {
        /// Target key.
        key: String,
        /// The value to commit.
        value: Value,
        /// Branch/author/message options.
        opts: PutOptions,
    },
    /// Stage a branch deletion.
    DeleteBranch {
        /// Target key.
        key: String,
        /// Branch to delete.
        branch: String,
    },
}

/// Every verb a servelet serves, data plane and control plane alike.
///
/// Tag bytes (frozen): data plane `0x01..=0x0B`, control plane
/// `0x20..=0x25`, spec-addressed fork verbs `0x26..=0x2A` (wire
/// version 3). See `PROTOCOL.md`.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Control: liveness probe (no work, short deadline).
    Probe,
    /// `Put` a value on the owning servelet.
    Put {
        /// Target key.
        key: String,
        /// The value to commit.
        value: Value,
        /// Branch/author/message options.
        opts: PutOptions,
    },
    /// `Put` a blob built from raw content on the owning servelet.
    PutBlob {
        /// Target key.
        key: String,
        /// Raw blob content (chunked on the servelet).
        content: Bytes,
        /// Branch/author/message options.
        opts: PutOptions,
    },
    /// `Get` the head of `key@branch`.
    Get {
        /// Target key.
        key: String,
        /// Branch whose head to read.
        branch: String,
    },
    /// Read many branch heads in one consistent call.
    Heads {
        /// `(key, branch)` pairs.
        pairs: Vec<(String, String)>,
    },
    /// Database statistics.
    Stat,
    /// One bounded page of a map range scan.
    MapRange {
        /// Target key.
        key: String,
        /// Branch whose head to scan.
        branch: String,
        /// Inclusive start bound, if any.
        start: Option<Bytes>,
        /// Exclusive end bound, if any.
        end: Option<Bytes>,
        /// Page size limit.
        limit: u64,
    },
    /// List every key this servelet holds.
    ListKeys,
    /// Stored chunk-payload bytes.
    StoredBytes,
    /// Run a garbage-collection pass.
    Gc,
    /// A multi-op write batch, committed atomically on this servelet.
    Batch {
        /// The staged operations, in batch order.
        ops: Vec<WireOp>,
    },
    /// Control: export the full history of `keys` as a bundle
    /// (migration copy phase).
    ExportBundle {
        /// Keys whose branches to export.
        keys: Vec<String>,
    },
    /// Control: import a bundle produced by [`Request::ExportBundle`].
    /// Every chunk is re-hashed and every history walked before a ref
    /// installs — the wire inherits the bundle codec's tamper evidence.
    ImportBundle {
        /// The bundle bytes.
        bundle: Vec<u8>,
    },
    /// Control: drop the refs of `keys` (migration cutover).
    ForgetKeys {
        /// Keys to forget.
        keys: Vec<String>,
    },
    /// Control: restore persisted branch heads (supervised restart).
    LoadRefs {
        /// The refs text ([`ForkBase::dump_refs`] format).
        refs: String,
    },
    /// Control: dump branch heads for persistence.
    DumpRefs,
    /// Control: apply a replication bundle with **replace** semantics —
    /// after import the receiver's branch set for every key in the
    /// bundle exactly mirrors the sender's, including branches the
    /// sender deleted. Same tamper evidence as
    /// [`Request::ImportBundle`]; unlike it, re-applying the same
    /// bundle (or an older one out of order) converges instead of
    /// erroring, which is what makes replication shipping retryable.
    /// Wire version 2.
    Replicate {
        /// The bundle bytes.
        bundle: Vec<u8>,
    },
    /// `Get` the value at an arbitrary [`VersionSpec`] (branch head *or*
    /// pinned version uid). The fork service reads untouched keys through
    /// the fork's base spec with this. Wire version 3.
    GetAt {
        /// Target key.
        key: String,
        /// Branch head or version uid to read.
        spec: VersionSpec,
    },
    /// Create `new_branch` pointing at an existing version of `key` —
    /// the lazy copy-on-write step of a fork's first write to a key.
    /// Wire version 3.
    BranchFromVersion {
        /// Target key.
        key: String,
        /// The version the new branch starts from.
        uid: Uid,
        /// Name of the branch to create.
        new_branch: String,
    },
    /// Drop a single branch of `key` (fork reaping). Wire version 3.
    DeleteBranch {
        /// Target key.
        key: String,
        /// Branch to delete.
        branch: String,
    },
    /// Structural diff between two versions of `key`, summarized for the
    /// wire (entry deltas are sampled, counts are exact). Wire version 3.
    DiffSpecs {
        /// Target key.
        key: String,
        /// The "from" side.
        from: VersionSpec,
        /// The "to" side.
        to: VersionSpec,
    },
    /// One bounded page of a map range scan at an arbitrary
    /// [`VersionSpec`] (the spec-generic [`Request::MapRange`]).
    /// Wire version 3.
    MapRangeAt {
        /// Target key.
        key: String,
        /// Branch head or version uid to scan.
        spec: VersionSpec,
        /// Inclusive start bound, if any.
        start: Option<Bytes>,
        /// Exclusive end bound, if any.
        end: Option<Bytes>,
        /// Page size limit.
        limit: u64,
    },
}

const REQ_PROBE: u8 = 0x01;
const REQ_PUT: u8 = 0x02;
const REQ_PUT_BLOB: u8 = 0x03;
const REQ_GET: u8 = 0x04;
const REQ_HEADS: u8 = 0x05;
const REQ_STAT: u8 = 0x06;
const REQ_MAP_RANGE: u8 = 0x07;
const REQ_LIST_KEYS: u8 = 0x08;
const REQ_STORED_BYTES: u8 = 0x09;
const REQ_GC: u8 = 0x0A;
const REQ_BATCH: u8 = 0x0B;
const REQ_EXPORT_BUNDLE: u8 = 0x20;
const REQ_IMPORT_BUNDLE: u8 = 0x21;
const REQ_FORGET_KEYS: u8 = 0x22;
const REQ_LOAD_REFS: u8 = 0x23;
const REQ_DUMP_REFS: u8 = 0x24;
const REQ_REPLICATE: u8 = 0x25;
const REQ_GET_AT: u8 = 0x26;
const REQ_BRANCH_FROM_VERSION: u8 = 0x27;
const REQ_DELETE_BRANCH: u8 = 0x28;
const REQ_DIFF_SPECS: u8 = 0x29;
const REQ_MAP_RANGE_AT: u8 = 0x2A;

const OP_PUT: u8 = 0x01;
const OP_DELETE_BRANCH: u8 = 0x02;

impl Request {
    /// Whether retrying this request cannot change state (the
    /// ambiguous-write rule keys off this).
    pub fn idempotent(&self) -> bool {
        match self {
            Request::Probe
            | Request::Get { .. }
            | Request::Heads { .. }
            | Request::Stat
            | Request::MapRange { .. }
            | Request::ListKeys
            | Request::StoredBytes
            | Request::GetAt { .. }
            | Request::DiffSpecs { .. }
            | Request::MapRangeAt { .. }
            | Request::DumpRefs => true,
            // Replace-import converges: applying the same bundle twice
            // leaves the same refs, so a retry after an ambiguous
            // outcome cannot corrupt the replica.
            Request::Replicate { .. } => true,
            Request::Put { .. }
            | Request::PutBlob { .. }
            | Request::Gc
            | Request::Batch { .. }
            | Request::ExportBundle { .. }
            | Request::ImportBundle { .. }
            | Request::ForgetKeys { .. }
            | Request::LoadRefs { .. }
            | Request::BranchFromVersion { .. }
            | Request::DeleteBranch { .. } => false,
        }
    }

    /// Encode as a frame body (tag + fields; no frame envelope).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Probe => out.push(REQ_PROBE),
            Request::Put { key, value, opts } => {
                out.push(REQ_PUT);
                put_str(&mut out, key);
                put_value(&mut out, value);
                put_opts(&mut out, opts);
            }
            Request::PutBlob { key, content, opts } => {
                out.push(REQ_PUT_BLOB);
                put_str(&mut out, key);
                put_bytes(&mut out, content);
                put_opts(&mut out, opts);
            }
            Request::Get { key, branch } => {
                out.push(REQ_GET);
                put_str(&mut out, key);
                put_str(&mut out, branch);
            }
            Request::Heads { pairs } => {
                out.push(REQ_HEADS);
                put_u32(&mut out, pairs.len() as u32);
                for (k, b) in pairs {
                    put_str(&mut out, k);
                    put_str(&mut out, b);
                }
            }
            Request::Stat => out.push(REQ_STAT),
            Request::MapRange {
                key,
                branch,
                start,
                end,
                limit,
            } => {
                out.push(REQ_MAP_RANGE);
                put_str(&mut out, key);
                put_str(&mut out, branch);
                put_opt_bytes(&mut out, start);
                put_opt_bytes(&mut out, end);
                put_u64(&mut out, *limit);
            }
            Request::ListKeys => out.push(REQ_LIST_KEYS),
            Request::StoredBytes => out.push(REQ_STORED_BYTES),
            Request::Gc => out.push(REQ_GC),
            Request::Batch { ops } => {
                out.push(REQ_BATCH);
                put_u32(&mut out, ops.len() as u32);
                for op in ops {
                    match op {
                        WireOp::Put { key, value, opts } => {
                            out.push(OP_PUT);
                            put_str(&mut out, key);
                            put_value(&mut out, value);
                            put_opts(&mut out, opts);
                        }
                        WireOp::DeleteBranch { key, branch } => {
                            out.push(OP_DELETE_BRANCH);
                            put_str(&mut out, key);
                            put_str(&mut out, branch);
                        }
                    }
                }
            }
            Request::ExportBundle { keys } => {
                out.push(REQ_EXPORT_BUNDLE);
                put_u32(&mut out, keys.len() as u32);
                for k in keys {
                    put_str(&mut out, k);
                }
            }
            Request::ImportBundle { bundle } => {
                out.push(REQ_IMPORT_BUNDLE);
                put_bytes(&mut out, bundle);
            }
            Request::ForgetKeys { keys } => {
                out.push(REQ_FORGET_KEYS);
                put_u32(&mut out, keys.len() as u32);
                for k in keys {
                    put_str(&mut out, k);
                }
            }
            Request::LoadRefs { refs } => {
                out.push(REQ_LOAD_REFS);
                put_str(&mut out, refs);
            }
            Request::DumpRefs => out.push(REQ_DUMP_REFS),
            Request::Replicate { bundle } => {
                out.push(REQ_REPLICATE);
                put_bytes(&mut out, bundle);
            }
            Request::GetAt { key, spec } => {
                out.push(REQ_GET_AT);
                put_str(&mut out, key);
                put_spec(&mut out, spec);
            }
            Request::BranchFromVersion {
                key,
                uid,
                new_branch,
            } => {
                out.push(REQ_BRANCH_FROM_VERSION);
                put_str(&mut out, key);
                put_hash(&mut out, uid);
                put_str(&mut out, new_branch);
            }
            Request::DeleteBranch { key, branch } => {
                out.push(REQ_DELETE_BRANCH);
                put_str(&mut out, key);
                put_str(&mut out, branch);
            }
            Request::DiffSpecs { key, from, to } => {
                out.push(REQ_DIFF_SPECS);
                put_str(&mut out, key);
                put_spec(&mut out, from);
                put_spec(&mut out, to);
            }
            Request::MapRangeAt {
                key,
                spec,
                start,
                end,
                limit,
            } => {
                out.push(REQ_MAP_RANGE_AT);
                put_str(&mut out, key);
                put_spec(&mut out, spec);
                put_opt_bytes(&mut out, start);
                put_opt_bytes(&mut out, end);
                put_u64(&mut out, *limit);
            }
        }
        out
    }

    /// Decode a frame body produced by [`Self::encode`].
    pub fn decode(body: &[u8]) -> DbResult<Request> {
        let mut rd = Rd::new(body);
        let req = match rd.u8()? {
            REQ_PROBE => Request::Probe,
            REQ_PUT => Request::Put {
                key: rd.string()?,
                value: rd.value()?,
                opts: rd.opts()?,
            },
            REQ_PUT_BLOB => Request::PutBlob {
                key: rd.string()?,
                content: Bytes::copy_from_slice(rd.bytes()?),
                opts: rd.opts()?,
            },
            REQ_GET => Request::Get {
                key: rd.string()?,
                branch: rd.string()?,
            },
            REQ_HEADS => {
                let n = rd.count()?;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push((rd.string()?, rd.string()?));
                }
                Request::Heads { pairs }
            }
            REQ_STAT => Request::Stat,
            REQ_MAP_RANGE => Request::MapRange {
                key: rd.string()?,
                branch: rd.string()?,
                start: rd.opt_bytes()?,
                end: rd.opt_bytes()?,
                limit: rd.u64()?,
            },
            REQ_LIST_KEYS => Request::ListKeys,
            REQ_STORED_BYTES => Request::StoredBytes,
            REQ_GC => Request::Gc,
            REQ_BATCH => {
                let n = rd.count()?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(match rd.u8()? {
                        OP_PUT => WireOp::Put {
                            key: rd.string()?,
                            value: rd.value()?,
                            opts: rd.opts()?,
                        },
                        OP_DELETE_BRANCH => WireOp::DeleteBranch {
                            key: rd.string()?,
                            branch: rd.string()?,
                        },
                        t => return Err(Rd::err(&format!("unknown batch op tag {t:#04x}"))),
                    });
                }
                Request::Batch { ops }
            }
            REQ_EXPORT_BUNDLE => {
                let n = rd.count()?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(rd.string()?);
                }
                Request::ExportBundle { keys }
            }
            REQ_IMPORT_BUNDLE => Request::ImportBundle {
                bundle: rd.bytes()?.to_vec(),
            },
            REQ_FORGET_KEYS => {
                let n = rd.count()?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(rd.string()?);
                }
                Request::ForgetKeys { keys }
            }
            REQ_LOAD_REFS => Request::LoadRefs { refs: rd.string()? },
            REQ_DUMP_REFS => Request::DumpRefs,
            REQ_REPLICATE => Request::Replicate {
                bundle: rd.bytes()?.to_vec(),
            },
            REQ_GET_AT => Request::GetAt {
                key: rd.string()?,
                spec: rd.spec()?,
            },
            REQ_BRANCH_FROM_VERSION => Request::BranchFromVersion {
                key: rd.string()?,
                uid: rd.hash()?,
                new_branch: rd.string()?,
            },
            REQ_DELETE_BRANCH => Request::DeleteBranch {
                key: rd.string()?,
                branch: rd.string()?,
            },
            REQ_DIFF_SPECS => Request::DiffSpecs {
                key: rd.string()?,
                from: rd.spec()?,
                to: rd.spec()?,
            },
            REQ_MAP_RANGE_AT => Request::MapRangeAt {
                key: rd.string()?,
                spec: rd.spec()?,
                start: rd.opt_bytes()?,
                end: rd.opt_bytes()?,
                limit: rd.u64()?,
            },
            t => return Err(Rd::err(&format!("unknown request tag {t:#04x}"))),
        };
        rd.done()?;
        Ok(req)
    }
}

// ----------------------------------------------------------------------
// Errors on the wire
// ----------------------------------------------------------------------

/// A [`DbError`] flattened for the wire. Variants whose fields survive a
/// round trip map 1:1; the rest (store/tree/value internals, merge
/// conflict lists) travel as [`WireError::Remote`] carrying the original
/// stable [`DbError::code`] plus the rendered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// `no_such_key`.
    NoSuchKey {
        /// The key queried.
        key: String,
    },
    /// `no_such_branch`.
    NoSuchBranch {
        /// The key queried.
        key: String,
        /// The missing branch.
        branch: String,
    },
    /// `no_such_version`.
    NoSuchVersion {
        /// The missing uid.
        uid: Uid,
    },
    /// `branch_exists`.
    BranchExists {
        /// The key.
        key: String,
        /// The already-present branch.
        branch: String,
    },
    /// `no_common_ancestor`.
    NoCommonAncestor {
        /// First version.
        a: Uid,
        /// Second version.
        b: Uid,
    },
    /// `tamper_detected`.
    TamperDetected {
        /// What failed validation.
        message: String,
    },
    /// `servelet_unavailable`.
    ServeletUnavailable {
        /// Stable id of the unreachable servelet.
        servelet: u64,
    },
    /// `servelet_timeout`.
    ServeletTimeout {
        /// Stable id of the servelet that missed its deadline.
        servelet: u64,
    },
    /// `permission_denied`.
    PermissionDenied {
        /// Why.
        message: String,
    },
    /// `invalid_input`.
    InvalidInput {
        /// Why.
        message: String,
    },
    /// `rate_limited` (wire version 3).
    RateLimited {
        /// Suggested wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// Any error without a richer wire form; `code` is the original
    /// stable [`DbError::code`].
    Remote {
        /// The original stable error code.
        code: String,
        /// The rendered error message.
        message: String,
    },
}

const ERR_NO_SUCH_KEY: u8 = 0x01;
const ERR_NO_SUCH_BRANCH: u8 = 0x02;
const ERR_NO_SUCH_VERSION: u8 = 0x03;
const ERR_BRANCH_EXISTS: u8 = 0x04;
const ERR_NO_COMMON_ANCESTOR: u8 = 0x05;
const ERR_TAMPER_DETECTED: u8 = 0x06;
const ERR_SERVELET_UNAVAILABLE: u8 = 0x07;
const ERR_SERVELET_TIMEOUT: u8 = 0x08;
const ERR_PERMISSION_DENIED: u8 = 0x09;
const ERR_INVALID_INPUT: u8 = 0x0A;
const ERR_REMOTE: u8 = 0x0B;
const ERR_RATE_LIMITED: u8 = 0x0C;

impl From<&DbError> for WireError {
    fn from(e: &DbError) -> WireError {
        match e {
            DbError::NoSuchKey(key) => WireError::NoSuchKey { key: key.clone() },
            DbError::NoSuchBranch { key, branch } => WireError::NoSuchBranch {
                key: key.clone(),
                branch: branch.clone(),
            },
            DbError::NoSuchVersion(uid) => WireError::NoSuchVersion { uid: *uid },
            DbError::BranchExists { key, branch } => WireError::BranchExists {
                key: key.clone(),
                branch: branch.clone(),
            },
            DbError::NoCommonAncestor(a, b) => WireError::NoCommonAncestor { a: *a, b: *b },
            DbError::TamperDetected(m) => WireError::TamperDetected { message: m.clone() },
            DbError::ServeletUnavailable { servelet } => WireError::ServeletUnavailable {
                servelet: *servelet,
            },
            DbError::ServeletTimeout { servelet } => WireError::ServeletTimeout {
                servelet: *servelet,
            },
            DbError::PermissionDenied(m) => WireError::PermissionDenied { message: m.clone() },
            DbError::InvalidInput(m) => WireError::InvalidInput { message: m.clone() },
            DbError::RateLimited { retry_after_ms } => WireError::RateLimited {
                retry_after_ms: *retry_after_ms,
            },
            other => WireError::Remote {
                code: other.code().to_string(),
                message: other.to_string(),
            },
        }
    }
}

impl WireError {
    /// Reconstruct the [`DbError`] this wire error carries.
    pub fn into_db(self) -> DbError {
        match self {
            WireError::NoSuchKey { key } => DbError::NoSuchKey(key),
            WireError::NoSuchBranch { key, branch } => DbError::NoSuchBranch { key, branch },
            WireError::NoSuchVersion { uid } => DbError::NoSuchVersion(uid),
            WireError::BranchExists { key, branch } => DbError::BranchExists { key, branch },
            WireError::NoCommonAncestor { a, b } => DbError::NoCommonAncestor(a, b),
            WireError::TamperDetected { message } => DbError::TamperDetected(message),
            WireError::ServeletUnavailable { servelet } => {
                DbError::ServeletUnavailable { servelet }
            }
            WireError::ServeletTimeout { servelet } => DbError::ServeletTimeout { servelet },
            WireError::PermissionDenied { message } => DbError::PermissionDenied(message),
            WireError::InvalidInput { message } => DbError::InvalidInput(message),
            WireError::RateLimited { retry_after_ms } => DbError::RateLimited { retry_after_ms },
            WireError::Remote { code, message } => DbError::Remote { code, message },
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            WireError::NoSuchKey { key } => {
                out.push(ERR_NO_SUCH_KEY);
                put_str(out, key);
            }
            WireError::NoSuchBranch { key, branch } => {
                out.push(ERR_NO_SUCH_BRANCH);
                put_str(out, key);
                put_str(out, branch);
            }
            WireError::NoSuchVersion { uid } => {
                out.push(ERR_NO_SUCH_VERSION);
                put_hash(out, uid);
            }
            WireError::BranchExists { key, branch } => {
                out.push(ERR_BRANCH_EXISTS);
                put_str(out, key);
                put_str(out, branch);
            }
            WireError::NoCommonAncestor { a, b } => {
                out.push(ERR_NO_COMMON_ANCESTOR);
                put_hash(out, a);
                put_hash(out, b);
            }
            WireError::TamperDetected { message } => {
                out.push(ERR_TAMPER_DETECTED);
                put_str(out, message);
            }
            WireError::ServeletUnavailable { servelet } => {
                out.push(ERR_SERVELET_UNAVAILABLE);
                put_u64(out, *servelet);
            }
            WireError::ServeletTimeout { servelet } => {
                out.push(ERR_SERVELET_TIMEOUT);
                put_u64(out, *servelet);
            }
            WireError::PermissionDenied { message } => {
                out.push(ERR_PERMISSION_DENIED);
                put_str(out, message);
            }
            WireError::InvalidInput { message } => {
                out.push(ERR_INVALID_INPUT);
                put_str(out, message);
            }
            WireError::RateLimited { retry_after_ms } => {
                out.push(ERR_RATE_LIMITED);
                put_u64(out, *retry_after_ms);
            }
            WireError::Remote { code, message } => {
                out.push(ERR_REMOTE);
                put_str(out, code);
                put_str(out, message);
            }
        }
    }

    fn decode_from(rd: &mut Rd<'_>) -> DbResult<WireError> {
        Ok(match rd.u8()? {
            ERR_NO_SUCH_KEY => WireError::NoSuchKey { key: rd.string()? },
            ERR_NO_SUCH_BRANCH => WireError::NoSuchBranch {
                key: rd.string()?,
                branch: rd.string()?,
            },
            ERR_NO_SUCH_VERSION => WireError::NoSuchVersion { uid: rd.hash()? },
            ERR_BRANCH_EXISTS => WireError::BranchExists {
                key: rd.string()?,
                branch: rd.string()?,
            },
            ERR_NO_COMMON_ANCESTOR => WireError::NoCommonAncestor {
                a: rd.hash()?,
                b: rd.hash()?,
            },
            ERR_TAMPER_DETECTED => WireError::TamperDetected {
                message: rd.string()?,
            },
            ERR_SERVELET_UNAVAILABLE => WireError::ServeletUnavailable {
                servelet: rd.u64()?,
            },
            ERR_SERVELET_TIMEOUT => WireError::ServeletTimeout {
                servelet: rd.u64()?,
            },
            ERR_PERMISSION_DENIED => WireError::PermissionDenied {
                message: rd.string()?,
            },
            ERR_INVALID_INPUT => WireError::InvalidInput {
                message: rd.string()?,
            },
            ERR_RATE_LIMITED => WireError::RateLimited {
                retry_after_ms: rd.u64()?,
            },
            ERR_REMOTE => WireError::Remote {
                code: rd.string()?,
                message: rd.string()?,
            },
            t => return Err(Rd::err(&format!("unknown error tag {t:#04x}"))),
        })
    }
}

// ----------------------------------------------------------------------
// Replies
// ----------------------------------------------------------------------

/// Every answer a servelet returns. Tag bytes (frozen): `0x80..=0x8C`,
/// errors `0xEE`.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Success with no payload.
    Unit,
    /// A commit landed.
    Committed(CommitResult),
    /// A `Get` result.
    Got(GetResult),
    /// Branch heads, in request order.
    Uids(Vec<Uid>),
    /// Database statistics.
    Stat(DbStat),
    /// One page of a map range scan.
    Page(MapPage),
    /// Key listing.
    Keys(Vec<String>),
    /// A single counter.
    Count(u64),
    /// A garbage-collection report.
    Gc(GcReport),
    /// Per-op outcomes of a write batch, in batch order.
    Outcomes(Vec<BatchOutcome>),
    /// Raw bytes (bundle export).
    Blob(Vec<u8>),
    /// Text (refs dump).
    Text(String),
    /// A structural diff summary (wire version 3).
    Diff(DiffSummary),
    /// The request failed; the error crossed the wire.
    Err(WireError),
}

const REP_UNIT: u8 = 0x80;
const REP_COMMITTED: u8 = 0x81;
const REP_GOT: u8 = 0x82;
const REP_UIDS: u8 = 0x83;
const REP_STAT: u8 = 0x84;
const REP_PAGE: u8 = 0x85;
const REP_KEYS: u8 = 0x86;
const REP_COUNT: u8 = 0x87;
const REP_GC: u8 = 0x88;
const REP_OUTCOMES: u8 = 0x89;
const REP_BLOB: u8 = 0x8A;
const REP_TEXT: u8 = 0x8B;
const REP_DIFF: u8 = 0x8C;
const REP_ERR: u8 = 0xEE;

const DIFF_IDENTICAL: u8 = 0x01;
const DIFF_PRIMITIVE: u8 = 0x02;
const DIFF_MAP: u8 = 0x03;
const DIFF_CHUNKED: u8 = 0x04;

fn put_diff(out: &mut Vec<u8>, d: &DiffSummary) {
    match d {
        DiffSummary::Identical => out.push(DIFF_IDENTICAL),
        DiffSummary::Primitive { from, to } => {
            out.push(DIFF_PRIMITIVE);
            put_value(out, from);
            put_value(out, to);
        }
        DiffSummary::Map {
            added,
            removed,
            modified,
            entries,
        } => {
            out.push(DIFF_MAP);
            put_u64(out, *added);
            put_u64(out, *removed);
            put_u64(out, *modified);
            put_u32(out, entries.len() as u32);
            for e in entries {
                put_bytes(out, &e.key);
                put_opt_bytes(out, &e.from);
                put_opt_bytes(out, &e.to);
            }
        }
        DiffSummary::Chunked {
            from_len,
            to_len,
            shared_chunks,
            shared_bytes,
            from_chunks,
            to_chunks,
        } => {
            out.push(DIFF_CHUNKED);
            for v in [
                *from_len,
                *to_len,
                *shared_chunks,
                *shared_bytes,
                *from_chunks,
                *to_chunks,
            ] {
                put_u64(out, v);
            }
        }
    }
}

fn read_diff(rd: &mut Rd<'_>) -> DbResult<DiffSummary> {
    Ok(match rd.u8()? {
        DIFF_IDENTICAL => DiffSummary::Identical,
        DIFF_PRIMITIVE => DiffSummary::Primitive {
            from: rd.value()?,
            to: rd.value()?,
        },
        DIFF_MAP => {
            let added = rd.u64()?;
            let removed = rd.u64()?;
            let modified = rd.u64()?;
            let n = rd.count()?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(MapEntryDelta {
                    key: Bytes::copy_from_slice(rd.bytes()?),
                    from: rd.opt_bytes()?,
                    to: rd.opt_bytes()?,
                });
            }
            DiffSummary::Map {
                added,
                removed,
                modified,
                entries,
            }
        }
        DIFF_CHUNKED => DiffSummary::Chunked {
            from_len: rd.u64()?,
            to_len: rd.u64()?,
            shared_chunks: rd.u64()?,
            shared_bytes: rd.u64()?,
            from_chunks: rd.u64()?,
            to_chunks: rd.u64()?,
        },
        t => return Err(Rd::err(&format!("unknown diff tag {t:#04x}"))),
    })
}

const OUTCOME_COMMITTED: u8 = 0x01;
const OUTCOME_DELETED: u8 = 0x02;

fn put_stat(out: &mut Vec<u8>, s: &DbStat) {
    put_u64(out, s.keys);
    put_u64(out, s.branches);
    let st = &s.store;
    for v in [
        st.unique_chunks,
        st.stored_bytes,
        st.puts,
        st.logical_bytes,
        st.dedup_hits,
        st.dedup_saved_bytes,
        st.gets,
        st.misses,
        st.compaction_chunks_rewritten,
        st.compaction_bytes_rewritten,
        st.sweep_chunks_reclaimed,
        st.sweep_bytes_reclaimed,
    ] {
        put_u64(out, v);
    }
}

fn read_stat(rd: &mut Rd<'_>) -> DbResult<DbStat> {
    Ok(DbStat {
        keys: rd.u64()?,
        branches: rd.u64()?,
        store: forkbase_store::StoreStats {
            unique_chunks: rd.u64()?,
            stored_bytes: rd.u64()?,
            puts: rd.u64()?,
            logical_bytes: rd.u64()?,
            dedup_hits: rd.u64()?,
            dedup_saved_bytes: rd.u64()?,
            gets: rd.u64()?,
            misses: rd.u64()?,
            compaction_chunks_rewritten: rd.u64()?,
            compaction_bytes_rewritten: rd.u64()?,
            sweep_chunks_reclaimed: rd.u64()?,
            sweep_bytes_reclaimed: rd.u64()?,
        },
    })
}

impl Reply {
    /// Encode as a frame body (tag + fields; no frame envelope).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Reply::Unit => out.push(REP_UNIT),
            Reply::Committed(c) => {
                out.push(REP_COMMITTED);
                put_hash(&mut out, &c.uid);
                put_str(&mut out, &c.branch);
            }
            Reply::Got(g) => {
                out.push(REP_GOT);
                put_value(&mut out, &g.value);
                put_hash(&mut out, &g.uid);
            }
            Reply::Uids(uids) => {
                out.push(REP_UIDS);
                put_u32(&mut out, uids.len() as u32);
                for u in uids {
                    put_hash(&mut out, u);
                }
            }
            Reply::Stat(s) => {
                out.push(REP_STAT);
                put_stat(&mut out, s);
            }
            Reply::Page(p) => {
                out.push(REP_PAGE);
                put_u32(&mut out, p.entries.len() as u32);
                for (k, v) in &p.entries {
                    put_bytes(&mut out, k);
                    put_bytes(&mut out, v);
                }
                put_bool(&mut out, p.truncated);
                put_hash(&mut out, &p.version);
            }
            Reply::Keys(keys) => {
                out.push(REP_KEYS);
                put_u32(&mut out, keys.len() as u32);
                for k in keys {
                    put_str(&mut out, k);
                }
            }
            Reply::Count(n) => {
                out.push(REP_COUNT);
                put_u64(&mut out, *n);
            }
            Reply::Gc(r) => {
                out.push(REP_GC);
                for v in [
                    r.live_chunks,
                    r.sweep.chunks_reclaimed,
                    r.sweep.bytes_reclaimed,
                    r.sweep.chunks_rewritten,
                    r.sweep.bytes_rewritten,
                    r.sweep.segments_deleted,
                    r.sweep.disk_bytes_before,
                    r.sweep.disk_bytes_after,
                ] {
                    put_u64(&mut out, v);
                }
            }
            Reply::Outcomes(outcomes) => {
                out.push(REP_OUTCOMES);
                put_u32(&mut out, outcomes.len() as u32);
                for o in outcomes {
                    match o {
                        BatchOutcome::Committed(c) => {
                            out.push(OUTCOME_COMMITTED);
                            put_hash(&mut out, &c.uid);
                            put_str(&mut out, &c.branch);
                        }
                        BatchOutcome::Deleted { key, branch } => {
                            out.push(OUTCOME_DELETED);
                            put_str(&mut out, key);
                            put_str(&mut out, branch);
                        }
                    }
                }
            }
            Reply::Blob(b) => {
                out.push(REP_BLOB);
                put_bytes(&mut out, b);
            }
            Reply::Text(t) => {
                out.push(REP_TEXT);
                put_str(&mut out, t);
            }
            Reply::Diff(d) => {
                out.push(REP_DIFF);
                put_diff(&mut out, d);
            }
            Reply::Err(e) => {
                out.push(REP_ERR);
                e.encode_into(&mut out);
            }
        }
        out
    }

    /// Decode a frame body produced by [`Self::encode`].
    pub fn decode(body: &[u8]) -> DbResult<Reply> {
        let mut rd = Rd::new(body);
        let rep = match rd.u8()? {
            REP_UNIT => Reply::Unit,
            REP_COMMITTED => Reply::Committed(CommitResult {
                uid: rd.hash()?,
                branch: rd.string()?,
            }),
            REP_GOT => Reply::Got(GetResult {
                value: rd.value()?,
                uid: rd.hash()?,
            }),
            REP_UIDS => {
                let n = rd.count()?;
                let mut uids = Vec::with_capacity(n);
                for _ in 0..n {
                    uids.push(rd.hash()?);
                }
                Reply::Uids(uids)
            }
            REP_STAT => Reply::Stat(read_stat(&mut rd)?),
            REP_PAGE => {
                let n = rd.count()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((
                        Bytes::copy_from_slice(rd.bytes()?),
                        Bytes::copy_from_slice(rd.bytes()?),
                    ));
                }
                Reply::Page(MapPage {
                    entries,
                    truncated: rd.bool()?,
                    version: rd.hash()?,
                })
            }
            REP_KEYS => {
                let n = rd.count()?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(rd.string()?);
                }
                Reply::Keys(keys)
            }
            REP_COUNT => Reply::Count(rd.u64()?),
            REP_GC => Reply::Gc(GcReport {
                live_chunks: rd.u64()?,
                sweep: forkbase_store::SweepReport {
                    chunks_reclaimed: rd.u64()?,
                    bytes_reclaimed: rd.u64()?,
                    chunks_rewritten: rd.u64()?,
                    bytes_rewritten: rd.u64()?,
                    segments_deleted: rd.u64()?,
                    disk_bytes_before: rd.u64()?,
                    disk_bytes_after: rd.u64()?,
                },
            }),
            REP_OUTCOMES => {
                let n = rd.count()?;
                let mut outcomes = Vec::with_capacity(n);
                for _ in 0..n {
                    outcomes.push(match rd.u8()? {
                        OUTCOME_COMMITTED => BatchOutcome::Committed(CommitResult {
                            uid: rd.hash()?,
                            branch: rd.string()?,
                        }),
                        OUTCOME_DELETED => BatchOutcome::Deleted {
                            key: rd.string()?,
                            branch: rd.string()?,
                        },
                        t => return Err(Rd::err(&format!("unknown outcome tag {t:#04x}"))),
                    });
                }
                Reply::Outcomes(outcomes)
            }
            REP_BLOB => Reply::Blob(rd.bytes()?.to_vec()),
            REP_TEXT => Reply::Text(rd.string()?),
            REP_DIFF => Reply::Diff(read_diff(&mut rd)?),
            REP_ERR => Reply::Err(WireError::decode_from(&mut rd)?),
            t => return Err(Rd::err(&format!("unknown reply tag {t:#04x}"))),
        };
        rd.done()?;
        Ok(rep)
    }

    fn unexpected(self, wanted: &str) -> DbError {
        match self {
            Reply::Err(e) => e.into_db(),
            other => DbError::InvalidInput(format!(
                "unexpected wire reply: wanted {wanted}, got {:?} tag",
                std::mem::discriminant(&other)
            )),
        }
    }

    /// Extract a [`Reply::Unit`]; a wire error becomes its [`DbError`].
    pub fn expect_unit(self) -> DbResult<()> {
        match self {
            Reply::Unit => Ok(()),
            other => Err(other.unexpected("unit")),
        }
    }

    /// Extract a [`Reply::Committed`].
    pub fn expect_commit(self) -> DbResult<CommitResult> {
        match self {
            Reply::Committed(c) => Ok(c),
            other => Err(other.unexpected("commit")),
        }
    }

    /// Extract a [`Reply::Got`].
    pub fn expect_get(self) -> DbResult<GetResult> {
        match self {
            Reply::Got(g) => Ok(g),
            other => Err(other.unexpected("get result")),
        }
    }

    /// Extract a [`Reply::Uids`].
    pub fn expect_uids(self) -> DbResult<Vec<Uid>> {
        match self {
            Reply::Uids(u) => Ok(u),
            other => Err(other.unexpected("uids")),
        }
    }

    /// Extract a [`Reply::Stat`].
    pub fn expect_stat(self) -> DbResult<DbStat> {
        match self {
            Reply::Stat(s) => Ok(s),
            other => Err(other.unexpected("stat")),
        }
    }

    /// Extract a [`Reply::Page`].
    pub fn expect_page(self) -> DbResult<MapPage> {
        match self {
            Reply::Page(p) => Ok(p),
            other => Err(other.unexpected("map page")),
        }
    }

    /// Extract a [`Reply::Keys`].
    pub fn expect_keys(self) -> DbResult<Vec<String>> {
        match self {
            Reply::Keys(k) => Ok(k),
            other => Err(other.unexpected("keys")),
        }
    }

    /// Extract a [`Reply::Count`].
    pub fn expect_count(self) -> DbResult<u64> {
        match self {
            Reply::Count(n) => Ok(n),
            other => Err(other.unexpected("count")),
        }
    }

    /// Extract a [`Reply::Gc`].
    pub fn expect_gc(self) -> DbResult<GcReport> {
        match self {
            Reply::Gc(r) => Ok(r),
            other => Err(other.unexpected("gc report")),
        }
    }

    /// Extract a [`Reply::Outcomes`].
    pub fn expect_outcomes(self) -> DbResult<Vec<BatchOutcome>> {
        match self {
            Reply::Outcomes(o) => Ok(o),
            other => Err(other.unexpected("batch outcomes")),
        }
    }

    /// Extract a [`Reply::Blob`].
    pub fn expect_blob(self) -> DbResult<Vec<u8>> {
        match self {
            Reply::Blob(b) => Ok(b),
            other => Err(other.unexpected("blob")),
        }
    }

    /// Extract a [`Reply::Text`].
    pub fn expect_text(self) -> DbResult<String> {
        match self {
            Reply::Text(t) => Ok(t),
            other => Err(other.unexpected("text")),
        }
    }

    /// Extract a [`Reply::Diff`].
    pub fn expect_diff(self) -> DbResult<DiffSummary> {
        match self {
            Reply::Diff(d) => Ok(d),
            other => Err(other.unexpected("diff summary")),
        }
    }
}

// ----------------------------------------------------------------------
// Server-side execution
// ----------------------------------------------------------------------

/// Execute `req` against a servelet's database. **The** server-side
/// entry point: both the in-process channel worker and the TCP servelet
/// loop call this, so a verb behaves identically over either transport.
pub fn dispatch<S: SweepStore>(db: &ForkBase<S>, req: Request) -> Reply {
    match run(db, req) {
        Ok(reply) => reply,
        Err(e) => Reply::Err(WireError::from(&e)),
    }
}

fn run<S: SweepStore>(db: &ForkBase<S>, req: Request) -> DbResult<Reply> {
    use std::ops::Bound;
    match req {
        Request::Probe => Ok(Reply::Unit),
        Request::Put { key, value, opts } => Ok(Reply::Committed(db.put(&key, value, &opts)?)),
        Request::PutBlob { key, content, opts } => {
            Ok(Reply::Committed(db.put_blob(&key, content, &opts)?))
        }
        Request::Get { key, branch } => Ok(Reply::Got(db.get(&key, &branch)?)),
        Request::Heads { pairs } => {
            let refs: Vec<(&str, &str)> = pairs
                .iter()
                .map(|(k, b)| (k.as_str(), b.as_str()))
                .collect();
            Ok(Reply::Uids(db.heads(&refs)?))
        }
        Request::Stat => Ok(Reply::Stat(db.stat())),
        Request::MapRange {
            key,
            branch,
            start,
            end,
            limit,
        } => {
            let snap = db.snapshot(&key, &VersionSpec::Branch(branch))?;
            let start_bound = match &start {
                Some(s) => Bound::Included(s.as_ref()),
                None => Bound::Unbounded,
            };
            let end_bound = match &end {
                Some(e) => Bound::Excluded(e.as_ref()),
                None => Bound::Unbounded,
            };
            let limit = usize::try_from(limit).unwrap_or(usize::MAX);
            let mut range = snap.map_range::<&[u8], _>((start_bound, end_bound))?;
            let mut entries = Vec::new();
            let mut truncated = false;
            for item in &mut range {
                let (k, v) = item?;
                if entries.len() == limit {
                    truncated = true;
                    break;
                }
                entries.push((k, v));
            }
            Ok(Reply::Page(MapPage {
                entries,
                truncated,
                version: snap.uid(),
            }))
        }
        Request::ListKeys => Ok(Reply::Keys(db.list_keys())),
        Request::StoredBytes => Ok(Reply::Count(ChunkStore::stored_bytes(db.store()))),
        Request::Gc => Ok(Reply::Gc(db.gc()?)),
        Request::Batch { ops } => {
            let mut wb = db.write_batch();
            for op in ops {
                match op {
                    WireOp::Put { key, value, opts } => {
                        wb.put(key, value, &opts);
                    }
                    WireOp::DeleteBranch { key, branch } => {
                        wb.delete_branch(key, branch);
                    }
                }
            }
            Ok(Reply::Outcomes(wb.commit()?))
        }
        Request::ExportBundle { keys } => {
            let mut buf = Vec::new();
            export_bundle_keys(db, &keys, &mut buf)?;
            Ok(Reply::Blob(buf))
        }
        Request::ImportBundle { bundle } => {
            import_bundle(db, &mut bundle.as_slice())?;
            Ok(Reply::Unit)
        }
        Request::ForgetKeys { keys } => {
            for key in &keys {
                db.forget_key(key);
            }
            Ok(Reply::Unit)
        }
        Request::LoadRefs { refs } => {
            db.load_refs(&refs)?;
            Ok(Reply::Unit)
        }
        Request::DumpRefs => Ok(Reply::Text(db.dump_refs())),
        Request::Replicate { bundle } => {
            let refs = import_bundle_replace(db, &mut bundle.as_slice())?;
            Ok(Reply::Count(refs.len() as u64))
        }
        Request::GetAt { key, spec } => {
            let uid = db.resolve(&key, &spec)?;
            Ok(Reply::Got(db.get_version(&uid)?))
        }
        Request::BranchFromVersion {
            key,
            uid,
            new_branch,
        } => {
            db.branch_from_version(&key, &uid, &new_branch)?;
            Ok(Reply::Unit)
        }
        Request::DeleteBranch { key, branch } => {
            db.delete_branch(&key, &branch)?;
            Ok(Reply::Unit)
        }
        Request::DiffSpecs { key, from, to } => {
            let diff = db.diff(&key, &from, &to)?;
            Ok(Reply::Diff(DiffSummary::from_value_diff(&diff)))
        }
        Request::MapRangeAt {
            key,
            spec,
            start,
            end,
            limit,
        } => {
            let snap = db.snapshot(&key, &spec)?;
            let start_bound = match &start {
                Some(s) => Bound::Included(s.as_ref()),
                None => Bound::Unbounded,
            };
            let end_bound = match &end {
                Some(e) => Bound::Excluded(e.as_ref()),
                None => Bound::Unbounded,
            };
            let limit = usize::try_from(limit).unwrap_or(usize::MAX);
            let mut range = snap.map_range::<&[u8], _>((start_bound, end_bound))?;
            let mut entries = Vec::new();
            let mut truncated = false;
            for item in &mut range {
                let (k, v) = item?;
                if entries.len() == limit {
                    truncated = true;
                    break;
                }
                entries.push((k, v));
            }
            Ok(Reply::Page(MapPage {
                entries,
                truncated,
                version: snap.uid(),
            }))
        }
    }
}

/// Whether this request mutates servelet state — the TCP server persists
/// refs after these before acking, so an acked write survives a process
/// kill.
pub fn mutates(req: &Request) -> bool {
    matches!(
        req,
        Request::Put { .. }
            | Request::PutBlob { .. }
            | Request::Gc
            | Request::Batch { .. }
            | Request::ImportBundle { .. }
            | Request::ForgetKeys { .. }
            | Request::LoadRefs { .. }
            | Request::Replicate { .. }
            | Request::BranchFromVersion { .. }
            | Request::DeleteBranch { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let body = req.encode();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn roundtrip_rep(rep: Reply) {
        let body = rep.encode();
        assert_eq!(Reply::decode(&body).unwrap(), rep);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Probe);
        roundtrip_req(Request::Put {
            key: "k".into(),
            value: Value::string("v"),
            opts: PutOptions::default(),
        });
        roundtrip_req(Request::PutBlob {
            key: "k".into(),
            content: Bytes::from_static(b"\x00\x01\x02"),
            opts: PutOptions::on_branch("dev"),
        });
        roundtrip_req(Request::Get {
            key: "k".into(),
            branch: "master".into(),
        });
        roundtrip_req(Request::Heads {
            pairs: vec![("a".into(), "master".into()), ("b".into(), "dev".into())],
        });
        roundtrip_req(Request::MapRange {
            key: "t".into(),
            branch: "master".into(),
            start: Some(Bytes::from_static(b"a")),
            end: None,
            limit: 100,
        });
        roundtrip_req(Request::Batch {
            ops: vec![
                WireOp::Put {
                    key: "k".into(),
                    value: Value::Int(7),
                    opts: PutOptions::default(),
                },
                WireOp::DeleteBranch {
                    key: "k".into(),
                    branch: "dev".into(),
                },
            ],
        });
        roundtrip_req(Request::ExportBundle {
            keys: vec!["a".into(), "b".into()],
        });
        roundtrip_req(Request::ImportBundle {
            bundle: vec![1, 2, 3],
        });
        roundtrip_req(Request::ForgetKeys { keys: vec![] });
        roundtrip_req(Request::LoadRefs {
            refs: "refs text".into(),
        });
        roundtrip_req(Request::DumpRefs);
        roundtrip_req(Request::Replicate {
            bundle: vec![9, 8, 7],
        });
        roundtrip_req(Request::Stat);
        roundtrip_req(Request::ListKeys);
        roundtrip_req(Request::StoredBytes);
        roundtrip_req(Request::Gc);
        roundtrip_req(Request::GetAt {
            key: "k".into(),
            spec: VersionSpec::Branch("fork/f1".into()),
        });
        roundtrip_req(Request::GetAt {
            key: "k".into(),
            spec: VersionSpec::Version(forkbase_crypto::sha256(b"base")),
        });
        roundtrip_req(Request::BranchFromVersion {
            key: "k".into(),
            uid: forkbase_crypto::sha256(b"base"),
            new_branch: "fork/f1".into(),
        });
        roundtrip_req(Request::DeleteBranch {
            key: "k".into(),
            branch: "fork/f1".into(),
        });
        roundtrip_req(Request::DiffSpecs {
            key: "k".into(),
            from: VersionSpec::Version(forkbase_crypto::sha256(b"base")),
            to: VersionSpec::Branch("fork/f1".into()),
        });
        roundtrip_req(Request::MapRangeAt {
            key: "t".into(),
            spec: VersionSpec::Version(forkbase_crypto::sha256(b"base")),
            start: Some(Bytes::from_static(b"a")),
            end: Some(Bytes::from_static(b"z")),
            limit: 10,
        });
    }

    #[test]
    fn reply_roundtrips() {
        let uid = forkbase_crypto::sha256(b"x");
        roundtrip_rep(Reply::Unit);
        roundtrip_rep(Reply::Committed(CommitResult {
            uid,
            branch: "master".into(),
        }));
        roundtrip_rep(Reply::Got(GetResult {
            value: Value::Float(1.5),
            uid,
        }));
        roundtrip_rep(Reply::Uids(vec![uid, forkbase_crypto::sha256(b"y")]));
        roundtrip_rep(Reply::Page(MapPage {
            entries: vec![(Bytes::from_static(b"k"), Bytes::from_static(b"v"))],
            truncated: true,
            version: uid,
        }));
        roundtrip_rep(Reply::Keys(vec!["a".into(), "b".into()]));
        roundtrip_rep(Reply::Count(42));
        roundtrip_rep(Reply::Blob(vec![9, 9, 9]));
        roundtrip_rep(Reply::Text("refs".into()));
        roundtrip_rep(Reply::Outcomes(vec![
            BatchOutcome::Committed(CommitResult {
                uid,
                branch: "master".into(),
            }),
            BatchOutcome::Deleted {
                key: "k".into(),
                branch: "dev".into(),
            },
        ]));
        roundtrip_rep(Reply::Diff(DiffSummary::Identical));
        roundtrip_rep(Reply::Diff(DiffSummary::Primitive {
            from: Value::Int(1),
            to: Value::string("two"),
        }));
        roundtrip_rep(Reply::Diff(DiffSummary::Map {
            added: 3,
            removed: 1,
            modified: 2,
            entries: vec![
                MapEntryDelta {
                    key: Bytes::from_static(b"row1"),
                    from: None,
                    to: Some(Bytes::from_static(b"new")),
                },
                MapEntryDelta {
                    key: Bytes::from_static(b"row2"),
                    from: Some(Bytes::from_static(b"old")),
                    to: None,
                },
            ],
        }));
        roundtrip_rep(Reply::Diff(DiffSummary::Chunked {
            from_len: 1,
            to_len: 2,
            shared_chunks: 3,
            shared_bytes: 4,
            from_chunks: 5,
            to_chunks: 6,
        }));
        roundtrip_rep(Reply::Err(WireError::NoSuchKey { key: "k".into() }));
        roundtrip_rep(Reply::Err(WireError::ServeletTimeout { servelet: 7 }));
        roundtrip_rep(Reply::Err(WireError::RateLimited {
            retry_after_ms: 250,
        }));
        roundtrip_rep(Reply::Err(WireError::Remote {
            code: "merge_conflicts".into(),
            message: "merge found 2 conflict(s)".into(),
        }));
    }

    #[test]
    fn stat_and_gc_roundtrip_field_for_field() {
        let stat = DbStat {
            keys: 1,
            branches: 2,
            store: forkbase_store::StoreStats {
                unique_chunks: 3,
                stored_bytes: 4,
                puts: 5,
                logical_bytes: 6,
                dedup_hits: 7,
                dedup_saved_bytes: 8,
                gets: 9,
                misses: 10,
                compaction_chunks_rewritten: 11,
                compaction_bytes_rewritten: 12,
                sweep_chunks_reclaimed: 13,
                sweep_bytes_reclaimed: 14,
            },
        };
        let body = Reply::Stat(stat.clone()).encode();
        match Reply::decode(&body).unwrap() {
            Reply::Stat(got) => {
                assert_eq!(got.keys, stat.keys);
                assert_eq!(got.branches, stat.branches);
                assert_eq!(got.store, stat.store);
            }
            other => panic!("wrong reply: {other:?}"),
        }
        let gc = GcReport {
            live_chunks: 1,
            sweep: forkbase_store::SweepReport {
                chunks_reclaimed: 2,
                bytes_reclaimed: 3,
                chunks_rewritten: 4,
                bytes_rewritten: 5,
                segments_deleted: 6,
                disk_bytes_before: 7,
                disk_bytes_after: 8,
            },
        };
        roundtrip_rep(Reply::Gc(gc));
    }

    #[test]
    fn frame_roundtrip_and_rejection() {
        let body = Request::Get {
            key: "k".into(),
            branch: "master".into(),
        }
        .encode();
        let frame = encode_frame(&body);
        let got = read_frame(&mut frame.as_slice()).unwrap();
        assert_eq!(got, body);

        // Torn: cut the frame anywhere and the reader reports Torn.
        for cut in 1..frame.len() {
            let r = read_frame(&mut frame[..cut].as_ref());
            assert!(
                matches!(r, Err(FrameError::Torn)),
                "cut at {cut} gave {r:?}"
            );
        }

        // Bad CRC: flip one payload bit.
        let mut bad = frame.clone();
        bad[6] ^= 0x40;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(FrameError::BadCrc)
        ));

        // Bad version byte (CRC recomputed so the version check is what
        // fires).
        let mut vbad = frame.clone();
        vbad[4] = 99;
        let len = vbad.len();
        let crc = crc32(&vbad[4..len - 4]);
        vbad[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            read_frame(&mut vbad.as_slice()),
            Err(FrameError::BadVersion(99))
        ));

        // Every version in the supported range is accepted, and the
        // versioned reader reports which one arrived — a v1 router's
        // frames still parse on a v2 servelet.
        for v in MIN_WIRE_VERSION..=WIRE_VERSION {
            let old = encode_frame_with_version(v, &body);
            let (got_v, got_body) = read_frame_versioned(&mut old.as_slice()).unwrap();
            assert_eq!(got_v, v);
            assert_eq!(got_body, body);
        }

        // Hostile length prefix: rejected before allocation.
        let mut huge = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0; 16]);
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn decoder_rejects_implausible_interior_counts() {
        // A Heads request claiming 4 billion pairs in a tiny body must be
        // rejected without allocating for 4 billion entries.
        let mut body = vec![REQ_HEADS];
        put_u32(&mut body, u32::MAX);
        let err = Request::decode(&body).unwrap_err();
        assert!(matches!(err, DbError::InvalidInput(_)), "{err:?}");
    }

    // ------------------------------------------------------------------
    // GOLDEN BYTES — frozen wire format.
    //
    // These pin the exact encoding of representative requests, replies,
    // and a full frame. If one of these fails, the wire format changed:
    // either revert the change or bump WIRE_VERSION and document the new
    // format in PROTOCOL.md. Re-tagging silently is a format break for
    // every deployed servelet.
    // ------------------------------------------------------------------

    #[test]
    fn golden_request_bytes() {
        let req = Request::Get {
            key: "k".into(),
            branch: "b".into(),
        };
        assert_eq!(req.encode(), vec![0x04, 1, 0, 0, 0, b'k', 1, 0, 0, 0, b'b']);

        let put = Request::Put {
            key: "k".into(),
            value: Value::Int(1),
            opts: PutOptions {
                branch: "m".into(),
                author: "a".into(),
                message: String::new(),
            },
        };
        assert_eq!(
            put.encode(),
            vec![
                0x02, // tag
                1, 0, 0, 0, b'k', // key
                9, 0, 0, 0, 0x02, 1, 0, 0, 0, 0, 0, 0, 0, // Value::Int(1)
                1, 0, 0, 0, b'm', // branch
                1, 0, 0, 0, b'a', // author
                0, 0, 0, 0, // message
            ]
        );

        assert_eq!(Request::Probe.encode(), vec![0x01]);
        assert_eq!(Request::Stat.encode(), vec![0x06]);
        assert_eq!(Request::ListKeys.encode(), vec![0x08]);
        assert_eq!(Request::StoredBytes.encode(), vec![0x09]);
        assert_eq!(Request::Gc.encode(), vec![0x0A]);
        assert_eq!(Request::DumpRefs.encode(), vec![0x24]);
        assert_eq!(
            Request::Replicate {
                bundle: vec![1, 2, 3],
            }
            .encode(),
            vec![0x25, 3, 0, 0, 0, 1, 2, 3]
        );

        // Wire-version-3 verbs.
        assert_eq!(
            Request::GetAt {
                key: "k".into(),
                spec: VersionSpec::Branch("b".into()),
            }
            .encode(),
            vec![0x26, 1, 0, 0, 0, b'k', 0x01, 1, 0, 0, 0, b'b']
        );
        let uid = forkbase_crypto::sha256(b"base");
        let mut want = vec![0x26, 1, 0, 0, 0, b'k', 0x02];
        want.extend_from_slice(uid.as_bytes());
        assert_eq!(
            Request::GetAt {
                key: "k".into(),
                spec: VersionSpec::Version(uid),
            }
            .encode(),
            want
        );
        let mut want = vec![0x27, 1, 0, 0, 0, b'k'];
        want.extend_from_slice(uid.as_bytes());
        want.extend_from_slice(&[1, 0, 0, 0, b'f']);
        assert_eq!(
            Request::BranchFromVersion {
                key: "k".into(),
                uid,
                new_branch: "f".into(),
            }
            .encode(),
            want
        );
        assert_eq!(
            Request::DeleteBranch {
                key: "k".into(),
                branch: "f".into(),
            }
            .encode(),
            vec![0x28, 1, 0, 0, 0, b'k', 1, 0, 0, 0, b'f']
        );
    }

    #[test]
    fn golden_reply_bytes() {
        assert_eq!(Reply::Unit.encode(), vec![0x80]);
        assert_eq!(Reply::Count(7).encode(), vec![0x87, 7, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(
            Reply::Err(WireError::ServeletUnavailable { servelet: 3 }).encode(),
            vec![0xEE, 0x07, 3, 0, 0, 0, 0, 0, 0, 0]
        );
        assert_eq!(
            Reply::Err(WireError::NoSuchKey { key: "k".into() }).encode(),
            vec![0xEE, 0x01, 1, 0, 0, 0, b'k']
        );
        assert_eq!(
            Reply::Diff(DiffSummary::Identical).encode(),
            vec![0x8C, 0x01]
        );
        assert_eq!(
            Reply::Err(WireError::RateLimited { retry_after_ms: 7 }).encode(),
            vec![0xEE, 0x0C, 7, 0, 0, 0, 0, 0, 0, 0]
        );
    }

    #[test]
    fn golden_frame_bytes() {
        // A full frame around Probe: len=6 LE, version 1, tag 0x01, CRC.
        let frame = encode_frame(&Request::Probe.encode());
        let crc = crc32(&[WIRE_VERSION, 0x01]).to_le_bytes();
        let mut want = vec![6, 0, 0, 0, WIRE_VERSION, 0x01];
        want.extend_from_slice(&crc);
        assert_eq!(frame, want);
    }

    #[test]
    fn error_mapping_is_bijective_where_structured() {
        let cases = vec![
            DbError::NoSuchKey("k".into()),
            DbError::NoSuchBranch {
                key: "k".into(),
                branch: "b".into(),
            },
            DbError::NoSuchVersion(forkbase_crypto::sha256(b"v")),
            DbError::BranchExists {
                key: "k".into(),
                branch: "b".into(),
            },
            DbError::NoCommonAncestor(forkbase_crypto::sha256(b"a"), forkbase_crypto::sha256(b"b")),
            DbError::TamperDetected("m".into()),
            DbError::ServeletUnavailable { servelet: 1 },
            DbError::ServeletTimeout { servelet: 2 },
            DbError::PermissionDenied("m".into()),
            DbError::InvalidInput("m".into()),
            DbError::RateLimited {
                retry_after_ms: 100,
            },
        ];
        for e in cases {
            let code = e.code();
            let w = WireError::from(&e);
            let back = w.into_db();
            assert_eq!(back.code(), code, "code survives the wire: {back:?}");
        }
        // Unstructured errors keep their stable code through Remote.
        let merge = DbError::MergeConflicts(Vec::new());
        let back = WireError::from(&merge).into_db();
        assert_eq!(back.code(), "merge_conflicts");
        let fork = DbError::ForkExpired { fork: "f1".into() };
        let back = WireError::from(&fork).into_db();
        assert_eq!(back.code(), "fork_expired");
    }
}
