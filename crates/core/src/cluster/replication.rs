//! Per-shard primary→replica replication with failover.
//!
//! Every ring slot (a **primary**) can carry 0..N **replicas**. The
//! router is the replication driver: after a routed write is acked it
//! exports the written key as the same hash-verified bundle the
//! migration path uses and appends it to a per-replica **ship log**
//! ([`ReplicaHandle::pending`]); [`Cluster::ship_replication`] drains the
//! log asynchronously (the [`super::Supervisor`] pumps it every tick).
//! Replicas apply bundles with *replace* semantics
//! ([`crate::bundle::import_bundle_replace`] via the `Replicate` wire
//! verb), so re-shipping after an ambiguous outcome converges instead of
//! erroring, and a replica's branch set mirrors its primary's — deleted
//! branches included.
//!
//! # The zero-acked-write-loss invariant
//!
//! Every write the **client observed as acked** is, at all times, either
//! applied on a replica or sitting in the router-held ship log — because
//! the capture happens under the same rebalance-gate hold as the routed
//! write, and [`Cluster::promote_replica`] (which needs the gate
//! exclusively) drains the target's ship log before swinging the slot.
//! If the capture itself fails (the primary died between ack and export)
//! the write surfaces as an error, so the caller never counted it acked.
//! Promotion therefore loses nothing the client was told succeeded, even
//! when the primary is SIGKILLed mid-ship — the chaos suite proves this
//! on both transports.
//!
//! # Split-brain prevention
//!
//! Promotion swaps the slot's node but keeps the slot's **ring anchor**,
//! so no key moves; the old primary's id leaves the topology forever.
//! Ids are never reused, restarting an unknown id fails, and routed
//! writes can only reach the node vector — a zombie primary process can
//! linger but nothing will ever route a write to it again.
//!
//! # Staleness
//!
//! Each replica set carries a capture sequence number; a replica's
//! `lag = seq - acked_seq` bounds how many acked captures it has not yet
//! applied. [`Cluster::get_from_replica`] surfaces that bound in the
//! reply and prefers the least-lagging replica, falling back to the
//! primary when no replica can serve.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use forkbase_store::SweepStore;

use crate::api::GetResult;
use crate::db::ForkBase;
use crate::error::{DbError, DbResult};

use super::rpc::{call_control, maint_call, remote_node, shutdown_node, spawn_node, Node};
use super::wire::{Reply, Request};
use super::{route_on, Cluster};

/// How many unacked ship entries a replica may trail its primary by and
/// still serve a degraded partial scatter read
/// ([`Cluster::stats_partial`], [`Cluster::list_keys_partial`]) in the
/// primary's stead. Zero: only fully caught-up replicas answer, so a
/// fallback answer is exact as of the last shipped write.
pub const PARTIAL_READ_MAX_LAG: u64 = 0;

/// One captured write, self-contained: shippable (and re-shippable)
/// without the primary being alive.
pub(super) enum ShipPayload {
    /// The key's full exported history at capture time.
    Bundle(Vec<u8>),
    /// The key had no branches left at capture time (fully deleted).
    Forget,
}

/// Router-side book-keeping for one replica.
pub(super) struct ReplicaHandle<S> {
    pub(super) id: u64,
    pub(super) node: Arc<Node<S>>,
    /// Every capture with `seq <= acked_seq` is applied on the replica.
    pub(super) acked_seq: u64,
    /// The ship log: latest unshipped capture per key (newer captures of
    /// a key coalesce over older ones — replace-import makes the newest
    /// bundle subsume them).
    pub(super) pending: BTreeMap<String, (u64, Arc<ShipPayload>)>,
    /// The replica must mirror the whole key set from scratch before
    /// serving (fresh attach, reopen from a topology record, or a
    /// rebalance that moved keys between primaries).
    pub(super) needs_full_sync: bool,
}

/// The replicas of one primary plus its capture sequence.
pub(super) struct ReplicaSet<S> {
    /// Monotone counter, bumped once per captured write on this primary.
    pub(super) seq: u64,
    pub(super) replicas: Vec<ReplicaHandle<S>>,
}

impl<S> Default for ReplicaSet<S> {
    fn default() -> Self {
        ReplicaSet {
            seq: 0,
            replicas: Vec::new(),
        }
    }
}

/// All replication state, keyed by primary id.
pub(super) struct ReplicationState<S> {
    pub(super) sets: BTreeMap<u64, ReplicaSet<S>>,
    /// Supervisor failover: promote a dead primary's best replica once
    /// the primary has failed this many consecutive probes (`None`
    /// disables failover — the default; restart-in-place still runs).
    pub(super) failover_after: Option<u32>,
}

impl<S> Default for ReplicationState<S> {
    fn default() -> Self {
        ReplicationState {
            sets: BTreeMap::new(),
            failover_after: None,
        }
    }
}

/// One replica's status within [`PrimaryReplication`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Stable replica id.
    pub id: u64,
    /// Network address, if the replica is a remote process.
    pub addr: Option<String>,
    /// Captures applied through this sequence number.
    pub acked_seq: u64,
    /// Acked captures not yet applied here (`seq - acked_seq`).
    pub lag: u64,
    /// Unshipped entries in the ship log.
    pub pending: u64,
    /// Whether the replica must fully resync before serving reads.
    pub needs_full_sync: bool,
}

/// Replication status of one primary ([`Cluster::replication_status`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrimaryReplication {
    /// The primary's stable id.
    pub primary: u64,
    /// The id anchoring the primary's ring slot (differs from `primary`
    /// after a promotion).
    pub anchor: u64,
    /// Captures recorded on this primary so far.
    pub seq: u64,
    /// Its replicas, in attach order.
    pub replicas: Vec<ReplicaStatus>,
}

/// Cluster-wide replication status, one entry per primary in slot order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicationStatus {
    /// Per-primary status.
    pub primaries: Vec<PrimaryReplication>,
}

/// A read served with replica routing ([`Cluster::get_from_replica`]).
#[derive(Clone, Debug)]
pub struct ReplicaRead {
    /// The value and version read.
    pub result: GetResult,
    /// The servelet that served it.
    pub servelet: u64,
    /// Staleness bound: acked captures the serving replica had not yet
    /// applied when it answered (0 when served by the primary).
    pub lag: u64,
    /// Whether a replica (rather than the primary) served the read.
    pub from_replica: bool,
}

/// What one [`Cluster::ship_replication`] pass did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShipReport {
    /// Ship-log entries applied to replicas.
    pub shipped: u64,
    /// Replicas that completed a full key sync this pass.
    pub synced: Vec<u64>,
    /// Replicas whose ship stopped on an error (`(replica id, error)`).
    pub failed: Vec<(u64, String)>,
}

impl<S: SweepStore + Send + 'static> Cluster<S> {
    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    /// Attach a fresh in-process replica (backed by `store`) to primary
    /// `primary_id` and fully sync it before returning. The new replica's
    /// stable id is returned; it starts caught up (lag 0).
    /// Stop-the-world for routed verbs while the initial sync runs, so
    /// the mirror is a consistent snapshot.
    pub fn add_replica(&self, primary_id: u64, store: S) -> DbResult<u64> {
        let _gate = self.rebalance_gate.write();
        self.require_primary(primary_id)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let node = spawn_node(id, store, self.cfg);
        self.register_replica(primary_id, node)
    }

    /// [`Self::add_replica`] for a **remote** replica process already
    /// listening on `addr` (see `forkbase serve --servelet`).
    pub fn add_remote_replica(&self, primary_id: u64, addr: impl Into<String>) -> DbResult<u64> {
        let _gate = self.rebalance_gate.write();
        self.require_primary(primary_id)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let node = remote_node(id, addr.into());
        // Fail fast if nobody is listening, before any state changes.
        call_control(&node, self.rpc.read().probe_deadline, Request::Probe)?.expect_unit()?;
        self.register_replica(primary_id, node)
    }

    /// Detach replica `id` and shut its worker down. Its data stays in
    /// its store (a durable backend can be re-attached later — it will
    /// resync in full).
    pub fn remove_replica(&self, id: u64) -> DbResult<()> {
        let _gate = self.rebalance_gate.write();
        let handle = {
            let mut repl = self.replication.lock();
            let mut found = None;
            for set in repl.sets.values_mut() {
                if let Some(i) = set.replicas.iter().position(|r| r.id == id) {
                    found = Some(set.replicas.remove(i));
                    break;
                }
            }
            found
        };
        match handle {
            Some(h) => {
                shutdown_node(&h.node);
                self.health_records.lock().remove(&id);
                Ok(())
            }
            None => Err(DbError::InvalidInput(format!("no replica with id {id}"))),
        }
    }

    /// `(replica id, primary id)` for every attached replica.
    pub fn replica_ids(&self) -> Vec<(u64, u64)> {
        let repl = self.replication.lock();
        repl.sets
            .iter()
            .flat_map(|(pid, s)| s.replicas.iter().map(move |r| (r.id, *pid)))
            .collect()
    }

    /// Run `f` against replica `id`'s database (maintenance door, like
    /// [`Self::on_node`]: deadline-bounded, chaos-exempt, local-only).
    pub fn on_replica<R: Send + 'static>(
        &self,
        id: u64,
        f: impl FnOnce(&ForkBase<S>) -> R + Send + 'static,
    ) -> DbResult<R> {
        let _gate = self.rebalance_gate.read();
        let node = {
            let repl = self.replication.lock();
            repl.sets
                .values()
                .flat_map(|s| s.replicas.iter())
                .find(|r| r.id == id)
                .map(|r| Arc::clone(&r.node))
        }
        .ok_or_else(|| DbError::InvalidInput(format!("no replica with id {id}")))?;
        let deadline = self.rpc.read().deadline;
        maint_call(&node, deadline, f)
    }

    /// Register `node` as a replica of `primary_id` without syncing it
    /// (it will resync in full on the first ship). Caller holds the
    /// rebalance gate or is constructing the cluster.
    pub(super) fn attach_replica_handle(
        &self,
        primary_id: u64,
        node: Arc<Node<S>>,
    ) -> DbResult<()> {
        self.require_primary(primary_id)?;
        let mut repl = self.replication.lock();
        let set = repl.sets.entry(primary_id).or_default();
        set.replicas.push(ReplicaHandle {
            id: node.id,
            node,
            acked_seq: 0,
            pending: BTreeMap::new(),
            needs_full_sync: true,
        });
        Ok(())
    }

    /// Assert that replica `replica_id`'s durable state already matches
    /// its primary's last acked state, clearing the conservative
    /// full-resync flag a (re)attach sets.
    ///
    /// This is for sessions that can *prove* the assertion — e.g. the CLI
    /// session persists a catch-up marker only after a clean save whose
    /// ship left the replica at lag 0, and consumes it on the next open.
    /// Asserting it for a replica that is actually behind forfeits the
    /// zero-acked-write-loss guarantee for the writes it is missing; when
    /// in doubt, leave the flag alone and let the next ship resync.
    pub fn mark_replica_synced(&self, replica_id: u64) -> DbResult<()> {
        let mut repl = self.replication.lock();
        for set in repl.sets.values_mut() {
            if let Some(r) = set.replicas.iter_mut().find(|r| r.id == replica_id) {
                r.needs_full_sync = false;
                return Ok(());
            }
        }
        Err(DbError::InvalidInput(format!(
            "no replica with id {replica_id}"
        )))
    }

    fn register_replica(&self, primary_id: u64, node: Arc<Node<S>>) -> DbResult<u64> {
        let id = node.id;
        self.attach_replica_handle(primary_id, Arc::clone(&node))?;
        let deadline = self.rpc.read().control_deadline;
        match self.full_sync_replica(primary_id, id, deadline) {
            Ok(()) => Ok(id),
            Err(e) => {
                // Roll back the attach; the burned id is never reused.
                let mut repl = self.replication.lock();
                if let Some(set) = repl.sets.get_mut(&primary_id) {
                    set.replicas.retain(|r| r.id != id);
                }
                drop(repl);
                shutdown_node(&node);
                Err(e)
            }
        }
    }

    fn require_primary(&self, id: u64) -> DbResult<()> {
        let state = self.state.read();
        if state.nodes.iter().any(|n| n.id == id) {
            Ok(())
        } else {
            Err(DbError::InvalidInput(format!(
                "no primary servelet with id {id} (replicas attach to primaries)"
            )))
        }
    }

    // ------------------------------------------------------------------
    // Capture (the write path's half of the ship log)
    // ------------------------------------------------------------------

    /// Capture `keys` (just written and acked) into the ship log of every
    /// replica of their owning primaries. The caller **must** hold the
    /// rebalance gate (shared suffices): the gate is what makes
    /// ack-then-capture atomic with respect to promotion.
    ///
    /// An export failure propagates: the caller's write then surfaces as
    /// an error and is never counted acked, keeping the zero-loss
    /// invariant vacuous for it.
    pub(super) fn capture_locked(&self, keys: &[&str]) -> DbResult<()> {
        {
            let repl = self.replication.lock();
            if repl.sets.values().all(|s| s.replicas.is_empty()) {
                return Ok(());
            }
        }
        let deadline = self.rpc.read().control_deadline;
        let mut by_primary: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
        {
            let state = self.state.read();
            for &key in keys {
                let slot = route_on(&state.ring, key);
                by_primary
                    .entry(state.nodes[slot].id)
                    .or_default()
                    .push(key);
            }
        }
        for (pid, keys) in by_primary {
            let replicated = {
                let repl = self.replication.lock();
                repl.sets.get(&pid).is_some_and(|s| !s.replicas.is_empty())
            };
            if !replicated {
                continue;
            }
            let node = {
                let state = self.state.read();
                state.nodes.iter().find(|n| n.id == pid).cloned()
            };
            // The primary can leave the table between building
            // `by_primary` and re-reading the state; its keys will be
            // re-captured against the new owner.
            let Some(node) = node else { continue };
            for key in keys {
                let export = call_control(
                    &node,
                    deadline,
                    Request::ExportBundle {
                        keys: vec![key.to_string()],
                    },
                )
                .and_then(Reply::expect_blob);
                let payload = match export {
                    Ok(bundle) => ShipPayload::Bundle(bundle),
                    // No branches left on the key: the write was a full
                    // deletion — ship a forget instead of a bundle.
                    Err(DbError::NoSuchKey(_)) | Err(DbError::InvalidInput(_)) => {
                        ShipPayload::Forget
                    }
                    Err(e) => return Err(e),
                };
                let payload = Arc::new(payload);
                let mut repl = self.replication.lock();
                if let Some(set) = repl.sets.get_mut(&pid) {
                    if set.replicas.is_empty() {
                        continue;
                    }
                    set.seq += 1;
                    let seq = set.seq;
                    for r in &mut set.replicas {
                        r.pending
                            .insert(key.to_string(), (seq, Arc::clone(&payload)));
                    }
                }
            }
        }
        Ok(())
    }

    /// Invalidate every replica's mirror (rebalance moved keys between
    /// primaries): pending entries are dropped — the upcoming full sync
    /// subsumes them — and each replica resyncs before serving again.
    pub(super) fn mark_replicas_stale(&self) {
        let mut repl = self.replication.lock();
        for set in repl.sets.values_mut() {
            for r in &mut set.replicas {
                r.needs_full_sync = true;
                r.pending.clear();
            }
        }
    }

    // ------------------------------------------------------------------
    // Shipping
    // ------------------------------------------------------------------

    /// Drain the ship log: apply pending captures to every replica (full
    /// key sync first for replicas that need one). Asynchronous with
    /// respect to writes — the [`super::Supervisor`] pumps this every
    /// tick; tests and the CLI call it directly. Per-replica errors are
    /// reported, not propagated: an unreachable replica just stays
    /// lagged.
    pub fn ship_replication(&self) -> ShipReport {
        let _gate = self.rebalance_gate.read();
        let deadline = self.rpc.read().control_deadline;
        let mut report = ShipReport::default();
        let pairs: Vec<(u64, u64, bool)> = {
            let repl = self.replication.lock();
            repl.sets
                .iter()
                .flat_map(|(pid, s)| {
                    s.replicas
                        .iter()
                        .map(move |r| (*pid, r.id, r.needs_full_sync))
                })
                .collect()
        };
        for (pid, rid, needs_sync) in pairs {
            let result = (|| -> DbResult<()> {
                if needs_sync {
                    self.full_sync_replica(pid, rid, deadline)?;
                    report.synced.push(rid);
                }
                report.shipped += self.drain_pending(rid, deadline)?;
                Ok(())
            })();
            if let Err(e) = result {
                report.failed.push((rid, e.to_string()));
            }
        }
        report
    }

    /// Deterministically catch replica `id` up: stop-the-world (no new
    /// writes can race in), full key sync, ship log drained. After this
    /// returns the replica's lag is 0.
    pub fn catch_up_replica(&self, id: u64) -> DbResult<()> {
        let _gate = self.rebalance_gate.write();
        let pid = self
            .primary_of(id)
            .ok_or_else(|| DbError::InvalidInput(format!("no replica with id {id}")))?;
        let deadline = self.rpc.read().control_deadline;
        self.full_sync_replica(pid, id, deadline)?;
        self.drain_pending(id, deadline)?;
        Ok(())
    }

    /// Mirror the primary's full key set onto the replica: forget keys
    /// the primary no longer has, replace-import everything it does, then
    /// retire the ship-log entries the sync subsumed. Callers hold the
    /// rebalance gate (shared or exclusive).
    fn full_sync_replica(&self, pid: u64, rid: u64, deadline: Duration) -> DbResult<()> {
        let primary = {
            let state = self.state.read();
            state
                .nodes
                .iter()
                .find(|n| n.id == pid)
                .cloned()
                .ok_or_else(|| {
                    DbError::InvalidInput(format!("no primary servelet with id {pid}"))
                })?
        };
        let (replica, sync_seq) =
            {
                let repl = self.replication.lock();
                let set = repl.sets.get(&pid).ok_or_else(|| {
                    DbError::InvalidInput(format!("servelet {pid} has no replicas"))
                })?;
                let r =
                    set.replicas.iter().find(|r| r.id == rid).ok_or_else(|| {
                        DbError::InvalidInput(format!("no replica with id {rid}"))
                    })?;
                (Arc::clone(&r.node), set.seq)
            };
        let keys_p: BTreeSet<String> = call_control(&primary, deadline, Request::ListKeys)?
            .expect_keys()?
            .into_iter()
            .collect();
        let keys_r = call_control(&replica, deadline, Request::ListKeys)?.expect_keys()?;
        let stale: Vec<String> = keys_r.into_iter().filter(|k| !keys_p.contains(k)).collect();
        if !stale.is_empty() {
            call_control(&replica, deadline, Request::ForgetKeys { keys: stale })?.expect_unit()?;
        }
        if !keys_p.is_empty() {
            let bundle = call_control(
                &primary,
                deadline,
                Request::ExportBundle {
                    keys: keys_p.into_iter().collect(),
                },
            )?
            .expect_blob()?;
            call_control(&replica, deadline, Request::Replicate { bundle })?.expect_count()?;
        }
        let mut repl = self.replication.lock();
        if let Some(set) = repl.sets.get_mut(&pid) {
            if let Some(r) = set.replicas.iter_mut().find(|r| r.id == rid) {
                // Everything captured up to sync_seq is subsumed by the
                // sync (re-applying an older bundle after it would
                // regress the replica); captures newer than the sync
                // point still ship normally.
                r.pending.retain(|_, (s, _)| *s > sync_seq);
                r.acked_seq = r.acked_seq.max(sync_seq);
                r.needs_full_sync = false;
            }
        }
        Ok(())
    }

    /// Apply replica `rid`'s pending captures in sequence order, stopping
    /// at the first failure. Returns how many entries shipped. Callers
    /// hold the rebalance gate.
    fn drain_pending(&self, rid: u64, deadline: Duration) -> DbResult<u64> {
        let pid = self
            .primary_of(rid)
            .ok_or_else(|| DbError::InvalidInput(format!("no replica with id {rid}")))?;
        let (node, mut entries) = {
            let repl = self.replication.lock();
            // The set can dissolve between `primary_of` and re-locking
            // (concurrent promote/detach): nothing left to drain.
            let Some(set) = repl.sets.get(&pid) else {
                return Ok(0);
            };
            let Some(r) = set.replicas.iter().find(|r| r.id == rid) else {
                return Ok(0);
            };
            let entries: Vec<(String, u64, Arc<ShipPayload>)> = r
                .pending
                .iter()
                .map(|(k, (s, p))| (k.clone(), *s, Arc::clone(p)))
                .collect();
            (Arc::clone(&r.node), entries)
        };
        entries.sort_by_key(|(_, s, _)| *s);
        let mut shipped = 0u64;
        let mut failure = None;
        for (key, seq, payload) in entries {
            let applied = match &*payload {
                ShipPayload::Bundle(bundle) => call_control(
                    &node,
                    deadline,
                    Request::Replicate {
                        bundle: bundle.clone(),
                    },
                )
                .and_then(Reply::expect_count)
                .map(|_| ()),
                ShipPayload::Forget => call_control(
                    &node,
                    deadline,
                    Request::ForgetKeys {
                        keys: vec![key.clone()],
                    },
                )
                .and_then(Reply::expect_unit),
            };
            match applied {
                Ok(()) => {
                    shipped += 1;
                    let mut repl = self.replication.lock();
                    if let Some(set) = repl.sets.get_mut(&pid) {
                        if let Some(r) = set.replicas.iter_mut().find(|r| r.id == rid) {
                            // Remove only if no newer capture of the key
                            // coalesced in while we were shipping.
                            if r.pending.get(&key).is_some_and(|(s, _)| *s == seq) {
                                r.pending.remove(&key);
                            }
                        }
                    }
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // Advance the staleness bound: everything below the oldest still-
        // pending capture is applied; with an empty log the replica is
        // fully caught up to the set's current sequence.
        let mut repl = self.replication.lock();
        if let Some(set) = repl.sets.get_mut(&pid) {
            let seq = set.seq;
            if let Some(r) = set.replicas.iter_mut().find(|r| r.id == rid) {
                let floor = r.pending.values().map(|(s, _)| *s).min();
                r.acked_seq = match floor {
                    Some(s) => r.acked_seq.max(s.saturating_sub(1)),
                    None => r.acked_seq.max(seq),
                };
            }
        }
        drop(repl);
        match failure {
            Some(e) => Err(e),
            None => Ok(shipped),
        }
    }

    fn primary_of(&self, rid: u64) -> Option<u64> {
        let repl = self.replication.lock();
        repl.sets
            .iter()
            .find(|(_, s)| s.replicas.iter().any(|r| r.id == rid))
            .map(|(pid, _)| *pid)
    }

    // ------------------------------------------------------------------
    // Promotion
    // ------------------------------------------------------------------

    /// Swing replica `replica_id`'s ring slot to it: the replica becomes
    /// the slot's primary, the old primary's id leaves the topology
    /// forever, and — because the slot keeps its ring anchor — **no key
    /// moves**. Returns the retired primary's id.
    ///
    /// Before the swap the target's ship log is drained (its payloads are
    /// self-contained, so this works with the primary dead), which is
    /// what makes promotion lose zero acked writes. A replica that still
    /// needs a full sync can only be promoted while its primary is alive
    /// enough to sync from; otherwise this fails and the caller should
    /// pick a caught-up replica.
    ///
    /// Works with the old primary dead, alive, or SIGKILLed mid-ship;
    /// invoked manually (CLI `cluster promote`) or by the supervisor once
    /// a primary stays dead past the failover threshold
    /// ([`Self::set_failover_threshold`]).
    pub fn promote_replica(&self, replica_id: u64) -> DbResult<u64> {
        // Serialized with restarts: a supervised restart of the old
        // primary must not race the slot swap.
        let _restart = self.restart_lock.lock();
        let _gate = self.rebalance_gate.write();
        let pid = self
            .primary_of(replica_id)
            .ok_or_else(|| DbError::InvalidInput(format!("no replica with id {replica_id}")))?;
        let slot = {
            let state = self.state.read();
            state
                .nodes
                .iter()
                .position(|n| n.id == pid)
                .ok_or_else(|| {
                    DbError::InvalidInput(format!("primary {pid} is not in the node table"))
                })?
        };
        let deadline = self.rpc.read().control_deadline;
        let needs_sync = {
            let repl = self.replication.lock();
            repl.sets[&pid]
                .replicas
                .iter()
                .find(|r| r.id == replica_id)
                .is_some_and(|r| r.needs_full_sync)
        };
        if needs_sync {
            self.full_sync_replica(pid, replica_id, deadline)
                .map_err(|e| {
                    DbError::InvalidInput(format!(
                        "cannot promote replica {replica_id}: it needs a full sync and the \
                         sync failed ({e})"
                    ))
                })?;
        }
        self.drain_pending(replica_id, deadline).map_err(|e| {
            DbError::InvalidInput(format!(
                "cannot promote replica {replica_id}: draining its ship log failed ({e})"
            ))
        })?;
        // The target now holds every acked write. Swap the slot; ring and
        // anchors are untouched so placement is unchanged.
        let replica_node = {
            let mut repl = self.replication.lock();
            let Some(mut set) = repl.sets.remove(&pid) else {
                return Err(DbError::InvalidInput(format!(
                    "replica set of primary {pid} dissolved during promotion"
                )));
            };
            match set.replicas.iter().position(|r| r.id == replica_id) {
                Some(idx) => {
                    let promoted = set.replicas.remove(idx);
                    let node = Arc::clone(&promoted.node);
                    // Remaining replicas re-home under the new primary;
                    // their ship logs and sequence numbers carry over
                    // unchanged (the pending payloads are
                    // self-contained).
                    repl.sets.insert(replica_id, set);
                    node
                }
                None => {
                    // Restore the untouched set before reporting.
                    repl.sets.insert(pid, set);
                    return Err(DbError::InvalidInput(format!(
                        "replica {replica_id} left the set during promotion"
                    )));
                }
            }
        };
        let old_node = {
            let mut state = self.state.write();
            std::mem::replace(&mut state.nodes[slot], replica_node)
        };
        shutdown_node(&old_node);
        self.health_records.lock().remove(&pid);
        Ok(pid)
    }

    /// Enable (`Some(n)`) or disable (`None`) supervisor-driven failover:
    /// with `Some(n)`, a supervision pass promotes the best replica of a
    /// primary that has failed `n` or more consecutive probes instead of
    /// restarting it in place.
    pub fn set_failover_threshold(&self, consecutive_failures: Option<u32>) {
        self.replication.lock().failover_after = consecutive_failures;
    }

    /// The configured failover threshold, if any.
    pub fn failover_threshold(&self) -> Option<u32> {
        self.replication.lock().failover_after
    }

    /// Failover for the supervisor: promote the best replica of dead
    /// primary `pid` — caught-up replicas first, highest acked sequence
    /// first within each group. Returns the promoted replica's id, or
    /// `None` if `pid` has no replicas or every candidate failed.
    pub(super) fn try_failover(&self, pid: u64) -> Option<u64> {
        let mut candidates: Vec<(bool, std::cmp::Reverse<u64>, u64)> = {
            let repl = self.replication.lock();
            repl.sets
                .get(&pid)?
                .replicas
                .iter()
                .map(|r| (r.needs_full_sync, std::cmp::Reverse(r.acked_seq), r.id))
                .collect()
        };
        candidates.sort();
        candidates
            .into_iter()
            .map(|(_, _, rid)| rid)
            .find(|&rid| self.promote_replica(rid).is_ok())
    }

    // ------------------------------------------------------------------
    // Reads + status
    // ------------------------------------------------------------------

    /// A degraded scatter read's fallback: ask a caught-up replica of
    /// dead primary `pid` to answer `req`. Candidates are lag-bounded
    /// ([`PARTIAL_READ_MAX_LAG`]) and never mid-full-sync, so the
    /// answer is at worst that many ship entries stale; an error reply
    /// or RPC failure just tries the next candidate. `None` means the
    /// primary stays degraded.
    // `lag <= PARTIAL_READ_MAX_LAG` is "absurd" only while the tunable
    // bound happens to be 0; the comparison is the policy, not a typo.
    #[allow(clippy::absurd_extreme_comparisons)]
    pub(super) fn replica_answer(&self, pid: u64, req: &Request) -> Option<Reply> {
        let deadline = self.rpc.read().deadline;
        let mut candidates: Vec<(u64, Arc<Node<S>>, u64)> = {
            let repl = self.replication.lock();
            match repl.sets.get(&pid) {
                Some(set) => set
                    .replicas
                    .iter()
                    .filter(|r| !r.needs_full_sync)
                    .map(|r| (r.id, Arc::clone(&r.node), set.seq - r.acked_seq))
                    .filter(|&(_, _, lag)| lag <= PARTIAL_READ_MAX_LAG)
                    .collect(),
                None => Vec::new(),
            }
        };
        candidates.sort_by_key(|&(_, _, lag)| lag);
        for (_, node, _) in candidates {
            if let Ok(reply) = call_control(&node, deadline, req.clone()) {
                if !matches!(reply, Reply::Err(_)) {
                    return Some(reply);
                }
            }
        }
        None
    }

    /// `Get` served by a replica of `key`'s owner when one can answer,
    /// with the staleness bound surfaced in the reply. Candidate order is
    /// least-lagging first; a replica that needs a full sync never
    /// serves. Falls back to the routed primary read when no replica
    /// answers — so this degrades to [`Self::get`], it never fails
    /// *because* replication is behind.
    ///
    /// A data error (e.g. `no_such_key`) from a **caught-up** replica is
    /// authoritative and returned; from a lagging replica the primary is
    /// consulted before giving up.
    pub fn get_from_replica(&self, key: &str, branch: &str) -> DbResult<ReplicaRead> {
        let _gate = self.rebalance_gate.read();
        let deadline = self.rpc.read().deadline;
        let pid = {
            let state = self.state.read();
            state.nodes[route_on(&state.ring, key)].id
        };
        let mut candidates: Vec<(u64, Arc<Node<S>>, u64)> = {
            let repl = self.replication.lock();
            match repl.sets.get(&pid) {
                Some(set) => set
                    .replicas
                    .iter()
                    .filter(|r| !r.needs_full_sync)
                    .map(|r| (r.id, Arc::clone(&r.node), set.seq - r.acked_seq))
                    .collect(),
                None => Vec::new(),
            }
        };
        candidates.sort_by_key(|&(_, _, lag)| lag);
        let req = Request::Get {
            key: key.to_string(),
            branch: branch.to_string(),
        };
        for (rid, node, lag) in candidates {
            // An RPC failure just moves on to the next candidate; only a
            // decoded reply can answer (or, at lag 0, refuse) the read.
            let Ok(reply) = call_control(&node, deadline, req.clone()) else {
                continue;
            };
            match reply.expect_get() {
                Ok(result) => {
                    return Ok(ReplicaRead {
                        result,
                        servelet: rid,
                        lag,
                        from_replica: true,
                    })
                }
                Err(e) if lag == 0 => return Err(e),
                Err(_) => {}
            }
        }
        let result = self.get(key, branch)?;
        Ok(ReplicaRead {
            result,
            servelet: pid,
            lag: 0,
            from_replica: false,
        })
    }

    /// Cluster-wide replication status: one entry per primary in slot
    /// order (primaries without replicas included, with an empty set).
    pub fn replication_status(&self) -> ReplicationStatus {
        let state = self.state.read();
        let repl = self.replication.lock();
        let primaries = state
            .nodes
            .iter()
            .enumerate()
            .map(|(slot, n)| {
                let (seq, replicas) = match repl.sets.get(&n.id) {
                    Some(set) => (
                        set.seq,
                        set.replicas
                            .iter()
                            .map(|r| ReplicaStatus {
                                id: r.id,
                                addr: r.node.addr().map(String::from),
                                acked_seq: r.acked_seq,
                                lag: set.seq - r.acked_seq,
                                pending: r.pending.len() as u64,
                                needs_full_sync: r.needs_full_sync,
                            })
                            .collect(),
                    ),
                    None => (0, Vec::new()),
                };
                PrimaryReplication {
                    primary: n.id,
                    anchor: state.anchors[slot],
                    seq,
                    replicas,
                }
            })
            .collect();
        ReplicationStatus { primaries }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ClusterTopology, TopoRole};
    use super::*;
    use crate::api::PutOptions;
    use crate::db::VersionSpec;
    use forkbase_postree::TreeConfig;
    use forkbase_store::MemStore;
    use forkbase_types::Value;

    fn cluster(n: usize) -> Cluster {
        Cluster::new(n, TreeConfig::test_config())
    }

    #[test]
    fn replica_serves_reads_with_staleness_bound() {
        let c = cluster(2);
        c.put_string("doc", "v1".into(), PutOptions::default())
            .unwrap();
        let pid = c.owner_id("doc");
        let rid = c.add_replica(pid, MemStore::new()).unwrap();
        // The initial sync carried the pre-existing write.
        let read = c.get_from_replica("doc", "master").unwrap();
        assert!(read.from_replica);
        assert_eq!(read.servelet, rid);
        assert_eq!(read.lag, 0);
        assert_eq!(read.result.value.as_str(), Some("v1"));

        // A new write lags until shipped; the bound says so.
        c.put_string("doc", "v2".into(), PutOptions::default())
            .unwrap();
        let read = c.get_from_replica("doc", "master").unwrap();
        assert!(read.from_replica);
        assert_eq!(read.lag, 1, "one unshipped capture");
        assert_eq!(read.result.value.as_str(), Some("v1"), "stale by one");

        let report = c.ship_replication();
        assert_eq!(report.shipped, 1);
        assert!(report.failed.is_empty());
        let read = c.get_from_replica("doc", "master").unwrap();
        assert_eq!(read.lag, 0);
        assert_eq!(read.result.value.as_str(), Some("v2"));

        let status = c.replication_status();
        let p = status.primaries.iter().find(|p| p.primary == pid).unwrap();
        assert_eq!(p.replicas.len(), 1);
        assert_eq!(p.replicas[0].id, rid);
        assert_eq!(p.replicas[0].lag, 0);
    }

    #[test]
    fn replica_mirrors_branch_deletion_and_key_deletion() {
        let c = cluster(1);
        let pid = c.ids()[0];
        c.put_string("k", "a".into(), PutOptions::default())
            .unwrap();
        c.with_key("k", |db| db.branch("k", "master", "side"))
            .unwrap()
            .unwrap();
        let rid = c.add_replica(pid, MemStore::new()).unwrap();
        assert!(c
            .on_replica(rid, |db| db.head("k", "side").is_ok())
            .unwrap());

        // Deleting a branch must propagate (replace semantics).
        let mut wb = c.write_batch();
        wb.delete_branch("k", "side");
        wb.commit().unwrap();
        c.ship_replication();
        assert!(c
            .on_replica(rid, |db| db.head("k", "side").is_err())
            .unwrap());

        // Deleting the whole key ships a forget.
        let mut wb = c.write_batch();
        wb.delete_branch("k", "master");
        wb.commit().unwrap();
        c.ship_replication();
        assert!(!c
            .on_replica(rid, |db| db.list_keys().contains(&"k".to_string()))
            .unwrap());
    }

    #[test]
    fn promote_preserves_every_acked_write_after_kill() {
        let c = cluster(2);
        for i in 0..40 {
            c.put_string(&format!("key-{i}"), format!("v{i}"), PutOptions::default())
                .unwrap();
        }
        let pid = c.ids()[0];
        let rid = c.add_replica(pid, MemStore::new()).unwrap();
        // More writes after attach, deliberately NOT shipped: they sit in
        // the ship log when the primary dies.
        let mut acked: Vec<(String, crate::fnode::Uid)> = Vec::new();
        for i in 40..80 {
            let key = format!("key-{i}");
            let commit = c
                .put_string(&key, format!("v{i}"), PutOptions::default())
                .unwrap();
            acked.push((key, commit.uid));
        }
        let slot = c.ids().iter().position(|&id| id == pid).unwrap();
        c.kill_servelet(slot).unwrap();

        let old = c.promote_replica(rid).unwrap();
        assert_eq!(old, pid);
        assert_eq!(c.ids().iter().filter(|&&id| id == rid).count(), 1);
        assert!(!c.ids().contains(&pid), "the dead id left the topology");

        // Placement unchanged: every key readable, every acked head intact.
        for (key, uid) in &acked {
            if c.owner_id(key) == rid {
                let got = c.get(key, "master").unwrap();
                assert_eq!(got.uid, *uid, "{key} lost its acked head");
            }
        }
        for i in 0..80 {
            let key = format!("key-{i}");
            assert!(c.get(&key, "master").is_ok(), "{key} unreadable");
        }
        // Full history survived, not just heads.
        let sample = acked
            .iter()
            .find(|(k, _)| c.owner_id(k) == rid)
            .expect("some key owned by the promoted slot");
        let hist = c
            .with_key(&sample.0, {
                let key = sample.0.clone();
                move |db| db.history(&key, &VersionSpec::branch("master"))
            })
            .unwrap()
            .unwrap();
        assert!(!hist.is_empty());
    }

    #[test]
    fn supervisor_fails_over_to_replica_past_threshold() {
        let c = cluster(2);
        c.put_string("k1", "v".into(), PutOptions::default())
            .unwrap();
        let pid = c.ids()[0];
        let rid = c.add_replica(pid, MemStore::new()).unwrap();
        c.set_failover_threshold(Some(2));
        let slot = c.ids().iter().position(|&id| id == pid).unwrap();
        c.kill_servelet(slot).unwrap();

        // First pass: one failure — below threshold; the restart path
        // runs (and fails: no respawn factory installed).
        let report = c.supervise_once();
        assert!(report.promoted.is_empty());
        assert!(report.failed.iter().any(|(id, _)| *id == pid));

        // Second pass crosses the threshold: failover, not restart.
        let report = c.supervise_once();
        assert_eq!(report.promoted, vec![(pid, rid)]);
        assert!(c.ids().contains(&rid));
        assert!(c.is_fully_healthy());
    }

    #[test]
    fn topology_roundtrips_replicas_and_promotion_anchors() {
        let c = cluster(2);
        let pid = c.ids()[0];
        let rid = c.add_replica(pid, MemStore::new()).unwrap();
        let topo = c.topology();
        assert_eq!(topo.role_of(rid), Some(&TopoRole::Replica { primary: pid }));
        let reparsed = ClusterTopology::parse(&topo.encode()).unwrap();
        assert_eq!(reparsed, topo);

        // Reopen: the replica is attached (resyncing in full) and routing
        // is identical.
        let reopened =
            Cluster::from_topology(
                &reparsed,
                TreeConfig::test_config(),
                |_| Ok(MemStore::new()),
            )
            .unwrap();
        assert_eq!(reopened.replica_ids(), vec![(rid, pid)]);
        for i in 0..100 {
            let key = format!("key-{i}");
            assert_eq!(c.owner_id(&key), reopened.owner_id(&key));
        }

        // After promotion the record carries the anchor so the reopened
        // cluster still routes identically despite the new id.
        let owners: Vec<u64> = (0..100)
            .map(|i| c.route(&format!("key-{i}")) as u64)
            .collect();
        c.promote_replica(rid).unwrap();
        let owners_after: Vec<u64> = (0..100)
            .map(|i| c.route(&format!("key-{i}")) as u64)
            .collect();
        assert_eq!(owners, owners_after, "promotion moves no key");
        let topo = c.topology();
        assert_eq!(topo.role_of(rid), Some(&TopoRole::Primary { anchor: pid }));
        let reparsed = ClusterTopology::parse(&topo.encode()).unwrap();
        let reopened =
            Cluster::from_topology(
                &reparsed,
                TreeConfig::test_config(),
                |_| Ok(MemStore::new()),
            )
            .unwrap();
        for i in 0..100 {
            let key = format!("key-{i}");
            assert_eq!(c.owner_id(&key), reopened.owner_id(&key));
        }
    }

    #[test]
    fn rebalance_marks_replicas_for_full_resync() {
        let c = cluster(2);
        for i in 0..60 {
            c.put_string(&format!("key-{i}"), format!("v{i}"), PutOptions::default())
                .unwrap();
        }
        let pid = c.ids()[0];
        let rid = c.add_replica(pid, MemStore::new()).unwrap();
        c.add_servelet(MemStore::new()).unwrap();
        let status = c.replication_status();
        let r = status
            .primaries
            .iter()
            .flat_map(|p| p.replicas.iter())
            .find(|r| r.id == rid)
            .unwrap();
        assert!(r.needs_full_sync, "rebalance invalidates mirrors");
        let report = c.ship_replication();
        assert_eq!(report.synced, vec![rid]);
        // After the resync, the replica mirrors exactly the primary's
        // (post-rebalance) key set.
        let primary_keys = c
            .on_node(c.ids().iter().position(|&id| id == pid).unwrap(), |db| {
                db.list_keys()
            })
            .unwrap();
        let replica_keys = c.on_replica(rid, |db| db.list_keys()).unwrap();
        assert_eq!(primary_keys, replica_keys);
    }

    #[test]
    fn remove_primary_with_replicas_is_refused_and_replica_membership_errors() {
        let c = cluster(2);
        let pid = c.ids()[0];
        let rid = c.add_replica(pid, MemStore::new()).unwrap();
        let err = c.remove_servelet(pid).unwrap_err();
        assert!(matches!(err, DbError::InvalidInput(_)), "got {err:?}");
        assert!(c.add_replica(999, MemStore::new()).is_err());
        assert!(c.remove_replica(999).is_err());
        assert!(c.promote_replica(999).is_err());
        c.remove_replica(rid).unwrap();
        c.remove_servelet(pid).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn write_batch_captures_into_ship_log() {
        let c = cluster(2);
        let pid = c.ids()[0];
        let _rid = c.add_replica(pid, MemStore::new()).unwrap();
        let mut wb = c.write_batch();
        for i in 0..10 {
            wb.put(
                format!("bkey-{i}"),
                Value::string(format!("v{i}")),
                &PutOptions::default(),
            );
        }
        wb.commit().unwrap();
        let report = c.ship_replication();
        assert!(report.failed.is_empty());
        let status = c.replication_status();
        for p in &status.primaries {
            for r in &p.replicas {
                assert_eq!(r.lag, 0);
                assert_eq!(r.pending, 0);
            }
        }
    }
}
