//! Deterministic chaos injection at the RPC boundary.
//!
//! [`FaultyStore`](forkbase_store::FaultyStore) makes the *storage*
//! adversarial; [`ChaosPlan`] does the same one layer up, to the
//! *network* between the master and its servelets. A plan is seeded and
//! the fault stream is a pure function of `(seed, RPC sequence number)`,
//! so any failing run replays from its seed alone.
//!
//! Faults are injected on **data-plane** RPCs only (routed verbs,
//! scatter-gather). Control-plane traffic — migration internals,
//! supervision probes and restarts — is exempt: injecting faults into the
//! recovery machinery would test the simulator, not the system.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// What happens to one RPC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum Fault {
    /// Deliver and reply normally.
    None,
    /// The request is lost: the worker never sees it, the caller times
    /// out.
    DropRequest,
    /// The worker applies the request but the reply is lost; the caller
    /// times out against a live worker (a delay past the deadline).
    DropReply,
    /// The request is delivered twice (at-least-once network); the first
    /// reply wins.
    Duplicate,
    /// The worker crashes **before** applying the request.
    CrashBefore,
    /// The worker applies the request, then crashes before the reply
    /// escapes — the worst case for write ambiguity.
    CrashAfter,
}

/// A seeded, replayable fault schedule, injected per-RPC with the given
/// per-mille probabilities. Build with [`ChaosPlan::seeded`] plus the
/// chainable setters; arm on a cluster with
/// [`super::Cluster::arm_chaos`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// RNG seed; the entire fault stream derives from it.
    pub seed: u64,
    /// ‰ of RPCs whose request is dropped.
    pub drop_per_mille: u16,
    /// ‰ of RPCs whose reply is delayed past the deadline.
    pub delay_per_mille: u16,
    /// ‰ of RPCs delivered twice.
    pub duplicate_per_mille: u16,
    /// ‰ of RPCs that crash the worker before the request applies.
    pub crash_before_per_mille: u16,
    /// ‰ of RPCs that crash the worker after the request applies.
    pub crash_after_per_mille: u16,
    /// Cap on total injected crashes (so a plan cannot grind the whole
    /// cluster down faster than a supervisor could ever restart it).
    pub max_crashes: u32,
    /// Deterministically drop the first `n` RPCs regardless of the dice —
    /// the unit-test mode for exercising timeout paths without
    /// probability.
    pub drop_first: u32,
}

impl ChaosPlan {
    /// A plan with the given seed and no faults armed; chain setters to
    /// add fault probabilities.
    pub fn seeded(seed: u64) -> Self {
        ChaosPlan {
            seed,
            drop_per_mille: 0,
            delay_per_mille: 0,
            duplicate_per_mille: 0,
            crash_before_per_mille: 0,
            crash_after_per_mille: 0,
            max_crashes: u32::MAX,
            drop_first: 0,
        }
    }

    /// Set the request-drop probability (‰).
    pub fn drops(mut self, per_mille: u16) -> Self {
        self.drop_per_mille = per_mille;
        self
    }

    /// Set the delay-past-deadline probability (‰).
    pub fn delays(mut self, per_mille: u16) -> Self {
        self.delay_per_mille = per_mille;
        self
    }

    /// Set the duplicate-delivery probability (‰).
    pub fn duplicates(mut self, per_mille: u16) -> Self {
        self.duplicate_per_mille = per_mille;
        self
    }

    /// Set the crash-before-apply probability (‰).
    pub fn crashes_before(mut self, per_mille: u16) -> Self {
        self.crash_before_per_mille = per_mille;
        self
    }

    /// Set the crash-after-apply probability (‰).
    pub fn crashes_after(mut self, per_mille: u16) -> Self {
        self.crash_after_per_mille = per_mille;
        self
    }

    /// Cap the total number of injected crashes.
    pub fn max_crashes(mut self, n: u32) -> Self {
        self.max_crashes = n;
        self
    }

    /// Deterministically drop the first `n` RPCs.
    pub fn drop_first(mut self, n: u32) -> Self {
        self.drop_first = n;
        self
    }
}

/// What a chaos run actually injected ([`super::Cluster::chaos_report`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Data-plane RPCs that crossed the boundary while armed.
    pub rpcs: u64,
    /// Requests dropped.
    pub drops: u64,
    /// Replies delayed past the deadline.
    pub delays: u64,
    /// Requests delivered twice.
    pub duplicates: u64,
    /// Worker crashes injected (before- and after-apply combined).
    pub crashes: u64,
}

/// Live injection state: the plan plus the seeded RNG and counters.
pub(super) struct ChaosState {
    plan: ChaosPlan,
    rng: Mutex<u64>,
    events: AtomicU64,
    crashes: AtomicU64,
    drops: AtomicU64,
    delays: AtomicU64,
    duplicates: AtomicU64,
}

/// xorshift64: tiny, deterministic, and plenty for fault dice.
fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

impl ChaosState {
    pub(super) fn new(plan: ChaosPlan) -> Self {
        // xorshift has a fixed point at 0; displace the seed so every
        // seed (including 0) yields a live stream.
        let state = plan.seed ^ 0x9E37_79B9_7F4A_7C15;
        ChaosState {
            plan,
            rng: Mutex::new(if state == 0 { 1 } else { state }),
            events: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
        }
    }

    /// The fault for the next RPC. Crash faults respect
    /// [`ChaosPlan::max_crashes`]; past the cap they degrade to clean
    /// delivery.
    pub(super) fn next_fault(&self) -> Fault {
        let n = self.events.fetch_add(1, Ordering::Relaxed);
        if n < u64::from(self.plan.drop_first) {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return Fault::DropRequest;
        }
        let roll = (xorshift(&mut self.rng.lock()) % 1000) as u16;
        let p = &self.plan;
        let mut band = p.drop_per_mille;
        if roll < band {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return Fault::DropRequest;
        }
        band = band.saturating_add(p.delay_per_mille);
        if roll < band {
            self.delays.fetch_add(1, Ordering::Relaxed);
            return Fault::DropReply;
        }
        band = band.saturating_add(p.duplicate_per_mille);
        if roll < band {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            return Fault::Duplicate;
        }
        band = band.saturating_add(p.crash_before_per_mille);
        if roll < band {
            return self.try_crash(Fault::CrashBefore);
        }
        band = band.saturating_add(p.crash_after_per_mille);
        if roll < band {
            return self.try_crash(Fault::CrashAfter);
        }
        Fault::None
    }

    fn try_crash(&self, fault: Fault) -> Fault {
        let granted = self
            .crashes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < u64::from(self.plan.max_crashes)).then_some(n + 1)
            })
            .is_ok();
        if granted {
            fault
        } else {
            Fault::None
        }
    }

    pub(super) fn report(&self) -> ChaosReport {
        ChaosReport {
            rpcs: self.events.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_stream_is_a_pure_function_of_the_seed() {
        let plan = ChaosPlan::seeded(42)
            .drops(100)
            .delays(100)
            .duplicates(100)
            .crashes_before(50)
            .crashes_after(50);
        let a = ChaosState::new(plan);
        let b = ChaosState::new(plan);
        let sa: Vec<Fault> = (0..500).map(|_| a.next_fault()).collect();
        let sb: Vec<Fault> = (0..500).map(|_| b.next_fault()).collect();
        assert_eq!(sa, sb, "same seed, same fault stream");
        assert!(sa.iter().any(|f| *f != Fault::None), "faults actually fire");
        let c = ChaosState::new(ChaosPlan::seeded(43).drops(100));
        let sc: Vec<Fault> = (0..500).map(|_| c.next_fault()).collect();
        assert_ne!(sa, sc, "different seed, different stream");
    }

    #[test]
    fn drop_first_and_crash_cap() {
        let s = ChaosState::new(
            ChaosPlan::seeded(7)
                .drop_first(3)
                .crashes_before(1000)
                .max_crashes(2),
        );
        assert_eq!(s.next_fault(), Fault::DropRequest);
        assert_eq!(s.next_fault(), Fault::DropRequest);
        assert_eq!(s.next_fault(), Fault::DropRequest);
        let rest: Vec<Fault> = (0..50).map(|_| s.next_fault()).collect();
        let crashes = rest.iter().filter(|f| **f == Fault::CrashBefore).count();
        assert_eq!(crashes, 2, "crash cap honored");
        let r = s.report();
        assert_eq!(r.rpcs, 53);
        assert_eq!(r.drops, 3);
        assert_eq!(r.crashes, 2);
    }

    #[test]
    fn zero_seed_still_produces_faults() {
        let s = ChaosState::new(ChaosPlan::seeded(0).drops(500));
        let faults = (0..100)
            .filter(|_| s.next_fault() == Fault::DropRequest)
            .count();
        assert!(faults > 10, "xorshift must not be stuck at zero");
    }
}
