//! Elastic multi-servelet cluster.
//!
//! The ForkBase of the paper is "a distributed storage system": a master
//! dispatches requests to *servelets*, each owning a partition of the key
//! space. This module reproduces that architecture with a serializable
//! RPC surface ([`wire`]: `Request`/`Reply` enums with a frozen binary
//! encoding) carried by either of two transports:
//!
//! * **in-process** — every servelet is a worker thread owning a private
//!   [`ForkBase`] over any [`SweepStore`] backend (durable
//!   [`forkbase_store::FileStore`] packs in the CLI, [`MemStore`] in
//!   tests and benches); requests travel over crossbeam channels. Kept
//!   for tests, benches, and deterministic chaos injection.
//! * **TCP** — a servelet is a standalone process
//!   (`forkbase serve --servelet ADDR --data DIR`, served by
//!   [`net::ServeletServer`]) and the router reaches it over a
//!   length-prefixed, CRC-tailed, version-tagged frame codec (see
//!   `PROTOCOL.md`). Remote addresses persist in the [`ClusterTopology`]
//!   record.
//!
//! Keys are placed by consistent hashing either way, and every verb runs
//! through the same server-side dispatch, so the two transports are
//! behaviorally identical at the API.
//!
//! # Placement rule
//!
//! All versions of a key live on the same servelet, so diff/merge/history
//! never cross nodes — the same placement rule the real system uses, and
//! the property that lets partition-local version storage scale (cf. the
//! forkless-database line of work in PAPERS.md: cheap node-local
//! verification plus partition-local history).
//!
//! # Elasticity
//!
//! [`Cluster::add_servelet`] / [`Cluster::remove_servelet`] recompute the
//! consistent-hash ring and migrate **only** the keys whose ring owner
//! changed. Each moving key travels as a [`crate::bundle`] — its full
//! branch/version history with byte-identical chunk addresses — so version
//! uids, dedup, and tamper evidence survive the move: the import re-hashes
//! every chunk and walks every history before a single ref is installed.
//! Copy-phase failures roll back (placement unchanged); after every copy
//! verified, the new ring installs before sources drop their shadowed
//! copies, so later failures roll forward and the next rebalance heals
//! any residue (`plan_and_copy`'s authoritative-copy rule: of duplicate
//! holders, only the old ring owner's copy ever received writes).
//! Rebalance is stop-the-world for routed verbs (the rebalance gate);
//! clients block for its duration, they never observe a key in transit.
//!
//! # Ring stability
//!
//! Ring points are a pure function of `(servelet id, vnode)` — not of
//! construction order — and servelet ids are stable (allocated once, never
//! reused; persisted via [`ClusterTopology`]). Two clusters opened over
//! the same topology record route identically, no matter how many
//! add/remove steps produced them.
//!
//! # Fault tolerance
//!
//! Every routed RPC carries a per-call deadline ([`RpcConfig`]); a missed
//! deadline is the structured [`DbError::ServeletTimeout`], never a hang.
//! Idempotent verbs retry on a deterministic backoff schedule
//! ([`RetryPolicy`]); **writes never auto-retry past an ambiguous
//! outcome** — only a provably-undelivered request is retried, because a
//! timed-out write may still apply. Dead servelets are restarted in place
//! from their durable backends ([`Cluster::restart_servelet`], the
//! [`Supervisor`] loop), scatter verbs offer `*_partial` variants that
//! degrade instead of failing wholesale, and the whole layer is testable
//! under a seeded, replayable fault schedule ([`ChaosPlan`]).

mod chaos;
pub mod net;
mod ratelimit;
mod replication;
mod rpc;
mod supervisor;
pub mod wire;

pub use chaos::{ChaosPlan, ChaosReport};
pub use net::{PersistFn, ServeletServer};
pub use ratelimit::{RateLimit, RateLimiter};
pub use replication::{
    PrimaryReplication, ReplicaRead, ReplicaStatus, ReplicationStatus, ShipReport,
    PARTIAL_READ_MAX_LAG,
};
pub use rpc::{RetryPolicy, RpcConfig};
pub use supervisor::{
    HealthState, RemoteRespawnFn, Respawned, ServeletHealth, SupervisionReport, Supervisor,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use forkbase_crypto::sha256;
use forkbase_postree::TreeConfig;
use forkbase_store::{MemStore, SweepStore};
use parking_lot::{Mutex, RwLock};

use crate::api::{BatchOutcome, CommitResult, DbStat, GetResult, PutOptions, VersionSpec};
use crate::db::ForkBase;
use crate::error::{DbError, DbResult};
use crate::fnode::Uid;
use crate::forks::DiffSummary;
use crate::gc::GcReport;
use forkbase_types::Value;

use chaos::ChaosState;
use replication::ReplicationState;
use rpc::{call_control, maint_call, remote_node, shutdown_node, spawn_node, Node};
use supervisor::{HealthRecord, RespawnFn};
use wire::{Reply, Request, WireOp};

/// The mutable routing state: swapped atomically by rebalance.
struct State<S> {
    /// `(point, slot)` sorted by point — the consistent-hash ring.
    ring: Vec<(u64, usize)>,
    nodes: Vec<Arc<Node<S>>>,
    /// Ring anchor per slot, aligned with `nodes`: the id whose hash
    /// points the slot occupies on the ring. Initially the servelet's own
    /// id; after a promotion the promoted replica inherits the dead
    /// primary's anchor, so the slot keeps its ring position and **no key
    /// moves** when a replica takes over.
    anchors: Vec<u64>,
}

/// Virtual nodes per servelet on the hash ring; more points = smoother
/// key balance.
const VNODES: u32 = 32;

/// The role a topology entry plays in the cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopoRole {
    /// Owns a ring slot and serves writes. `anchor` is the id whose hash
    /// points the slot occupies — the servelet's own id unless a
    /// promotion put this servelet in a dead predecessor's slot.
    Primary {
        /// The id anchoring this slot's ring points.
        anchor: u64,
    },
    /// Mirrors a primary's data and serves staleness-bounded reads.
    Replica {
        /// The id of the primary this replica follows.
        primary: u64,
    },
}

/// A persistable description of a cluster's membership: the stable
/// servelet ids in slot order plus the next id to allocate. Reopening a
/// cluster from the same topology routes every key identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterTopology {
    /// Stable servelet ids: primaries in slot order, then replicas.
    pub servelet_ids: Vec<u64>,
    /// Per-servelet network address, aligned with
    /// [`Self::servelet_ids`]: `Some(addr)` for a standalone servelet
    /// process reached over TCP, `None` for one this process hosts over
    /// its own store. Empty means all-local (the pre-network record
    /// form, still parsed).
    pub addrs: Vec<Option<String>>,
    /// Per-servelet role, aligned with [`Self::servelet_ids`]. Records
    /// written before replication carry no role column; they parse as
    /// all-primary with each servelet anchoring its own slot.
    pub roles: Vec<TopoRole>,
    /// The id the next [`Cluster::add_servelet`] will assign. Monotone:
    /// removed ids are never reused, so a stale data directory can never
    /// be mistaken for a live servelet's.
    pub next_id: u64,
}

const TOPOLOGY_MAGIC: &str = "forkbase-cluster-topology-v1";

impl ClusterTopology {
    /// An all-local topology of self-anchored primaries (no servelet has
    /// a network address, none is a replica).
    pub fn local(servelet_ids: Vec<u64>, next_id: u64) -> ClusterTopology {
        let addrs = vec![None; servelet_ids.len()];
        let roles = servelet_ids
            .iter()
            .map(|&id| TopoRole::Primary { anchor: id })
            .collect();
        ClusterTopology {
            servelet_ids,
            addrs,
            roles,
            next_id,
        }
    }

    /// The address of servelet `id`, if it is remote.
    pub fn addr_of(&self, id: u64) -> Option<&str> {
        self.servelet_ids
            .iter()
            .position(|&s| s == id)
            .and_then(|i| self.addrs.get(i))
            .and_then(|a| a.as_deref())
    }

    /// The role of servelet `id`, if present.
    pub fn role_of(&self, id: u64) -> Option<&TopoRole> {
        self.servelet_ids
            .iter()
            .position(|&s| s == id)
            .and_then(|i| self.roles.get(i))
    }

    /// The ids of the primary servelets, in slot order.
    pub fn primary_ids(&self) -> Vec<u64> {
        self.servelet_ids
            .iter()
            .zip(&self.roles)
            .filter(|(_, r)| matches!(r, TopoRole::Primary { .. }))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Serialize as stable text (one record per line). Self-anchored
    /// primaries emit the historical layouts — `servelet\t<id>` (local)
    /// or `servelet\t<id>\t<addr>` (remote) — byte-identical to the
    /// pre-replication record, so old builds still parse a replica-free
    /// cluster. Replicas and promoted primaries need the role column:
    /// `servelet\t<id>\t<addr|->\t<role>` with role `primary:<anchor>` or
    /// `replica:<primary>` and `-` standing for "no address".
    pub fn encode(&self) -> String {
        let mut out = format!("{TOPOLOGY_MAGIC}\nnext-id\t{}\n", self.next_id);
        for (i, id) in self.servelet_ids.iter().enumerate() {
            let addr = self.addrs.get(i).and_then(|a| a.as_deref());
            let role = self.roles.get(i);
            // Legacy two/three-column layout for self-anchored primaries,
            // four-column otherwise.
            let self_anchored = match role {
                Some(TopoRole::Primary { anchor }) => *anchor == *id,
                None => true,
                Some(TopoRole::Replica { .. }) => false,
            };
            if self_anchored {
                match addr {
                    Some(addr) => out.push_str(&format!("servelet\t{id}\t{addr}\n")),
                    None => out.push_str(&format!("servelet\t{id}\n")),
                }
            } else {
                let addr = addr.unwrap_or("-");
                let role = match role.expect("non-self-anchored entries have a role") {
                    TopoRole::Primary { anchor } => format!("primary:{anchor}"),
                    TopoRole::Replica { primary } => format!("replica:{primary}"),
                };
                out.push_str(&format!("servelet\t{id}\t{addr}\t{role}\n"));
            }
        }
        out
    }

    /// Parse [`Self::encode`] output — any historical layout: two-column
    /// (pre-network), three-column (pre-replication), or four-column
    /// (with roles).
    pub fn parse(text: &str) -> DbResult<ClusterTopology> {
        let err = |m: &str| DbError::InvalidInput(format!("topology record: {m}"));
        let mut lines = text.lines();
        if lines.next() != Some(TOPOLOGY_MAGIC) {
            return Err(err("bad magic"));
        }
        let mut next_id = None;
        let mut servelet_ids = Vec::new();
        let mut addrs = Vec::new();
        let mut roles = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            match line.split_once('\t') {
                Some(("next-id", v)) => {
                    next_id = Some(v.parse::<u64>().map_err(|_| err("bad next-id"))?);
                }
                Some(("servelet", v)) => {
                    let parts: Vec<&str> = v.split('\t').collect();
                    let (id_text, addr, role_text) = match parts.as_slice() {
                        [id] => (*id, None, None),
                        [id, addr] => {
                            if addr.is_empty() {
                                return Err(err("empty servelet address"));
                            }
                            (*id, Some(addr.to_string()), None)
                        }
                        [id, addr, role] => {
                            let addr = match *addr {
                                "-" => None,
                                "" => return Err(err("empty servelet address")),
                                a => Some(a.to_string()),
                            };
                            (*id, addr, Some(*role))
                        }
                        _ => return Err(err("too many columns on servelet line")),
                    };
                    let id = id_text.parse::<u64>().map_err(|_| err("bad servelet id"))?;
                    let role = match role_text {
                        None | Some("primary") => TopoRole::Primary { anchor: id },
                        Some(r) => match r.split_once(':') {
                            Some(("primary", a)) => TopoRole::Primary {
                                anchor: a.parse().map_err(|_| err("bad primary anchor"))?,
                            },
                            Some(("replica", p)) => TopoRole::Replica {
                                primary: p.parse().map_err(|_| err("bad replica primary"))?,
                            },
                            _ => return Err(err("unknown servelet role")),
                        },
                    };
                    servelet_ids.push(id);
                    addrs.push(addr);
                    roles.push(role);
                }
                _ => return Err(err("unknown line")),
            }
        }
        if servelet_ids.is_empty() {
            return Err(err("no servelets"));
        }
        let mut seen = std::collections::HashSet::new();
        if !servelet_ids.iter().all(|id| seen.insert(*id)) {
            return Err(err("duplicate servelet id"));
        }
        let primaries: std::collections::HashSet<u64> = servelet_ids
            .iter()
            .zip(&roles)
            .filter(|(_, r)| matches!(r, TopoRole::Primary { .. }))
            .map(|(&id, _)| id)
            .collect();
        if primaries.is_empty() {
            return Err(err("no primary servelets"));
        }
        let mut anchors = std::collections::HashSet::new();
        for role in &roles {
            match role {
                TopoRole::Primary { anchor } => {
                    if !anchors.insert(*anchor) {
                        return Err(err("duplicate ring anchor"));
                    }
                }
                TopoRole::Replica { primary } => {
                    if !primaries.contains(primary) {
                        return Err(err("replica of unknown primary"));
                    }
                }
            }
        }
        let max = *servelet_ids.iter().max().expect("non-empty");
        let next_id = next_id.unwrap_or(max + 1);
        if next_id <= max {
            return Err(err("next-id must exceed every live id"));
        }
        Ok(ClusterTopology {
            servelet_ids,
            addrs,
            roles,
            next_id,
        })
    }
}

/// An in-process ForkBase cluster, elastic and generic over the servelet
/// store backend.
pub struct Cluster<S = MemStore> {
    state: RwLock<State<S>>,
    /// Routed verbs hold this shared; rebalance holds it exclusive, so a
    /// topology change never races an in-flight request and no request
    /// ever observes a key mid-migration. Restarts also hold it shared —
    /// they swap a worker in place without touching placement.
    rebalance_gate: RwLock<()>,
    /// Serializes [`Cluster::restart_servelet`] calls.
    restart_lock: Mutex<()>,
    next_id: AtomicU64,
    cfg: TreeConfig,
    /// Deadlines + retry policy for every RPC this cluster issues.
    rpc: RwLock<RpcConfig>,
    /// Armed chaos schedule, if any ([`Cluster::arm_chaos`]).
    chaos: RwLock<Option<Arc<ChaosState>>>,
    /// Factory rebuilding a crashed servelet's store
    /// ([`Cluster::set_respawn`]).
    respawn: RwLock<Option<RespawnFn<S>>>,
    /// Hook re-launching a crashed **remote** servelet process
    /// ([`Cluster::set_remote_respawn`]).
    remote_respawn: RwLock<Option<RemoteRespawnFn>>,
    /// Per-servelet supervision book-keeping.
    health_records: Mutex<BTreeMap<u64, HealthRecord>>,
    /// Per-primary replica sets and the ship log ([`replication`]).
    /// Lock order: never acquire `state` while holding this.
    replication: Mutex<ReplicationState<S>>,
}

/// Scatter-gathered per-servelet statistics ([`Cluster::stats`]).
#[derive(Clone, Debug)]
pub struct ClusterStat {
    /// `(servelet id, its DbStat)` in slot order.
    pub servelets: Vec<(u64, DbStat)>,
}

impl ClusterStat {
    /// Keys across all servelets.
    pub fn total_keys(&self) -> u64 {
        self.servelets.iter().map(|(_, s)| s.keys).sum()
    }

    /// Branches across all servelets.
    pub fn total_branches(&self) -> u64 {
        self.servelets.iter().map(|(_, s)| s.branches).sum()
    }

    /// Stored chunk-payload bytes across all servelets.
    pub fn total_stored_bytes(&self) -> u64 {
        self.servelets
            .iter()
            .map(|(_, s)| s.store.stored_bytes)
            .sum()
    }
}

impl std::fmt::Display for ClusterStat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cluster: {} servelet(s), {} key(s), {} branch(es), {} stored byte(s)",
            self.servelets.len(),
            self.total_keys(),
            self.total_branches(),
            self.total_stored_bytes()
        )?;
        for (id, stat) in &self.servelets {
            writeln!(
                f,
                "servelet {id}: {} key(s), {} branch(es), {} stored byte(s)",
                stat.keys, stat.branches, stat.store.stored_bytes
            )?;
        }
        Ok(())
    }
}

/// One bounded page of a routed [`Cluster::map_range`] scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapPage {
    /// The entries of the page, in key order.
    pub entries: Vec<(Bytes, Bytes)>,
    /// Whether entries remain past the page limit.
    pub truncated: bool,
    /// The snapshot version the page was served from.
    pub version: Uid,
}

/// A degradable scatter-gather result: per-servelet successes plus the
/// set of servelets that could not be reached within the deadline.
///
/// The degradation contract: `results` holds every reachable servelet's
/// answer (in slot order), `degraded` the stable ids of the unreachable
/// ones. `degraded` empty ⟺ the result is equivalent to the strict verb.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partial<T> {
    /// `(servelet id, result)` for every servelet that answered.
    pub results: Vec<(u64, T)>,
    /// Stable ids of servelets that were dead or timed out.
    pub degraded: Vec<u64>,
}

impl<T> Default for Partial<T> {
    fn default() -> Self {
        Partial {
            results: Vec::new(),
            degraded: Vec::new(),
        }
    }
}

impl<T> Partial<T> {
    /// Whether any servelet failed to answer.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }
}

/// Result of [`Cluster::heads_partial`]: per-pair heads with `None` for
/// pairs owned by unreachable servelets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartialHeads {
    /// One entry per input pair, in input order; `None` when the owning
    /// servelet was unreachable.
    pub heads: Vec<Option<Uid>>,
    /// Stable ids of the unreachable servelets.
    pub degraded: Vec<u64>,
}

/// Result of [`Cluster::gc`]: per-servelet reports plus the servelets
/// skipped because they were unreachable (their dead chunks survive until
/// a later pass finds them alive).
#[derive(Clone, Debug, Default)]
pub struct ClusterGcReport {
    /// `(servelet id, report)` for every servelet that ran its pass.
    pub reports: Vec<(u64, GcReport)>,
    /// Stable ids of servelets skipped as unreachable.
    pub degraded: Vec<u64>,
}

impl Cluster<MemStore> {
    /// Spin up `n` in-memory servelets (n ≥ 1) with the given tree
    /// configuration — the test/bench constructor. Servelet ids are
    /// `0..n`.
    pub fn new(n: usize, cfg: TreeConfig) -> Self {
        assert!(n >= 1, "a cluster needs at least one servelet");
        Self::from_stores((0..n as u64).map(|id| (id, MemStore::new())).collect(), cfg)
    }
}

impl<S: SweepStore + Send + 'static> Cluster<S> {
    /// Spin up one servelet per `(stable id, store)` pair. Ids must be
    /// distinct; the ring is a pure function of the id set, so the same
    /// ids always produce the same placement.
    pub fn from_stores(stores: Vec<(u64, S)>, cfg: TreeConfig) -> Self {
        assert!(!stores.is_empty(), "a cluster needs at least one servelet");
        let nodes: Vec<Arc<Node<S>>> = stores
            .into_iter()
            .map(|(id, store)| spawn_node(id, store, cfg))
            .collect();
        Self::from_nodes(nodes, cfg)
    }

    /// Build a cluster over already-constructed nodes (any mix of
    /// in-process and remote), each anchoring its own ring slot.
    fn from_nodes(nodes: Vec<Arc<Node<S>>>, cfg: TreeConfig) -> Self {
        let anchors: Vec<u64> = nodes.iter().map(|n| n.id).collect();
        Self::from_nodes_anchored(nodes, anchors, cfg)
    }

    /// [`Self::from_nodes`] with explicit ring anchors per slot (a
    /// promoted replica occupies its dead predecessor's ring position).
    fn from_nodes_anchored(nodes: Vec<Arc<Node<S>>>, anchors: Vec<u64>, cfg: TreeConfig) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs at least one servelet");
        assert_eq!(nodes.len(), anchors.len(), "one anchor per slot");
        let mut seen = std::collections::HashSet::new();
        let mut max_id = 0u64;
        for node in &nodes {
            assert!(seen.insert(node.id), "duplicate servelet id {}", node.id);
            max_id = max_id.max(node.id);
        }
        let mut seen_anchors = std::collections::HashSet::new();
        for &a in &anchors {
            assert!(seen_anchors.insert(a), "duplicate ring anchor {a}");
            max_id = max_id.max(a);
        }
        let ring = build_ring(&anchors);
        Cluster {
            state: RwLock::new(State {
                ring,
                nodes,
                anchors,
            }),
            rebalance_gate: RwLock::new(()),
            restart_lock: Mutex::new(()),
            next_id: AtomicU64::new(max_id + 1),
            cfg,
            rpc: RwLock::new(RpcConfig::default()),
            chaos: RwLock::new(None),
            respawn: RwLock::new(None),
            remote_respawn: RwLock::new(None),
            health_records: Mutex::new(BTreeMap::new()),
            replication: Mutex::new(ReplicationState::default()),
        }
    }

    /// Reopen a cluster from a persisted [`ClusterTopology`]. Servelets
    /// with a recorded address become remote nodes (routed over TCP;
    /// their processes own the stores); the rest are opened in-process
    /// via `open`. Routing is identical to the cluster that produced the
    /// record. `cfg` must match the configuration the data was written
    /// with (chunk boundaries are on-disk format).
    ///
    /// `open` doubles as the respawn factory for supervised restarts of
    /// the **local** servelets (without refs restoration — install a
    /// richer factory via [`Self::set_respawn`] if the backend also
    /// persists refs; remote restarts use
    /// [`Self::set_remote_respawn`]).
    pub fn from_topology(
        topology: &ClusterTopology,
        cfg: TreeConfig,
        open: impl Fn(u64) -> DbResult<S> + Send + Sync + 'static,
    ) -> DbResult<Self> {
        let mut seen = std::collections::HashSet::new();
        for &id in &topology.servelet_ids {
            if !seen.insert(id) {
                return Err(DbError::InvalidInput(format!(
                    "topology record: duplicate servelet id {id}"
                )));
            }
        }
        // Partition by role: primaries own ring slots, replicas attach to
        // their primary's set afterwards. A record with no role column is
        // all-primary (the historical layouts).
        let mut nodes = Vec::new();
        let mut anchors = Vec::new();
        let mut replicas: Vec<(u64, u64, Option<String>)> = Vec::new();
        for (i, &id) in topology.servelet_ids.iter().enumerate() {
            let addr = topology.addrs.get(i).and_then(|a| a.clone());
            let role = topology
                .roles
                .get(i)
                .cloned()
                .unwrap_or(TopoRole::Primary { anchor: id });
            match role {
                TopoRole::Primary { anchor } => {
                    match addr {
                        Some(addr) => nodes.push(remote_node(id, addr)),
                        None => nodes.push(spawn_node(id, open(id)?, cfg)),
                    }
                    anchors.push(anchor);
                }
                TopoRole::Replica { primary } => replicas.push((id, primary, addr)),
            }
        }
        if nodes.is_empty() {
            return Err(DbError::InvalidInput(
                "topology record: no primary servelets".into(),
            ));
        }
        let cluster = Self::from_nodes_anchored(nodes, anchors, cfg);
        cluster.next_id.store(topology.next_id, Ordering::Relaxed);
        for (id, primary, addr) in replicas {
            let node = match addr {
                Some(addr) => remote_node(id, addr),
                None => spawn_node(id, open(id)?, cfg),
            };
            // A reopened replica's lag relative to its primary is
            // unknown: it resyncs in full on the first ship.
            cluster.attach_replica_handle(primary, node)?;
        }
        cluster.set_respawn(move |id| {
            Ok(Respawned {
                store: open(id)?,
                refs: None,
            })
        });
        Ok(cluster)
    }

    /// Open a cluster whose servelets are **all** standalone processes:
    /// the pure-router constructor. Every topology entry must carry an
    /// address; this process opens no store at all.
    pub fn connect(topology: &ClusterTopology, cfg: TreeConfig) -> DbResult<Self> {
        for (i, &id) in topology.servelet_ids.iter().enumerate() {
            if topology.addrs.get(i).and_then(|a| a.as_deref()).is_none() {
                return Err(DbError::InvalidInput(format!(
                    "servelet {id} has no address: Cluster::connect requires an all-remote \
                     topology (use from_topology to host local servelets)"
                )));
            }
        }
        Self::from_topology(topology, cfg, |id| {
            Err(DbError::InvalidInput(format!(
                "servelet {id}: no local store in a connect()-ed cluster"
            )))
        })
    }

    // ------------------------------------------------------------------
    // Topology
    // ------------------------------------------------------------------

    /// Number of servelets.
    pub fn len(&self) -> usize {
        self.state.read().nodes.len()
    }

    /// Whether the cluster is empty (never true — kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.state.read().nodes.is_empty()
    }

    /// Stable **primary** servelet ids, in slot order (replicas are
    /// listed by [`replication::Cluster::replica_ids`](Self::replica_ids)).
    pub fn ids(&self) -> Vec<u64> {
        self.state.read().nodes.iter().map(|n| n.id).collect()
    }

    /// The persistable membership record, including remote addresses,
    /// ring anchors, and replicas (primaries in slot order first, then
    /// each primary's replicas).
    pub fn topology(&self) -> ClusterTopology {
        let state = self.state.read();
        let mut servelet_ids: Vec<u64> = state.nodes.iter().map(|n| n.id).collect();
        let mut addrs: Vec<Option<String>> = state
            .nodes
            .iter()
            .map(|n| n.addr().map(String::from))
            .collect();
        let mut roles: Vec<TopoRole> = state
            .anchors
            .iter()
            .map(|&anchor| TopoRole::Primary { anchor })
            .collect();
        let repl = self.replication.lock();
        for node in &state.nodes {
            if let Some(set) = repl.sets.get(&node.id) {
                for r in &set.replicas {
                    servelet_ids.push(r.id);
                    addrs.push(r.node.addr().map(String::from));
                    roles.push(TopoRole::Replica { primary: node.id });
                }
            }
        }
        ClusterTopology {
            servelet_ids,
            addrs,
            roles,
            next_id: self.next_id.load(Ordering::Relaxed),
        }
    }

    /// The network address of servelet `id`, if it is remote. Used by
    /// the REST gateway to enrich `servelet_unavailable` /
    /// `servelet_timeout` error bodies with where the failure happened.
    pub fn servelet_addr(&self, id: u64) -> Option<String> {
        let found = {
            let state = self.state.read();
            state
                .nodes
                .iter()
                .find(|n| n.id == id)
                .and_then(|n| n.addr().map(String::from))
        };
        found.or_else(|| {
            let repl = self.replication.lock();
            repl.sets
                .values()
                .flat_map(|s| s.replicas.iter())
                .find(|r| r.id == id)
                .and_then(|r| r.node.addr().map(String::from))
        })
    }

    /// The id the next [`Self::add_servelet`] will assign (so callers can
    /// provision the new servelet's store — e.g. its data directory —
    /// before handing it over).
    pub fn next_servelet_id(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// The slot of the servelet that owns `key` (consistent hashing).
    /// Slots shift when servelets are removed; [`Self::owner_id`] is the
    /// stable identity.
    pub fn route(&self, key: &str) -> usize {
        route_on(&self.state.read().ring, key)
    }

    /// The stable id of the servelet that owns `key`.
    pub fn owner_id(&self, key: &str) -> u64 {
        let state = self.state.read();
        state.nodes[route_on(&state.ring, key)].id
    }

    // ------------------------------------------------------------------
    // RPC configuration + chaos
    // ------------------------------------------------------------------

    /// The current deadlines + retry policy.
    pub fn rpc_config(&self) -> RpcConfig {
        self.rpc.read().clone()
    }

    /// Replace the deadlines + retry policy for subsequent RPCs.
    pub fn set_rpc_config(&self, cfg: RpcConfig) {
        *self.rpc.write() = cfg;
    }

    /// Arm a seeded chaos schedule on the data-plane RPC boundary.
    /// Replaces any armed plan; the fault stream restarts from the seed.
    pub fn arm_chaos(&self, plan: ChaosPlan) {
        *self.chaos.write() = Some(Arc::new(ChaosState::new(plan)));
    }

    /// Disarm chaos injection, returning what the armed plan injected.
    pub fn disarm_chaos(&self) -> Option<ChaosReport> {
        self.chaos.write().take().map(|s| s.report())
    }

    /// What the armed chaos plan has injected so far.
    pub fn chaos_report(&self) -> Option<ChaosReport> {
        self.chaos.read().as_ref().map(|s| s.report())
    }

    // ------------------------------------------------------------------
    // RPC plumbing
    // ------------------------------------------------------------------

    /// Run `f` against the database of servelet slot `slot` and wait for
    /// the result. Deadline-bounded: a dead servelet returns
    /// [`DbError::ServeletUnavailable`], a hung one
    /// [`DbError::ServeletTimeout`] — it never blocks forever and never
    /// panics the caller. As a maintenance door it is exempt from chaos
    /// injection and retries, and is **local-only**: closures cannot
    /// cross the wire, so a remote servelet returns
    /// [`DbError::InvalidInput`].
    pub fn on_node<R: Send + 'static>(
        &self,
        slot: usize,
        f: impl FnOnce(&ForkBase<S>) -> R + Send + 'static,
    ) -> DbResult<R> {
        let _gate = self.rebalance_gate.read();
        let node = {
            let state = self.state.read();
            state
                .nodes
                .get(slot)
                .cloned()
                .ok_or_else(|| DbError::InvalidInput(format!("no servelet at slot {slot}")))?
        };
        let deadline = self.rpc.read().deadline;
        maint_call(&node, deadline, f)
    }

    /// Run `f` against the servelet owning `key`. Routing and dispatch
    /// happen under one consistent view of the ring. Deadline-bounded;
    /// exempt from chaos injection and retries, local-only (see
    /// [`Self::on_node`]).
    pub fn with_key<R: Send + 'static>(
        &self,
        key: &str,
        f: impl FnOnce(&ForkBase<S>) -> R + Send + 'static,
    ) -> DbResult<R> {
        let _gate = self.rebalance_gate.read();
        let node = {
            let state = self.state.read();
            Arc::clone(&state.nodes[route_on(&state.ring, key)])
        };
        let deadline = self.rpc.read().deadline;
        maint_call(&node, deadline, f)
    }

    /// Route `key` and ship `req` to its owner with deadline, chaos, and
    /// the retry policy applied. `idempotent` selects the retry rule (the
    /// ambiguous-write rule — see [`RetryPolicy`]). The owner is
    /// re-resolved before every attempt so a supervised restart between
    /// attempts heals the call.
    fn routed(&self, key: &str, idempotent: bool, req: Request) -> DbResult<Reply> {
        let _gate = self.rebalance_gate.read();
        let rpc_cfg = self.rpc.read().clone();
        let chaos = self.chaos.read().clone();
        let key = key.to_string();
        rpc::retry_loop(
            &rpc_cfg,
            chaos.as_deref(),
            idempotent,
            || {
                let state = self.state.read();
                Arc::clone(&state.nodes[route_on(&state.ring, &key)])
            },
            req,
        )
    }

    /// [`Self::routed`] for mutating verbs: after a successful commit the
    /// written key is captured into the replication ship log **under the
    /// same gate hold**, so a promotion (which requires the gate
    /// exclusively) can never slip between a write's ack and its capture
    /// — the zero-acked-write-loss invariant. A capture failure surfaces
    /// as this call's error: the caller then never observed the write as
    /// acked, so the invariant holds vacuously.
    fn routed_write(&self, key: &str, req: Request) -> DbResult<Reply> {
        let _gate = self.rebalance_gate.read();
        let rpc_cfg = self.rpc.read().clone();
        let chaos = self.chaos.read().clone();
        let owned_key = key.to_string();
        let reply = rpc::retry_loop(
            &rpc_cfg,
            chaos.as_deref(),
            false,
            || {
                let state = self.state.read();
                Arc::clone(&state.nodes[route_on(&state.ring, &owned_key)])
            },
            req,
        )?;
        if !matches!(reply, Reply::Err(_)) {
            self.capture_locked(&[key])?;
        }
        Ok(reply)
    }

    /// Ship `req` to **every** servelet concurrently and gather
    /// per-servelet outcomes in slot order.
    fn scatter_results(&self, req: &Request) -> Vec<(u64, rpc::Outcome)> {
        let _gate = self.rebalance_gate.read();
        let nodes = self.state.read().nodes.clone();
        let deadline = self.rpc.read().deadline;
        let chaos = self.chaos.read().clone();
        rpc::scatter_nodes(&nodes, deadline, chaos.as_deref(), req)
    }

    /// Strict scatter-gather: the first unreachable servelet (or data
    /// error) fails the whole call. `extract` pulls the typed payload out
    /// of each reply.
    fn scatter<R>(
        &self,
        req: &Request,
        extract: impl Fn(Reply) -> DbResult<R>,
    ) -> DbResult<Vec<(u64, R)>> {
        self.scatter_results(req)
            .into_iter()
            .map(|(id, r)| match r {
                Ok(reply) => Ok((id, extract(reply)?)),
                Err(e) => Err(e.into_db(id)),
            })
            .collect()
    }

    /// Degrading scatter-gather: unreachable servelets land in
    /// [`Partial::degraded`] instead of failing the call. (The verbs
    /// using this are infallible server-side, so an extraction failure —
    /// a malformed or error reply — also degrades.)
    fn scatter_partial<R>(
        &self,
        req: &Request,
        extract: impl Fn(Reply) -> DbResult<R>,
    ) -> Partial<R> {
        let mut partial = Partial::default();
        for (id, r) in self.scatter_results(req) {
            match r.map(&extract) {
                Ok(Ok(v)) => partial.results.push((id, v)),
                Ok(Err(_)) | Err(_) => partial.degraded.push(id),
            }
        }
        partial
    }

    /// [`Self::scatter_partial`] with a replica second chance: each
    /// degraded primary is re-asked via
    /// [`Self::replica_answer`] before being reported degraded. The
    /// recovered entry keeps the *primary's* id.
    fn scatter_partial_with_replicas<R>(
        &self,
        req: &Request,
        extract: impl Fn(Reply) -> DbResult<R>,
    ) -> Partial<R> {
        let mut partial = self.scatter_partial(req, &extract);
        if partial.degraded.is_empty() {
            return partial;
        }
        let degraded = std::mem::take(&mut partial.degraded);
        for pid in degraded {
            match self.replica_answer(pid, req).and_then(|r| extract(r).ok()) {
                Some(v) => partial.results.push((pid, v)),
                None => partial.degraded.push(pid),
            }
        }
        partial
    }

    /// Shut down servelet slot `slot`'s worker **without** removing it
    /// from the ring — fault injection for dead-servelet handling: every
    /// later RPC routed to it returns [`DbError::ServeletUnavailable`]
    /// until [`Self::restart_servelet`] revives it.
    pub fn kill_servelet(&self, slot: usize) -> DbResult<()> {
        let node = {
            let state = self.state.read();
            state
                .nodes
                .get(slot)
                .cloned()
                .ok_or_else(|| DbError::InvalidInput(format!("no servelet at slot {slot}")))?
        };
        if node.is_remote() {
            return Err(DbError::InvalidInput(format!(
                "servelet {} is a remote process: kill it at the OS level, not via the router",
                node.id
            )));
        }
        shutdown_node(&node);
        self.health_records
            .lock()
            .entry(node.id)
            .or_default()
            .last_error = Some("killed by fault injection".into());
        Ok(())
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// `Put` routed to the owning servelet. Never auto-retried past an
    /// ambiguous outcome: a [`DbError::ServeletTimeout`] or
    /// [`DbError::ServeletUnavailable`] from a write means the commit
    /// *may or may not* have applied — re-read before re-issuing.
    pub fn put(&self, key: &str, value: Value, opts: PutOptions) -> DbResult<CommitResult> {
        self.routed_write(
            key,
            Request::Put {
                key: key.to_string(),
                value,
                opts,
            },
        )?
        .expect_commit()
    }

    /// `Put` a string value (cross-node safe: the value is built on the
    /// owning servelet).
    pub fn put_string(
        &self,
        key: &str,
        content: String,
        opts: PutOptions,
    ) -> DbResult<CommitResult> {
        self.put(key, Value::Str(content), opts)
    }

    /// `Put` a blob built from raw content on the owning servelet.
    pub fn put_blob(
        &self,
        key: &str,
        content: Vec<u8>,
        opts: PutOptions,
    ) -> DbResult<CommitResult> {
        self.routed_write(
            key,
            Request::PutBlob {
                key: key.to_string(),
                content: Bytes::from(content),
                opts,
            },
        )?
        .expect_commit()
    }

    /// `Get` routed to the owning servelet (idempotent: retried per the
    /// cluster's [`RetryPolicy`]).
    pub fn get(&self, key: &str, branch: &str) -> DbResult<GetResult> {
        self.routed(
            key,
            true,
            Request::Get {
                key: key.to_string(),
                branch: branch.to_string(),
            },
        )?
        .expect_get()
    }

    /// Spec-addressed `Get` routed to the owning servelet (wire v3).
    /// Resolves on the servelet, so branch specs read the head there
    /// atomically with the value fetch.
    pub fn get_at(&self, key: &str, spec: &VersionSpec) -> DbResult<GetResult> {
        self.routed(
            key,
            true,
            Request::GetAt {
                key: key.to_string(),
                spec: spec.clone(),
            },
        )?
        .expect_get()
    }

    /// Create `new_branch` of `key` pointing at an existing version,
    /// routed to the owning servelet (non-idempotent write: not
    /// auto-retried, persisted before ack over TCP).
    pub fn branch_from_version(&self, key: &str, uid: &Uid, new_branch: &str) -> DbResult<()> {
        self.routed_write(
            key,
            Request::BranchFromVersion {
                key: key.to_string(),
                uid: *uid,
                new_branch: new_branch.to_string(),
            },
        )?
        .expect_unit()
    }

    /// Delete a branch head of `key`, routed to the owning servelet.
    /// Versions stay until that servelet's GC sweeps them.
    pub fn delete_branch(&self, key: &str, branch: &str) -> DbResult<()> {
        self.routed_write(
            key,
            Request::DeleteBranch {
                key: key.to_string(),
                branch: branch.to_string(),
            },
        )?
        .expect_unit()
    }

    /// Summarized diff between two specs of one key, computed on the
    /// owning servelet (only the bounded [`DiffSummary`] crosses the
    /// wire).
    pub fn diff_specs(
        &self,
        key: &str,
        from: &VersionSpec,
        to: &VersionSpec,
    ) -> DbResult<DiffSummary> {
        self.routed(
            key,
            true,
            Request::DiffSpecs {
                key: key.to_string(),
                from: from.clone(),
                to: to.clone(),
            },
        )?
        .expect_diff()
    }

    /// Spec-addressed [`Self::map_range`]: one page of map entries in
    /// `[start, end)` at `spec`, at most `limit` entries.
    pub fn map_range_at(
        &self,
        key: &str,
        spec: &VersionSpec,
        start: Option<Bytes>,
        end: Option<Bytes>,
        limit: u64,
    ) -> DbResult<MapPage> {
        self.routed(
            key,
            true,
            Request::MapRangeAt {
                key: key.to_string(),
                spec: spec.clone(),
                start,
                end,
                limit,
            },
        )?
        .expect_page()
    }

    /// Start collecting a routed multi-key write batch (see
    /// [`ClusterWriteBatch`] for the atomicity contract).
    pub fn write_batch(&self) -> ClusterWriteBatch<'_, S> {
        ClusterWriteBatch {
            cluster: self,
            ops: Vec::new(),
            opts_pool: Vec::new(),
        }
    }

    /// Scatter-gather branch-head read. Pairs are grouped per owning
    /// servelet and each group is served by one consistent
    /// [`ForkBase::heads`] read, so the returned uids are torn-free **per
    /// servelet** (the same granularity [`ClusterWriteBatch`] commits at);
    /// results come back in input order. Strict: any unreachable owner
    /// fails the call — see [`Self::heads_partial`] to degrade instead.
    pub fn heads(&self, pairs: &[(&str, &str)]) -> DbResult<Vec<Uid>> {
        let _gate = self.rebalance_gate.read();
        let rpc_cfg = self.rpc.read().clone();
        let chaos = self.chaos.read().clone();
        let mut out: Vec<Option<Uid>> = vec![None; pairs.len()];
        for (slot, group) in self.head_groups(pairs) {
            let indices: Vec<usize> = group.iter().map(|(i, _, _)| *i).collect();
            let req = Request::Heads {
                pairs: group.into_iter().map(|(_, k, b)| (k, b)).collect(),
            };
            let uids = rpc::retry_loop(
                &rpc_cfg,
                chaos.as_deref(),
                true,
                || {
                    let state = self.state.read();
                    Arc::clone(&state.nodes[slot])
                },
                req,
            )?
            .expect_uids()?;
            for (i, uid) in indices.into_iter().zip(uids) {
                out[i] = Some(uid);
            }
        }
        Ok(out
            .into_iter()
            .map(|u| u.expect("every pair grouped"))
            .collect())
    }

    /// Degrading [`Self::heads`]: pairs owned by unreachable servelets
    /// come back `None` and the owners are reported in
    /// [`PartialHeads::degraded`]. Data errors (e.g. a missing branch on
    /// a *reachable* servelet) still fail the call.
    pub fn heads_partial(&self, pairs: &[(&str, &str)]) -> DbResult<PartialHeads> {
        let _gate = self.rebalance_gate.read();
        let rpc_cfg = self.rpc.read().clone();
        let chaos = self.chaos.read().clone();
        let mut out = PartialHeads {
            heads: vec![None; pairs.len()],
            degraded: Vec::new(),
        };
        for (slot, group) in self.head_groups(pairs) {
            let indices: Vec<usize> = group.iter().map(|(i, _, _)| *i).collect();
            let req = Request::Heads {
                pairs: group.into_iter().map(|(_, k, b)| (k, b)).collect(),
            };
            let result = rpc::retry_loop(
                &rpc_cfg,
                chaos.as_deref(),
                true,
                || {
                    let state = self.state.read();
                    Arc::clone(&state.nodes[slot])
                },
                req,
            );
            match result {
                Ok(reply) => {
                    let uids = reply.expect_uids()?;
                    for (i, uid) in indices.into_iter().zip(uids) {
                        out.heads[i] = Some(uid);
                    }
                }
                Err(
                    DbError::ServeletUnavailable { servelet }
                    | DbError::ServeletTimeout { servelet },
                ) => out.degraded.push(servelet),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Group head pairs by owning slot under one ring view.
    #[allow(clippy::type_complexity)]
    fn head_groups(&self, pairs: &[(&str, &str)]) -> BTreeMap<usize, Vec<(usize, String, String)>> {
        let state = self.state.read();
        let mut groups: BTreeMap<usize, Vec<(usize, String, String)>> = BTreeMap::new();
        for (i, (key, branch)) in pairs.iter().enumerate() {
            groups.entry(route_on(&state.ring, key)).or_default().push((
                i,
                key.to_string(),
                branch.to_string(),
            ));
        }
        groups
    }

    /// Scatter-gather statistics from every servelet. Strict — see
    /// [`Self::stats_partial`] to degrade instead.
    pub fn stats(&self) -> DbResult<ClusterStat> {
        Ok(ClusterStat {
            servelets: self.scatter(&Request::Stat, Reply::expect_stat)?,
        })
    }

    /// Degrading [`Self::stats`]: statistics from every reachable
    /// servelet plus the set of unreachable ones. A dead primary with a
    /// caught-up replica (lag ≤
    /// [`replication::PARTIAL_READ_MAX_LAG`]) is
    /// answered by that replica instead of degrading — the result keeps
    /// the primary's id, since it reports the primary's data.
    pub fn stats_partial(&self) -> Partial<DbStat> {
        self.scatter_partial_with_replicas(&Request::Stat, Reply::expect_stat)
    }

    /// Snapshot-backed routed range scan: one bounded page of map entries
    /// of `key@branch`, served by the owning servelet's streaming cursor
    /// (O(chunk) servelet memory; the page itself is bounded by `limit`).
    /// `start` is inclusive, `end` exclusive.
    pub fn map_range(
        &self,
        key: &str,
        branch: &str,
        start: Option<Bytes>,
        end: Option<Bytes>,
        limit: usize,
    ) -> DbResult<MapPage> {
        self.routed(
            key,
            true,
            Request::MapRange {
                key: key.to_string(),
                branch: branch.to_string(),
                start,
                end,
                limit: limit as u64,
            },
        )?
        .expect_page()
    }

    /// Degrading [`Self::map_range`]: an unreachable owner yields an
    /// empty result set with the owner reported in
    /// [`Partial::degraded`]; data errors still fail the call.
    pub fn map_range_partial(
        &self,
        key: &str,
        branch: &str,
        start: Option<Bytes>,
        end: Option<Bytes>,
        limit: usize,
    ) -> DbResult<Partial<MapPage>> {
        match self.map_range(key, branch, start, end, limit) {
            Ok(page) => Ok(Partial {
                results: vec![(self.owner_id(key), page)],
                degraded: Vec::new(),
            }),
            Err(
                DbError::ServeletUnavailable { servelet } | DbError::ServeletTimeout { servelet },
            ) => Ok(Partial {
                results: Vec::new(),
                degraded: vec![servelet],
            }),
            Err(e) => Err(e),
        }
    }

    /// All keys across every servelet, sorted and deduplicated (a key can
    /// transiently exist on two servelets after an interrupted rebalance,
    /// until the next one cleans the stale copy up). Strict — see
    /// [`Self::list_keys_partial`] to degrade instead.
    pub fn list_keys(&self) -> DbResult<Vec<String>> {
        let mut keys: Vec<String> = self
            .scatter(&Request::ListKeys, Reply::expect_keys)?
            .into_iter()
            .flat_map(|(_, k)| k)
            .collect();
        keys.sort();
        keys.dedup();
        Ok(keys)
    }

    /// Degrading [`Self::list_keys`]: per-servelet key lists from every
    /// reachable servelet plus the set of unreachable ones. Like
    /// [`Self::stats_partial`], a dead primary's caught-up replica
    /// answers for it before the primary is declared degraded.
    pub fn list_keys_partial(&self) -> Partial<Vec<String>> {
        self.scatter_partial_with_replicas(&Request::ListKeys, Reply::expect_keys)
    }

    /// Aggregate stored chunk-payload bytes across servelets.
    pub fn total_stored_bytes(&self) -> DbResult<u64> {
        Ok(self
            .scatter(&Request::StoredBytes, Reply::expect_count)?
            .into_iter()
            .map(|(_, b)| b)
            .sum())
    }

    /// Distribution of keys per servelet slot (for balance checks).
    pub fn key_distribution(&self) -> DbResult<Vec<usize>> {
        Ok(self
            .scatter(&Request::ListKeys, Reply::expect_keys)?
            .into_iter()
            .map(|(_, k)| k.len())
            .collect())
    }

    /// Run a garbage-collection pass on every reachable servelet.
    /// Unreachable servelets are **skipped and reported** in
    /// [`ClusterGcReport::degraded`] rather than failing the pass — their
    /// dead chunks simply survive until a later pass finds them alive. A
    /// GC failure on a *reachable* servelet still fails the call.
    pub fn gc(&self) -> DbResult<ClusterGcReport> {
        let mut out = ClusterGcReport::default();
        for (id, r) in self.scatter_results(&Request::Gc) {
            match r {
                Ok(reply) => out.reports.push((id, reply.expect_gc()?)),
                Err(_) => out.degraded.push(id),
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Elasticity
    // ------------------------------------------------------------------

    /// Add a servelet backed by `store` and migrate to it exactly the keys
    /// whose ring owner changed (with consistent hashing, keys only ever
    /// move *onto* the new servelet). Returns the new servelet's stable
    /// id. Stop-the-world for routed verbs while the migration runs.
    ///
    /// Failure semantics: an error during the copy phase rolls the copies
    /// back and leaves placement exactly as it was. Once every copy has
    /// verified, the new ring is installed **before** the sources drop
    /// their (now shadowed) copies, so a cutover error rolls *forward*:
    /// the topology change sticks, every key is served by its new owner,
    /// and the next rebalance cleans up any stale source copies.
    pub fn add_servelet(&self, store: S) -> DbResult<u64> {
        let _gate = self.rebalance_gate.write();
        let deadline = self.rpc.read().control_deadline;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let node = spawn_node(id, store, self.cfg);
        let (old_nodes, old_ring, new_ring) = {
            let state = self.state.read();
            let mut ids: Vec<u64> = state.anchors.clone();
            ids.push(id);
            (state.nodes.clone(), state.ring.clone(), build_ring(&ids))
        };
        let mut all_nodes = old_nodes;
        all_nodes.push(Arc::clone(&node));
        let plan = plan_and_copy(&all_nodes, &old_ring, &new_ring, deadline)?;
        {
            let mut state = self.state.write();
            state.nodes.push(node);
            state.anchors.push(id);
            state.ring = new_ring;
        }
        // Keys just moved between primaries: every replica's mirror is
        // now of the wrong key set, so all resync in full on next ship.
        self.mark_replicas_stale();
        cutover(&all_nodes, plan, deadline)?;
        Ok(id)
    }

    /// [`Self::add_servelet`] for a **remote** servelet process already
    /// listening on `addr` (see `forkbase serve --servelet`). The same
    /// migration runs, with every copy crossing the wire as serialized
    /// control-plane requests. The process must be empty or hold only
    /// keys it will own — imports collide with pre-existing copies the
    /// same way they would in process.
    pub fn add_remote_servelet(&self, addr: impl Into<String>) -> DbResult<u64> {
        let _gate = self.rebalance_gate.write();
        let deadline = self.rpc.read().control_deadline;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let node = remote_node(id, addr.into());
        // Fail fast if nobody is listening, before any state changes.
        call_control(&node, self.rpc.read().probe_deadline, Request::Probe)?.expect_unit()?;
        let (old_nodes, old_ring, new_ring) = {
            let state = self.state.read();
            let mut ids: Vec<u64> = state.anchors.clone();
            ids.push(id);
            (state.nodes.clone(), state.ring.clone(), build_ring(&ids))
        };
        let mut all_nodes = old_nodes;
        all_nodes.push(Arc::clone(&node));
        let plan = plan_and_copy(&all_nodes, &old_ring, &new_ring, deadline)?;
        {
            let mut state = self.state.write();
            state.nodes.push(node);
            state.anchors.push(id);
            state.ring = new_ring;
        }
        self.mark_replicas_stale();
        cutover(&all_nodes, plan, deadline)?;
        Ok(id)
    }

    /// Remove servelet `id`, first migrating every key it owns to its new
    /// ring owner. Refuses to remove the last servelet. Stop-the-world for
    /// routed verbs while the migration runs; the servelet thread is shut
    /// down once it holds no data.
    ///
    /// A **dead** servelet (worker thread gone — see [`Self::kill_servelet`])
    /// cannot be drained: its keys are only readable from its store, so
    /// this returns [`DbError::ServeletUnavailable`] rather than silently
    /// dropping them. Restart it first ([`Self::restart_servelet`]), or
    /// for durable backends reopen the cluster from its persisted
    /// topology and remove the servelet then.
    pub fn remove_servelet(&self, id: u64) -> DbResult<()> {
        let _gate = self.rebalance_gate.write();
        {
            let repl = self.replication.lock();
            if let Some(set) = repl.sets.get(&id) {
                if !set.replicas.is_empty() {
                    return Err(DbError::InvalidInput(format!(
                        "servelet {id} has {} replica(s): remove or promote them before \
                         removing the primary",
                        set.replicas.len()
                    )));
                }
            }
        }
        let deadline = self.rpc.read().control_deadline;
        let (nodes, old_ring, slot, interim_ring) = {
            let state = self.state.read();
            if state.nodes.len() <= 1 {
                return Err(DbError::InvalidInput(
                    "cannot remove the last servelet".into(),
                ));
            }
            let slot = state
                .nodes
                .iter()
                .position(|n| n.id == id)
                .ok_or_else(|| DbError::InvalidInput(format!("no servelet with id {id}")))?;
            // Ring without the departing slot's anchor, but still over the
            // OLD slot numbering, so migration routes into the current
            // node vector.
            let ids: Vec<(u64, usize)> = state
                .anchors
                .iter()
                .enumerate()
                .filter(|(s, _)| *s != slot)
                .map(|(s, &a)| (a, s))
                .collect();
            (
                state.nodes.clone(),
                state.ring.clone(),
                slot,
                build_ring_slots(&ids),
            )
        };
        let plan = plan_and_copy(&nodes, &old_ring, &interim_ring, deadline)?;
        let node = {
            let mut state = self.state.write();
            let node = state.nodes.remove(slot);
            state.anchors.remove(slot);
            // Same owners as `interim_ring` (points depend only on the
            // anchors); only the slot numbering is compacted.
            state.ring = build_ring(&state.anchors);
            node
        };
        self.mark_replicas_stale();
        self.replication.lock().sets.remove(&id);
        // Roll forward like `add_servelet`: copies are verified and the
        // ring no longer routes to the victim, so cutover/shutdown errors
        // must not resurrect it.
        let cut = cutover(&nodes, plan, deadline);
        shutdown_node(&node);
        self.health_records.lock().remove(&id);
        cut
    }
}

/// A collection of writes across many keys, routed per owning servelet.
///
/// On [`ClusterWriteBatch::commit`], ops are grouped by owner and each
/// group commits through that servelet's atomic
/// [`crate::api::WriteBatch`]:
///
/// * **per-servelet atomicity** — all ops landing on one servelet commit
///   (and become visible) together or not at all;
/// * **deterministic cross-servelet ordering** — groups commit in
///   ascending servelet slot order, so failures always leave a prefix of
///   slots committed;
/// * **no cross-servelet atomicity** — if the group on slot `k` fails,
///   groups on slots `< k` have already committed and stay committed. A
///   cluster is not a distributed transaction coordinator; callers that
///   need all-or-nothing semantics must keep the batch on one servelet
///   (e.g. by key choice) or reconcile on error.
pub struct ClusterWriteBatch<'c, S: SweepStore + Send + 'static> {
    cluster: &'c Cluster<S>,
    ops: Vec<ClusterOp>,
    /// Distinct option sets staged so far (same interning discipline as
    /// [`crate::api::WriteBatch`]): staging is an `Arc` bump, not three
    /// `String` clones per op.
    opts_pool: Vec<Arc<PutOptions>>,
}

#[derive(Clone)]
enum ClusterOp {
    Put {
        key: String,
        value: Value,
        opts: Arc<PutOptions>,
    },
    DeleteBranch {
        key: String,
        branch: String,
    },
}

impl ClusterOp {
    fn key(&self) -> &str {
        match self {
            ClusterOp::Put { key, .. } | ClusterOp::DeleteBranch { key, .. } => key,
        }
    }
}

impl<S: SweepStore + Send + 'static> ClusterWriteBatch<'_, S> {
    /// Stage a `Put` of `value` on `(key, opts.branch)`.
    pub fn put(&mut self, key: impl Into<String>, value: Value, opts: &PutOptions) -> &mut Self {
        let opts = crate::api::batch::intern_opts(&mut self.opts_pool, opts);
        self.ops.push(ClusterOp::Put {
            key: key.into(),
            value,
            opts,
        });
        self
    }

    /// Stage a branch deletion.
    pub fn delete_branch(
        &mut self,
        key: impl Into<String>,
        branch: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(ClusterOp::DeleteBranch {
            key: key.into(),
            branch: branch.into(),
        });
        self
    }

    /// Number of staged operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch has no staged operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Commit every staged op, grouped per owning servelet, each group
    /// through one atomic [`crate::api::WriteBatch`]. Outcomes return in
    /// batch order. See the type docs for the atomicity contract.
    ///
    /// Writes: per-group commits are never auto-retried past an ambiguous
    /// outcome (see [`RetryPolicy`]); a [`DbError::ServeletTimeout`] means
    /// that group *may* have committed.
    pub fn commit(self) -> DbResult<Vec<BatchOutcome>> {
        if self.ops.is_empty() {
            return Ok(Vec::new());
        }
        let cluster = self.cluster;
        let _gate = cluster.rebalance_gate.read();
        let rpc_cfg = cluster.rpc.read().clone();
        let chaos = cluster.chaos.read().clone();
        let groups = {
            let state = cluster.state.read();
            let mut groups: BTreeMap<usize, Vec<(usize, ClusterOp)>> = BTreeMap::new();
            for (i, op) in self.ops.into_iter().enumerate() {
                groups
                    .entry(route_on(&state.ring, op.key()))
                    .or_default()
                    .push((i, op));
            }
            groups
        };
        let mut out: Vec<Option<BatchOutcome>> = Vec::new();
        out.resize_with(groups.values().map(Vec::len).sum(), || None);
        // Ascending slot order: deterministic, so a failure always leaves
        // a prefix of slots committed (documented above).
        for (slot, group) in groups {
            let indices: Vec<usize> = group.iter().map(|(i, _)| *i).collect();
            let mut keys: Vec<String> = group.iter().map(|(_, op)| op.key().to_string()).collect();
            keys.sort();
            keys.dedup();
            let ops: Vec<WireOp> = group
                .into_iter()
                .map(|(_, op)| match op {
                    ClusterOp::Put { key, value, opts } => WireOp::Put {
                        key,
                        value,
                        opts: (*opts).clone(),
                    },
                    ClusterOp::DeleteBranch { key, branch } => WireOp::DeleteBranch { key, branch },
                })
                .collect();
            let outcomes = rpc::retry_loop(
                &rpc_cfg,
                chaos.as_deref(),
                false,
                || {
                    let state = cluster.state.read();
                    Arc::clone(&state.nodes[slot])
                },
                Request::Batch { ops },
            )?
            .expect_outcomes()?;
            // Capture under the gate held since before the commit: a
            // promotion cannot slip between the group's ack and this.
            let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            cluster.capture_locked(&key_refs)?;
            for (i, outcome) in indices.into_iter().zip(outcomes) {
                out[i] = Some(outcome);
            }
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("every op grouped"))
            .collect())
    }
}

impl<S> Drop for Cluster<S> {
    fn drop(&mut self) {
        let nodes = std::mem::take(&mut self.state.get_mut().nodes);
        let sets = std::mem::take(&mut self.replication.get_mut().sets);
        let replicas: Vec<_> = sets
            .values()
            .flat_map(|s| s.replicas.iter().map(|r| Arc::clone(&r.node)))
            .collect();
        for node in nodes.iter().chain(&replicas) {
            node.transport.signal_shutdown();
        }
        for node in nodes.iter().chain(&replicas) {
            node.transport.join();
        }
    }
}

// ----------------------------------------------------------------------
// Free helpers (no `self` borrow, so rebalance can use them while holding
// the gate exclusively)
// ----------------------------------------------------------------------

/// The ring point of `(servelet id, vnode)` — a pure function of the
/// stable id, never of construction order or slot position.
fn ring_point(servelet_id: u64, vnode: u32) -> u64 {
    let mut buf = [0u8; 28];
    buf[..16].copy_from_slice(b"forkbase-ring-v1");
    buf[16..24].copy_from_slice(&servelet_id.to_le_bytes());
    buf[24..28].copy_from_slice(&vnode.to_le_bytes());
    let h = sha256(&buf);
    u64::from_le_bytes(h.as_bytes()[..8].try_into().expect("8 bytes"))
}

/// The ring point a key hashes to.
fn key_point(key: &str) -> u64 {
    let h = sha256(key.as_bytes());
    u64::from_le_bytes(h.as_bytes()[..8].try_into().expect("8 bytes"))
}

/// Build the ring for ids in slot order (`slot = index in ids`).
fn build_ring(ids: &[u64]) -> Vec<(u64, usize)> {
    build_ring_slots(
        &ids.iter()
            .enumerate()
            .map(|(slot, &id)| (id, slot))
            .collect::<Vec<_>>(),
    )
}

/// Build a ring over explicit `(id, slot)` pairs. Ties on the point value
/// break by servelet id, so ownership is a pure function of the id set.
fn build_ring_slots(ids: &[(u64, usize)]) -> Vec<(u64, usize)> {
    let mut ring: Vec<(u64, u64, usize)> = Vec::with_capacity(ids.len() * VNODES as usize);
    for &(id, slot) in ids {
        for v in 0..VNODES {
            ring.push((ring_point(id, v), id, slot));
        }
    }
    ring.sort_unstable();
    ring.into_iter().map(|(p, _, slot)| (p, slot)).collect()
}

fn route_on(ring: &[(u64, usize)], key: &str) -> usize {
    let point = key_point(key);
    let idx = ring.partition_point(|(p, _)| *p < point);
    ring[idx % ring.len()].1
}

/// A migration plan after its copy phase: every destination holds a
/// verified copy of the keys that move; `forgets` lists the source refs
/// to drop at cutover.
struct MigrationPlan {
    /// `(source slot, keys to forget there)`.
    forgets: Vec<(usize, Vec<String>)>,
}

/// Plan and copy: move every key whose owner under `new_ring` differs
/// from the slot it currently lives on. Keys travel grouped per
/// (source, destination) pair as one bundle each: full branch/version
/// history, byte-identical chunk addresses, hash-verified on import.
///
/// A key the destination **already holds** (the residue of a rebalance
/// that was interrupted between copy and cutover — e.g. a process crash
/// between the CLI's durable writes) is not re-imported: the ring owner's
/// copy is authoritative, so the stale source copy is simply scheduled
/// for cutover. This makes interrupted rebalances converge instead of
/// wedging on a diverged-head import conflict.
///
/// On any copy failure the already-imported keys are rolled back on
/// their destinations (including a partially imported group — refs
/// install one key at a time as each verifies) and placement is exactly
/// as it was.
fn plan_and_copy<S: SweepStore + Send + 'static>(
    nodes: &[Arc<Node<S>>],
    old_ring: &[(u64, usize)],
    new_ring: &[(u64, usize)],
    deadline: std::time::Duration,
) -> DbResult<MigrationPlan> {
    // Who holds each key (normally exactly one slot; more after an
    // interrupted rebalance), then the move plan per key:
    // the authoritative copy travels, every other copy is stale.
    let mut holders: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (slot, node) in nodes.iter().enumerate() {
        for key in call_control(node, deadline, Request::ListKeys)?.expect_keys()? {
            holders.entry(key).or_default().push(slot);
        }
    }
    let mut moves: BTreeMap<(usize, usize), Vec<String>> = BTreeMap::new();
    let mut forgets: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    // Stale copies sitting where an import must land: dropped BEFORE the
    // copy phase (they would collide with the import). Safe at any time —
    // writes were never routed to a stale copy, so it holds no unique
    // history.
    let mut pre_forgets: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (key, slots) in holders {
        let dst = route_on(new_ring, &key);
        let old_owner = route_on(old_ring, &key);
        // The authoritative copy is the one writes were routed to (the
        // old ring owner); residue of an interrupted rebalance never holds
        // unique writes.
        let auth = if slots.contains(&old_owner) {
            old_owner
        } else if slots.contains(&dst) {
            dst
        } else {
            slots[0]
        };
        if auth == dst {
            // Already where it belongs: every other holder is stale.
            for s in slots.into_iter().filter(|&s| s != dst) {
                forgets.entry(s).or_default().push(key.clone());
            }
            continue;
        }
        if slots.contains(&dst) {
            pre_forgets.entry(dst).or_default().push(key.clone());
        }
        moves.entry((auth, dst)).or_default().push(key.clone());
        // After the move lands on dst, every pre-existing copy —
        // including the authoritative source — is dropped at cutover.
        for s in slots.into_iter().filter(|&s| s != dst) {
            forgets.entry(s).or_default().push(key.clone());
        }
    }

    // Copy phase.
    for (slot, keys) in pre_forgets {
        call_control(&nodes[slot], deadline, Request::ForgetKeys { keys })?.expect_unit()?;
    }
    let mut imported: Vec<(usize, Vec<String>)> = Vec::new();
    let copied = (|| -> DbResult<()> {
        for ((src, dst), keys) in &moves {
            let bundle = call_control(
                &nodes[*src],
                deadline,
                Request::ExportBundle { keys: keys.clone() },
            )?
            .expect_blob()?;
            imported.push((*dst, keys.clone()));
            call_control(&nodes[*dst], deadline, Request::ImportBundle { bundle })?
                .expect_unit()?;
        }
        Ok(())
    })();
    if let Err(e) = copied {
        // Undo the imports; the pre-forgotten stale copies stay gone
        // (they held nothing unique) — the authoritative copies are all
        // still in place, so placement is unchanged.
        for (dst, keys) in imported {
            let _ = call_control(&nodes[dst], deadline, Request::ForgetKeys { keys });
        }
        return Err(e);
    }

    Ok(MigrationPlan {
        forgets: forgets.into_iter().collect(),
    })
}

/// Cutover: drop the source refs of a copied-and-verified plan. Runs
/// AFTER the new ring is installed, so an error here (e.g. a source
/// worker died mid-loop) leaves shadowed stale copies — cleaned up by the
/// next rebalance — never an unreachable key. The chunks themselves stay
/// until each servelet's next GC.
fn cutover<S: SweepStore + Send + 'static>(
    nodes: &[Arc<Node<S>>],
    plan: MigrationPlan,
    deadline: std::time::Duration,
) -> DbResult<()> {
    for (src, keys) in plan.forgets {
        call_control(&nodes[src], deadline, Request::ForgetKeys { keys })?.expect_unit()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::VersionSpec;

    fn cluster(n: usize) -> Cluster {
        Cluster::new(n, TreeConfig::test_config())
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let c = cluster(4);
        for i in 0..100 {
            let key = format!("key-{i}");
            let a = c.route(&key);
            let b = c.route(&key);
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn keys_spread_across_servelets() {
        let c = cluster(4);
        for i in 0..200 {
            c.put_string(
                &format!("key-{i}"),
                format!("value {i}"),
                PutOptions::default(),
            )
            .unwrap();
        }
        let dist = c.key_distribution().unwrap();
        assert_eq!(dist.iter().sum::<usize>(), 200);
        for (node, count) in dist.iter().enumerate() {
            assert!(
                *count > 10,
                "servelet {node} owns only {count} of 200 keys — ring imbalance"
            );
        }
    }

    #[test]
    fn put_get_roundtrip_through_cluster() {
        let c = cluster(3);
        c.put_string("doc", "distributed hello".into(), PutOptions::default())
            .unwrap();
        let got = c.get("doc", "master").unwrap();
        assert_eq!(got.value.as_str(), Some("distributed hello"));
    }

    #[test]
    fn versions_of_a_key_stay_on_one_servelet() {
        let c = cluster(4);
        for rev in 0..5 {
            c.put_string("evolving", format!("rev {rev}"), PutOptions::default())
                .unwrap();
        }
        // History must be fully resolvable on the owning node.
        let history = c
            .with_key("evolving", |db| {
                db.history("evolving", &VersionSpec::branch("master"))
            })
            .unwrap();
        assert_eq!(history.unwrap().len(), 5);
        // And absent everywhere else.
        let owner = c.route("evolving");
        for node in 0..c.len() {
            let present = c
                .on_node(node, |db| db.list_keys().contains(&"evolving".to_string()))
                .unwrap();
            assert_eq!(present, node == owner);
        }
    }

    #[test]
    fn branch_and_merge_on_owning_servelet() {
        let c = cluster(2);
        c.with_key("data", |db| {
            let pairs = (0..200)
                .map(|i| {
                    (
                        bytes::Bytes::from(format!("k{i:04}")),
                        bytes::Bytes::from(format!("v{i}")),
                    )
                })
                .collect();
            let map = db.new_map(pairs)?;
            db.put("data", map, &PutOptions::default())?;
            db.branch("data", "master", "dev")?;
            let head = db.get("data", "dev")?;
            let updated = db.map_apply(
                &head.value,
                vec![forkbase_postree::MapEdit::put(
                    bytes::Bytes::from_static(b"k0001"),
                    bytes::Bytes::from_static(b"changed"),
                )],
            )?;
            db.put("data", updated, &PutOptions::on_branch("dev"))?;
            db.merge(
                "data",
                "master",
                "dev",
                forkbase_postree::MergePolicy::Fail,
                &PutOptions::default(),
            )
        })
        .unwrap()
        .unwrap();
        let merged = c.get("data", "master").unwrap();
        let v = c
            .with_key("data", move |db| db.map_get(&merged.value, b"k0001"))
            .unwrap();
        assert_eq!(v.unwrap(), Some(bytes::Bytes::from_static(b"changed")));
    }

    #[test]
    fn concurrent_clients() {
        let c = std::sync::Arc::new(cluster(4));
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    c.put_string(
                        &format!("client{t}-key{i}"),
                        format!("payload {t}/{i}"),
                        PutOptions::default(),
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.list_keys().unwrap().len(), 8 * 25);
    }

    #[test]
    fn stored_bytes_aggregate() {
        let c = cluster(2);
        assert_eq!(c.total_stored_bytes().unwrap(), 0);
        // Varied content: constant bytes would self-dedup to almost nothing.
        let content: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        c.put_blob("blob", content, PutOptions::default()).unwrap();
        assert!(c.total_stored_bytes().unwrap() >= 10_000);
    }

    #[test]
    fn dead_servelet_is_a_structured_error_not_a_panic() {
        let c = cluster(2);
        c.put_string("a-key", "v".into(), PutOptions::default())
            .unwrap();
        let victim = c.route("a-key");
        c.kill_servelet(victim).unwrap();
        let err = c.get("a-key", "master").unwrap_err();
        assert!(
            matches!(err, DbError::ServeletUnavailable { .. }),
            "got {err:?}"
        );
        assert_eq!(err.code(), "servelet_unavailable");
        // Keys on the surviving servelet still serve.
        let survivor = (victim + 1) % 2;
        let key = (0..)
            .map(|i| format!("probe-{i}"))
            .find(|k| c.route(k) == survivor)
            .unwrap();
        c.put_string(&key, "alive".into(), PutOptions::default())
            .unwrap();
        assert_eq!(c.get(&key, "master").unwrap().value.as_str(), Some("alive"));
    }

    #[test]
    fn ring_is_a_pure_function_of_servelet_ids() {
        // Same id set, different construction history ⟹ identical owners.
        let direct = Cluster::from_stores(
            vec![
                (0, MemStore::new()),
                (1, MemStore::new()),
                (2, MemStore::new()),
            ],
            TreeConfig::test_config(),
        );
        let grown = Cluster::from_stores(
            vec![(0, MemStore::new()), (1, MemStore::new())],
            TreeConfig::test_config(),
        );
        let added = grown.add_servelet(MemStore::new()).unwrap();
        assert_eq!(added, 2);
        for i in 0..200 {
            let key = format!("key-{i}");
            assert_eq!(direct.owner_id(&key), grown.owner_id(&key));
        }
    }

    #[test]
    fn topology_record_reopens_to_identical_routing() {
        let c = cluster(3);
        let removed_mid = c.add_servelet(MemStore::new()).unwrap();
        c.remove_servelet(removed_mid).unwrap();
        c.add_servelet(MemStore::new()).unwrap();
        let record = c.topology().encode();

        let parsed = ClusterTopology::parse(&record).unwrap();
        assert_eq!(parsed, c.topology());
        let reopened =
            Cluster::from_topology(&parsed, TreeConfig::test_config(), |_| Ok(MemStore::new()))
                .unwrap();
        for i in 0..200 {
            let key = format!("key-{i}");
            assert_eq!(c.owner_id(&key), reopened.owner_id(&key));
        }
        // Removed ids are never reused.
        let next = reopened.add_servelet(MemStore::new()).unwrap();
        assert!(next > removed_mid);
        assert_eq!(next, parsed.next_id);
    }

    #[test]
    fn topology_parse_rejects_garbage() {
        assert!(ClusterTopology::parse("").is_err());
        assert!(ClusterTopology::parse("not-a-topology").is_err());
        assert!(
            ClusterTopology::parse(TOPOLOGY_MAGIC).is_err(),
            "no servelets"
        );
        assert!(
            ClusterTopology::parse(&format!("{TOPOLOGY_MAGIC}\nnext-id\t1\nservelet\t5\n"))
                .is_err(),
            "next-id must exceed every live id"
        );
        assert!(
            ClusterTopology::parse(&format!(
                "{TOPOLOGY_MAGIC}\nnext-id\t3\nservelet\t1\nservelet\t1\n"
            ))
            .is_err(),
            "duplicate servelet ids must be a structured error, not a panic"
        );
        // Role-column validation.
        for bad in [
            "servelet\t0\t-\tprimary:0\nservelet\t1\t-\tprimary:0", // duplicate anchor
            "servelet\t0\t-\treplica:7",                            // no primaries at all
            "servelet\t0\nservelet\t1\t-\treplica:7",               // unknown primary
            "servelet\t0\t-\tking",                                 // unknown role
            "servelet\t0\t-\tprimary:x",                            // bad anchor
            "servelet\t0\t-\tprimary:0\textra",                     // too many columns
        ] {
            let text = format!("{TOPOLOGY_MAGIC}\nnext-id\t9\n{bad}\n");
            assert!(ClusterTopology::parse(&text).is_err(), "must reject: {bad}");
        }
    }

    /// Compat pin: every historical TOPOLOGY column layout — one-column
    /// (pre-network), two-column (pre-replication), and the role-bearing
    /// three-column layout — parses, normalizes, and round-trips. A
    /// replica-free record re-encodes byte-identically to the legacy
    /// layout, so old builds keep parsing what new builds write.
    #[test]
    fn topology_roundtrips_across_all_historical_layouts() {
        // PR-5 era: local servelets only, `servelet\t<id>`.
        let v1 = format!("{TOPOLOGY_MAGIC}\nnext-id\t4\nservelet\t0\nservelet\t2\n");
        let t1 = ClusterTopology::parse(&v1).unwrap();
        assert_eq!(t1.servelet_ids, vec![0, 2]);
        assert_eq!(t1.addrs, vec![None, None]);
        assert_eq!(
            t1.roles,
            vec![
                TopoRole::Primary { anchor: 0 },
                TopoRole::Primary { anchor: 2 }
            ]
        );
        assert_eq!(t1.encode(), v1, "legacy local layout is preserved");

        // PR-6 era: remote servelets carry an address column.
        let v2 =
            format!("{TOPOLOGY_MAGIC}\nnext-id\t2\nservelet\t0\t127.0.0.1:4400\nservelet\t1\n");
        let t2 = ClusterTopology::parse(&v2).unwrap();
        assert_eq!(t2.addr_of(0), Some("127.0.0.1:4400"));
        assert_eq!(t2.addr_of(1), None);
        assert_eq!(t2.role_of(1), Some(&TopoRole::Primary { anchor: 1 }));
        assert_eq!(t2.encode(), v2, "legacy remote layout is preserved");

        // This PR: the role column, with `-` for "no address". Bare
        // `primary` (no anchor) also parses, anchoring at the id.
        let v3 = format!(
            "{TOPOLOGY_MAGIC}\nnext-id\t5\nservelet\t3\t-\tprimary:0\n\
             servelet\t1\t127.0.0.1:4401\tprimary\nservelet\t4\t-\treplica:3\n"
        );
        let t3 = ClusterTopology::parse(&v3).unwrap();
        assert_eq!(t3.role_of(3), Some(&TopoRole::Primary { anchor: 0 }));
        assert_eq!(t3.role_of(1), Some(&TopoRole::Primary { anchor: 1 }));
        assert_eq!(t3.role_of(4), Some(&TopoRole::Replica { primary: 3 }));
        assert_eq!(t3.primary_ids(), vec![3, 1]);
        let reparsed = ClusterTopology::parse(&t3.encode()).unwrap();
        assert_eq!(reparsed, t3, "role layout round-trips");
        // The bare-`primary` shorthand normalizes to the legacy layout on
        // re-encode (it is self-anchored).
        assert!(t3.encode().contains("servelet\t1\t127.0.0.1:4401\n"));

        // Every layout reopens to a routable cluster whose ring matches
        // the anchors, not the ids.
        let c1 = Cluster::from_topology(&t1, TreeConfig::test_config(), |_| Ok(MemStore::new()))
            .unwrap();
        assert_eq!(c1.ids(), vec![0, 2]);
        let c3 = Cluster::from_topology(&t3, TreeConfig::test_config(), |_| Ok(MemStore::new()))
            .unwrap();
        assert_eq!(c3.replica_ids(), vec![(4, 3)]);
        // Servelet 3 anchors at 0: keys route exactly as if a servelet
        // with id 0 still held the slot.
        let anchored = Cluster::from_stores(
            vec![(0, MemStore::new()), (1, MemStore::new())],
            TreeConfig::test_config(),
        );
        for i in 0..100 {
            let key = format!("key-{i}");
            let expect = if anchored.owner_id(&key) == 0 { 3 } else { 1 };
            assert_eq!(c3.owner_id(&key), expect, "{key} anchored wrong");
        }
    }

    #[test]
    fn add_servelet_moves_only_keys_it_now_owns() {
        let c = cluster(3);
        for i in 0..120 {
            c.put_string(&format!("key-{i}"), format!("v{i}"), PutOptions::default())
                .unwrap();
        }
        let before: Vec<(String, u64)> = (0..120)
            .map(|i| {
                let k = format!("key-{i}");
                let owner = c.owner_id(&k);
                (k, owner)
            })
            .collect();
        let new_id = c.add_servelet(MemStore::new()).unwrap();
        let mut moved = 0;
        for (key, old_owner) in before {
            let now = c.owner_id(&key);
            if now != old_owner {
                assert_eq!(
                    now, new_id,
                    "with consistent hashing, keys only move onto the new servelet"
                );
                moved += 1;
            }
            // Every key still readable, wherever it lives.
            assert!(c.get(&key, "master").is_ok(), "{key} unreadable after add");
        }
        assert!(moved > 0, "a 4th servelet should claim some of 120 keys");
        assert!(moved < 120, "it must not claim all of them");
        assert_eq!(
            c.list_keys().unwrap().len(),
            120,
            "no duplicates, no losses"
        );
    }

    #[test]
    fn remove_servelet_rehomes_its_keys() {
        let c = cluster(3);
        for i in 0..90 {
            c.put_string(&format!("key-{i}"), format!("v{i}"), PutOptions::default())
                .unwrap();
        }
        let victim_id = c.ids()[1];
        let victim_keys: Vec<String> = (0..90)
            .map(|i| format!("key-{i}"))
            .filter(|k| c.owner_id(k) == victim_id)
            .collect();
        assert!(!victim_keys.is_empty());
        let unaffected: Vec<(String, u64)> = (0..90)
            .map(|i| format!("key-{i}"))
            .filter(|k| c.owner_id(k) != victim_id)
            .map(|k| {
                let owner = c.owner_id(&k);
                (k, owner)
            })
            .collect();

        c.remove_servelet(victim_id).unwrap();
        assert_eq!(c.len(), 2);
        assert!(!c.ids().contains(&victim_id));
        for (key, owner) in unaffected {
            assert_eq!(
                c.owner_id(&key),
                owner,
                "{key} moved although its owner stayed"
            );
        }
        for key in &victim_keys {
            let got = c.get(key, "master").unwrap();
            assert!(got.value.as_str().is_some());
        }
        assert_eq!(c.list_keys().unwrap().len(), 90);
        // Removing the last servelet is refused.
        let last_err = {
            let ids = c.ids();
            c.remove_servelet(ids[0]).unwrap();
            c.remove_servelet(c.ids()[0]).unwrap_err()
        };
        assert!(matches!(last_err, DbError::InvalidInput(_)));
    }

    #[test]
    fn cluster_write_batch_routes_and_chains() {
        let c = cluster(3);
        let mut wb = c.write_batch();
        for i in 0..24 {
            wb.put(
                format!("batch-key-{i}"),
                Value::string(format!("v{i}")),
                &PutOptions::default(),
            );
        }
        // Same-key ops chain within the owning servelet's batch.
        wb.put("batch-key-0", Value::string("v0b"), &PutOptions::default());
        let outcomes = wb.commit().unwrap();
        assert_eq!(outcomes.len(), 25);
        assert_eq!(
            c.get("batch-key-0", "master").unwrap().value.as_str(),
            Some("v0b")
        );
        let hist = c
            .with_key("batch-key-0", |db| {
                db.history("batch-key-0", &VersionSpec::branch("master"))
            })
            .unwrap()
            .unwrap();
        assert_eq!(hist.len(), 2, "in-batch chaining on the owning servelet");

        // Scatter-gather heads matches the committed uids, in input order.
        let pairs: Vec<(String, String)> = (0..24)
            .map(|i| (format!("batch-key-{i}"), "master".to_string()))
            .collect();
        let refs: Vec<(&str, &str)> = pairs
            .iter()
            .map(|(k, b)| (k.as_str(), b.as_str()))
            .collect();
        let heads = c.heads(&refs).unwrap();
        for (i, (key, _)) in pairs.iter().enumerate() {
            assert_eq!(
                heads[i],
                c.with_key(key, {
                    let key = key.clone();
                    move |db| db.head(&key, "master")
                })
                .unwrap()
                .unwrap()
            );
        }

        // A bad op fails its whole servelet group atomically.
        let mut wb = c.write_batch();
        wb.put(
            "batch-key-1",
            Value::string("never"),
            &PutOptions::default(),
        );
        wb.delete_branch("no-such-key", "master");
        assert!(wb.commit().is_err());

        // Stats see every servelet.
        let stats = c.stats().unwrap();
        assert_eq!(stats.servelets.len(), 3);
        assert_eq!(stats.total_keys(), 24);
    }

    #[test]
    fn routed_map_range_pages() {
        let c = cluster(3);
        let pairs: Vec<(Bytes, Bytes)> = (0..500)
            .map(|i| {
                (
                    Bytes::from(format!("k{i:04}")),
                    Bytes::from(format!("v{i}")),
                )
            })
            .collect();
        c.with_key("table", move |db| {
            let map = db.new_map(pairs)?;
            db.put("table", map, &PutOptions::default())
        })
        .unwrap()
        .unwrap();

        let page = c
            .map_range(
                "table",
                "master",
                Some(Bytes::from_static(b"k0100")),
                Some(Bytes::from_static(b"k0200")),
                40,
            )
            .unwrap();
        assert_eq!(page.entries.len(), 40);
        assert!(page.truncated);
        assert_eq!(&page.entries[0].0[..], b"k0100");

        let rest = c
            .map_range(
                "table",
                "master",
                Some(Bytes::from_static(b"k0100")),
                Some(Bytes::from_static(b"k0200")),
                1000,
            )
            .unwrap();
        assert_eq!(rest.entries.len(), 100);
        assert!(!rest.truncated);
        assert_eq!(rest.version, page.version, "same head, same snapshot");
    }
}
