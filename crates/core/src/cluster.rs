//! Multi-servelet cluster simulation.
//!
//! The ForkBase of the paper is "a distributed storage system": a master
//! dispatches requests to *servelets*, each owning a partition of the key
//! space. This module reproduces that architecture in-process so the
//! routing and partitioning code paths are real, without requiring a
//! cluster: every servelet is a worker thread owning a private
//! [`ForkBase`]`<`[`MemStore`]`>`, requests travel over crossbeam channels
//! (the "network"), and keys are placed by consistent hashing.
//!
//! The simulation preserves the behaviours that matter to the paper's
//! claims: per-servelet deduplication, branch isolation, and the fact that
//! all versions of a key live on the same servelet (so diff/merge never
//! cross nodes — the same placement rule the real system uses).

use crossbeam::channel::{bounded, unbounded, Sender};
use forkbase_crypto::sha256;
use forkbase_postree::TreeConfig;
use forkbase_store::MemStore;

use crate::db::{CommitResult, ForkBase, GetResult, PutOptions};
use crate::error::DbResult;
use forkbase_types::Value;

/// A job shipped to a servelet thread.
type Job = Box<dyn FnOnce(&ForkBase<MemStore>) + Send>;

struct Servelet {
    tx: Sender<Job>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// An in-process ForkBase cluster.
pub struct Cluster {
    /// `(point, servelet index)` sorted by point — the consistent-hash ring.
    ring: Vec<(u64, usize)>,
    servelets: Vec<Servelet>,
}

/// Virtual nodes per servelet on the hash ring; more points = smoother
/// key balance.
const VNODES: usize = 32;

impl Cluster {
    /// Spin up `n` servelets (n ≥ 1) with the given tree configuration.
    pub fn new(n: usize, cfg: TreeConfig) -> Self {
        assert!(n >= 1, "a cluster needs at least one servelet");
        let mut servelets = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Job>();
            let handle = std::thread::spawn(move || {
                let db = ForkBase::with_config(MemStore::new(), cfg);
                while let Ok(job) = rx.recv() {
                    job(&db);
                }
            });
            servelets.push(Servelet {
                tx,
                handle: Some(handle),
            });
        }
        let mut ring = Vec::with_capacity(n * VNODES);
        for (idx, _) in servelets.iter().enumerate() {
            for v in 0..VNODES {
                let point = ring_point(&format!("servelet-{idx}-vnode-{v}"));
                ring.push((point, idx));
            }
        }
        ring.sort_unstable();
        Cluster { ring, servelets }
    }

    /// Number of servelets.
    pub fn len(&self) -> usize {
        self.servelets.len()
    }

    /// Whether the cluster is empty (never true — kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.servelets.is_empty()
    }

    /// The servelet that owns `key` (consistent hashing).
    pub fn route(&self, key: &str) -> usize {
        let point = ring_point(key);
        let idx = self.ring.partition_point(|(p, _)| *p < point);
        let (_, servelet) = self.ring[idx % self.ring.len()];
        servelet
    }

    /// Run `f` against the database of servelet `node` and wait for the
    /// result (simulated RPC).
    pub fn on_node<R: Send + 'static>(
        &self,
        node: usize,
        f: impl FnOnce(&ForkBase<MemStore>) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = bounded(1);
        self.servelets[node]
            .tx
            .send(Box::new(move |db| {
                let _ = tx.send(f(db));
            }))
            .expect("servelet thread alive");
        rx.recv().expect("servelet responds")
    }

    /// Run `f` against the servelet owning `key`.
    pub fn with_key<R: Send + 'static>(
        &self,
        key: &str,
        f: impl FnOnce(&ForkBase<MemStore>) -> R + Send + 'static,
    ) -> R {
        self.on_node(self.route(key), f)
    }

    /// `Put` routed to the owning servelet.
    pub fn put(&self, key: &str, value: Value, opts: PutOptions) -> DbResult<CommitResult> {
        let key = key.to_string();
        self.with_key(&key.clone(), move |db| db.put(&key, value, &opts))
    }

    /// `Put` a string value (cross-node safe: the value is built on the
    /// owning servelet).
    pub fn put_string(
        &self,
        key: &str,
        content: String,
        opts: PutOptions,
    ) -> DbResult<CommitResult> {
        self.put(key, Value::Str(content), opts)
    }

    /// `Put` a blob built from raw content on the owning servelet. The
    /// content `Vec` becomes the blob's backing buffer without copying.
    pub fn put_blob(
        &self,
        key: &str,
        content: Vec<u8>,
        opts: PutOptions,
    ) -> DbResult<CommitResult> {
        let key_owned = key.to_string();
        self.with_key(key, move |db| {
            let value = db.new_blob_bytes(bytes::Bytes::from(content))?;
            db.put(&key_owned, value, &opts)
        })
    }

    /// `Get` routed to the owning servelet.
    pub fn get(&self, key: &str, branch: &str) -> DbResult<GetResult> {
        let key_owned = key.to_string();
        let branch = branch.to_string();
        self.with_key(key, move |db| db.get(&key_owned, &branch))
    }

    /// All keys across every servelet, sorted.
    pub fn list_keys(&self) -> Vec<String> {
        let mut keys = Vec::new();
        for node in 0..self.len() {
            keys.extend(self.on_node(node, |db| db.list_keys()));
        }
        keys.sort();
        keys
    }

    /// Aggregate chunk statistics across servelets.
    pub fn total_stored_bytes(&self) -> u64 {
        (0..self.len())
            .map(|n| self.on_node(n, |db| forkbase_store::ChunkStore::stored_bytes(db.store())))
            .sum()
    }

    /// Distribution of keys per servelet (for balance checks).
    pub fn key_distribution(&self) -> Vec<usize> {
        (0..self.len())
            .map(|n| self.on_node(n, |db| db.list_keys().len()))
            .collect()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for s in &mut self.servelets {
            // Closing the channel stops the worker loop.
            let (dead_tx, _) = unbounded::<Job>();
            let tx = std::mem::replace(&mut s.tx, dead_tx);
            drop(tx);
            if let Some(h) = s.handle.take() {
                let _ = h.join();
            }
        }
    }
}

fn ring_point(s: &str) -> u64 {
    let h = sha256(s.as_bytes());
    u64::from_le_bytes(h.as_bytes()[..8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::VersionSpec;

    fn cluster(n: usize) -> Cluster {
        Cluster::new(n, TreeConfig::test_config())
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let c = cluster(4);
        for i in 0..100 {
            let key = format!("key-{i}");
            let a = c.route(&key);
            let b = c.route(&key);
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn keys_spread_across_servelets() {
        let c = cluster(4);
        for i in 0..200 {
            c.put_string(
                &format!("key-{i}"),
                format!("value {i}"),
                PutOptions::default(),
            )
            .unwrap();
        }
        let dist = c.key_distribution();
        assert_eq!(dist.iter().sum::<usize>(), 200);
        for (node, count) in dist.iter().enumerate() {
            assert!(
                *count > 10,
                "servelet {node} owns only {count} of 200 keys — ring imbalance"
            );
        }
    }

    #[test]
    fn put_get_roundtrip_through_cluster() {
        let c = cluster(3);
        c.put_string("doc", "distributed hello".into(), PutOptions::default())
            .unwrap();
        let got = c.get("doc", "master").unwrap();
        assert_eq!(got.value.as_str(), Some("distributed hello"));
    }

    #[test]
    fn versions_of_a_key_stay_on_one_servelet() {
        let c = cluster(4);
        for rev in 0..5 {
            c.put_string("evolving", format!("rev {rev}"), PutOptions::default())
                .unwrap();
        }
        // History must be fully resolvable on the owning node.
        let history = c.with_key("evolving", |db| {
            db.history("evolving", &VersionSpec::branch("master"))
        });
        assert_eq!(history.unwrap().len(), 5);
        // And absent everywhere else.
        let owner = c.route("evolving");
        for node in 0..c.len() {
            let present = c.on_node(node, |db| db.list_keys().contains(&"evolving".to_string()));
            assert_eq!(present, node == owner);
        }
    }

    #[test]
    fn branch_and_merge_on_owning_servelet() {
        let c = cluster(2);
        c.with_key("data", |db| {
            let pairs = (0..200)
                .map(|i| {
                    (
                        bytes::Bytes::from(format!("k{i:04}")),
                        bytes::Bytes::from(format!("v{i}")),
                    )
                })
                .collect();
            let map = db.new_map(pairs)?;
            db.put("data", map, &PutOptions::default())?;
            db.branch("data", "master", "dev")?;
            let head = db.get("data", "dev")?;
            let updated = db.map_apply(
                &head.value,
                vec![forkbase_postree::MapEdit::put(
                    bytes::Bytes::from_static(b"k0001"),
                    bytes::Bytes::from_static(b"changed"),
                )],
            )?;
            db.put("data", updated, &PutOptions::on_branch("dev"))?;
            db.merge(
                "data",
                "master",
                "dev",
                forkbase_postree::MergePolicy::Fail,
                &PutOptions::default(),
            )
        })
        .unwrap();
        let merged = c.get("data", "master").unwrap();
        let v = c.with_key("data", move |db| db.map_get(&merged.value, b"k0001"));
        assert_eq!(v.unwrap(), Some(bytes::Bytes::from_static(b"changed")));
    }

    #[test]
    fn concurrent_clients() {
        let c = std::sync::Arc::new(cluster(4));
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    c.put_string(
                        &format!("client{t}-key{i}"),
                        format!("payload {t}/{i}"),
                        PutOptions::default(),
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.list_keys().len(), 8 * 25);
    }

    #[test]
    fn stored_bytes_aggregate() {
        let c = cluster(2);
        assert_eq!(c.total_stored_bytes(), 0);
        // Varied content: constant bytes would self-dedup to almost nothing.
        let content: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        c.put_blob("blob", content, PutOptions::default()).unwrap();
        assert!(c.total_stored_bytes() >= 10_000);
    }
}
