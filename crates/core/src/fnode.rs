//! FNode: the version node of the derivation graph (paper §II-D).
//!
//! "Each node in the graph is a structure called FNode, and links between
//! FNodes represent their derivation relationships. Each FNode is
//! associated with a uid representing its version […] The uid uniquely
//! identifies both the object value and its derivation history."
//!
//! The uid is the SHA-256 of the FNode's canonical encoding. Because the
//! encoding embeds the value (whose collections are Merkle roots) *and*
//! the parent uids (`bases`, a hash chain), two FNodes are equal iff they
//! hold the same value **and** the same history — exactly the paper's
//! equivalence. Rendered to users in RFC 4648 Base32 (§III-C).

use bytes::Bytes;
use forkbase_crypto::{sha256, Hash};
use forkbase_store::ChunkStore;
use forkbase_types::Value;

use crate::error::{DbError, DbResult};

/// A version identifier: SHA-256 of the FNode encoding, shown as Base32.
pub type Uid = Hash;

const FNODE_MAGIC: u8 = b'F';

/// One node of the version derivation DAG.
#[derive(Clone, Debug, PartialEq)]
pub struct FNode {
    /// The object key this version belongs to.
    pub key: String,
    /// The value at this version.
    pub value: Value,
    /// Parent version uids: empty for an initial Put, one for an ordinary
    /// Put, two for a merge (ours, theirs).
    pub bases: Vec<Uid>,
    /// Who committed this version.
    pub author: String,
    /// Commit message.
    pub message: String,
    /// Logical commit counter (monotone per database instance); part of
    /// the hashed content so replayed commits at different times differ
    /// only if their position in history differs.
    pub logical_time: u64,
}

/// Canonical FNode encoding built from borrowed parts. This is THE
/// definition of the version content-addressing: [`FNode::encode`] and the
/// write-batch staging path ([`encode_parts_with_uid`]) both call it, so a
/// batch-committed version and a direct-put version of the same content
/// can never encode (or hash) differently.
pub(crate) fn encode_parts(
    key: &str,
    value: &Value,
    bases: &[Uid],
    author: &str,
    message: &str,
    logical_time: u64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.push(FNODE_MAGIC);
    put_bytes(&mut out, key.as_bytes());
    let value = value.encode();
    put_bytes(&mut out, &value);
    out.extend_from_slice(&(bases.len() as u32).to_le_bytes());
    for b in bases {
        out.extend_from_slice(b.as_bytes());
    }
    put_bytes(&mut out, author.as_bytes());
    put_bytes(&mut out, message.as_bytes());
    out.extend_from_slice(&logical_time.to_le_bytes());
    out
}

/// [`encode_parts`] plus the uid, without materializing an [`FNode`] (and
/// therefore without cloning key/author/message into owned `String`s) —
/// the allocation-free staging path [`crate::api::WriteBatch`] commits
/// through.
pub(crate) fn encode_parts_with_uid(
    key: &str,
    value: &Value,
    bases: &[Uid],
    author: &str,
    message: &str,
    logical_time: u64,
) -> (Uid, Vec<u8>) {
    let bytes = encode_parts(key, value, bases, author, message, logical_time);
    (sha256(&bytes), bytes)
}

impl FNode {
    /// Canonical encoding; its SHA-256 is the uid.
    pub fn encode(&self) -> Vec<u8> {
        encode_parts(
            &self.key,
            &self.value,
            &self.bases,
            &self.author,
            &self.message,
            self.logical_time,
        )
    }

    /// Decode a canonical encoding.
    pub fn decode(bytes: &[u8]) -> DbResult<FNode> {
        let err = |m: &str| DbError::InvalidInput(format!("FNode decode: {m}"));
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> DbResult<&[u8]> {
            let s = bytes.get(*pos..*pos + n).ok_or_else(|| err("truncated"))?;
            *pos += n;
            Ok(s)
        };
        let take_bytes = |pos: &mut usize| -> DbResult<&[u8]> {
            let len = u32::from_le_bytes(take(pos, 4)?.try_into().expect("4 bytes")) as usize;
            take(pos, len)
        };

        if *take(&mut pos, 1)?.first().expect("one byte") != FNODE_MAGIC {
            return Err(err("bad magic"));
        }
        let key =
            String::from_utf8(take_bytes(&mut pos)?.to_vec()).map_err(|_| err("key not UTF-8"))?;
        let value = Value::decode(take_bytes(&mut pos)?)?;
        let n_bases = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        if n_bases > 16 {
            return Err(err("implausible base count"));
        }
        let mut bases = Vec::with_capacity(n_bases);
        for _ in 0..n_bases {
            bases.push(Hash::from_slice(take(&mut pos, 32)?).expect("32 bytes"));
        }
        let author = String::from_utf8(take_bytes(&mut pos)?.to_vec())
            .map_err(|_| err("author not UTF-8"))?;
        let message = String::from_utf8(take_bytes(&mut pos)?.to_vec())
            .map_err(|_| err("message not UTF-8"))?;
        let logical_time = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
        if pos != bytes.len() {
            return Err(err("trailing bytes"));
        }
        Ok(FNode {
            key,
            value,
            bases,
            author,
            message,
            logical_time,
        })
    }

    /// The version uid: SHA-256 of the canonical encoding.
    pub fn uid(&self) -> Uid {
        self.encode_with_uid().0
    }

    /// Canonical encoding plus its uid in one pass — the single place the
    /// content-addressing of versions is defined. Both the direct store
    /// path ([`Self::store`]) and the write-batch staging path use this,
    /// so their uids can never drift apart.
    pub fn encode_with_uid(&self) -> (Uid, Vec<u8>) {
        let bytes = self.encode();
        (sha256(&bytes), bytes)
    }

    /// Persist into the chunk store; returns the uid.
    pub fn store<S: ChunkStore>(&self, store: &S) -> DbResult<Uid> {
        let (uid, bytes) = self.encode_with_uid();
        store.put_with_hash(uid, Bytes::from(bytes))?;
        Ok(uid)
    }

    /// Fetch by uid, verifying the content hashes back to the uid — the
    /// first line of tamper evidence (§II-D): a malicious store cannot
    /// substitute a different FNode without changing the uid.
    pub fn load<S: ChunkStore>(store: &S, uid: &Uid) -> DbResult<FNode> {
        let bytes = store.get(uid)?.ok_or(DbError::NoSuchVersion(*uid))?;
        let actual = sha256(&bytes);
        if actual != *uid {
            return Err(DbError::TamperDetected(format!(
                "FNode at {uid} hashes to {actual}"
            )));
        }
        FNode::decode(&bytes)
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_store::{FaultMode, FaultyStore, MemStore};

    fn sample() -> FNode {
        FNode {
            key: "dataset-1".into(),
            value: Value::string("v1 content"),
            bases: vec![sha256(b"parent")],
            author: "admin-a".into(),
            message: "initial load".into(),
            logical_time: 42,
        }
    }

    #[test]
    fn borrowed_encoding_is_byte_identical() {
        let f = sample();
        let (uid, bytes) = encode_parts_with_uid(
            &f.key,
            &f.value,
            &f.bases,
            &f.author,
            &f.message,
            f.logical_time,
        );
        assert_eq!(bytes, f.encode());
        assert_eq!(uid, f.uid());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = sample();
        let decoded = FNode::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
        assert_eq!(decoded.uid(), f.uid());
    }

    #[test]
    fn uid_covers_value_and_history() {
        let base = sample();
        // Different value ⟹ different uid.
        let mut v = base.clone();
        v.value = Value::string("other");
        assert_ne!(v.uid(), base.uid());
        // Different history ⟹ different uid even with the same value.
        let mut h = base.clone();
        h.bases = vec![sha256(b"other parent")];
        assert_ne!(h.uid(), base.uid());
        // Same everything ⟹ same uid (FNode equivalence, §II-D).
        assert_eq!(base.clone().uid(), base.uid());
    }

    #[test]
    fn merge_node_has_two_bases() {
        let mut f = sample();
        f.bases = vec![sha256(b"ours"), sha256(b"theirs")];
        let decoded = FNode::decode(&f.encode()).unwrap();
        assert_eq!(decoded.bases.len(), 2);
    }

    #[test]
    fn empty_fields_roundtrip() {
        let f = FNode {
            key: String::new(),
            value: Value::Bool(false),
            bases: vec![],
            author: String::new(),
            message: String::new(),
            logical_time: 0,
        };
        assert_eq!(FNode::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn store_load_roundtrip() {
        let store = MemStore::new();
        let f = sample();
        let uid = f.store(&store).unwrap();
        assert_eq!(uid, f.uid());
        assert_eq!(FNode::load(&store, &uid).unwrap(), f);
    }

    #[test]
    fn load_missing_is_no_such_version() {
        let store = MemStore::new();
        assert!(matches!(
            FNode::load(&store, &sha256(b"nothing")),
            Err(DbError::NoSuchVersion(_))
        ));
    }

    #[test]
    fn tampered_fnode_is_detected() {
        let inner = MemStore::new();
        let f = sample();
        let uid = f.store(&inner).unwrap();
        let store = FaultyStore::new(inner);
        store.inject(uid, FaultMode::FlipBit { byte: 20 });
        assert!(matches!(
            FNode::load(&store, &uid),
            Err(DbError::TamperDetected(_))
        ));
    }

    #[test]
    fn substituted_fnode_is_detected() {
        // The adversary swaps in a perfectly well-formed but different
        // FNode; the uid check still catches it.
        let inner = MemStore::new();
        let honest = sample();
        let uid = honest.store(&inner).unwrap();
        let mut evil = sample();
        evil.value = Value::string("forged");
        let store = FaultyStore::new(inner);
        store.inject(uid, FaultMode::Substitute(Bytes::from(evil.encode())));
        assert!(matches!(
            FNode::load(&store, &uid),
            Err(DbError::TamperDetected(_))
        ));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(FNode::decode(&[]).is_err());
        assert!(FNode::decode(b"garbage").is_err());
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(FNode::decode(&bytes).is_err(), "trailing bytes");
        let mut bytes = sample().encode();
        bytes.truncate(bytes.len() - 3);
        assert!(FNode::decode(&bytes).is_err(), "truncated");
    }

    #[test]
    fn uid_renders_as_base32() {
        let uid = sample().uid();
        let rendered = uid.to_base32();
        assert!(rendered.len() >= 52);
        assert_eq!(Hash::from_base32(&rendered), Some(uid));
    }
}
