//! Streaming read paths over the POS-Tree cursors.
//!
//! Every type here holds O(chunk) state: one decoded leaf node (maps,
//! lists) or one data chunk (blobs), plus the O(log N) root→leaf index
//! path inside the underlying cursor. Scanning a million-entry map or
//! copying a multi-gigabyte blob through these costs the same working
//! memory as reading a single chunk — the materializing verbs
//! (`map_entries`, `list_elements`, `blob_read`) are thin collectors over
//! these same cursors.

use bytes::Bytes;
use forkbase_postree::{BlobCursor, BlobRef, TreeCursor, TreeRef};
use forkbase_store::ChunkStore;

use crate::error::{DbError, DbResult};

/// Streaming iterator over the entries of a map/set value, in key order,
/// optionally bounded. Yields `DbResult<(key, value)>` because node
/// fetches can fail (missing or tampered chunks).
///
/// Obtained from [`super::Snapshot::map_iter`] /
/// [`super::Snapshot::map_range`].
pub struct MapRange<'s, S> {
    cursor: TreeCursor<'s, S>,
    /// End bound and whether it is inclusive; `None` = run to tree end.
    end: Option<(Bytes, bool)>,
    done: bool,
}

impl<'s, S: ChunkStore> MapRange<'s, S> {
    /// Open with optional inclusive-start / exclusive-end byte bounds
    /// (the classic `Select` semantics: `start ≤ key < end`).
    pub(crate) fn open(
        store: &'s S,
        tree: TreeRef,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> DbResult<Self> {
        Self::open_bounds(
            store,
            tree,
            start.map(|s| (s, false)),
            end.map(|e| (e, false)),
        )
    }

    /// Open with full bound control: `start` is `(key, exclusive)`, `end`
    /// is `(key, inclusive)`.
    pub(crate) fn open_bounds(
        store: &'s S,
        tree: TreeRef,
        start: Option<(&[u8], bool)>,
        end: Option<(&[u8], bool)>,
    ) -> DbResult<Self> {
        let mut cursor = match start {
            Some((key, _)) => TreeCursor::seek(store, tree, key)?,
            None => TreeCursor::new(store, tree)?,
        };
        if let Some((key, true)) = start {
            // Exclusive start: skip the exact match (keys are unique).
            if let Some(e) = cursor.peek()? {
                if e.key.as_ref() == key {
                    cursor.next_entry()?;
                }
            }
        }
        Ok(MapRange {
            cursor,
            end: end.map(|(key, inclusive)| (Bytes::copy_from_slice(key), inclusive)),
            done: false,
        })
    }
}

impl<S: ChunkStore> Iterator for MapRange<'_, S> {
    type Item = DbResult<(Bytes, Bytes)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.cursor.next_entry() {
            Err(e) => {
                self.done = true;
                Some(Err(DbError::Node(e)))
            }
            Ok(None) => {
                self.done = true;
                None
            }
            Ok(Some(entry)) => {
                if let Some((end, inclusive)) = &self.end {
                    let past = if *inclusive {
                        entry.key.as_ref() > end.as_ref()
                    } else {
                        entry.key.as_ref() >= end.as_ref()
                    };
                    if past {
                        self.done = true;
                        return None;
                    }
                }
                Some(Ok((entry.key, entry.value)))
            }
        }
    }
}

/// Streaming iterator over the elements of a list value, in order.
///
/// Obtained from [`super::Snapshot::list_iter`].
pub struct ListStream<'s, S> {
    cursor: TreeCursor<'s, S>,
    done: bool,
}

impl<'s, S: ChunkStore> ListStream<'s, S> {
    pub(crate) fn open(store: &'s S, tree: TreeRef) -> DbResult<Self> {
        Ok(ListStream {
            cursor: TreeCursor::new(store, tree)?,
            done: false,
        })
    }
}

impl<S: ChunkStore> Iterator for ListStream<'_, S> {
    type Item = DbResult<Bytes>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.cursor.next_entry() {
            Err(e) => {
                self.done = true;
                Some(Err(DbError::Node(e)))
            }
            Ok(None) => {
                self.done = true;
                None
            }
            Ok(Some(entry)) => Some(Ok(entry.value)),
        }
    }
}

/// [`std::io::Read`] over a blob value: pulls one verified data chunk at
/// a time from a [`BlobCursor`], so the blob is never materialized.
///
/// Obtained from [`super::Snapshot::blob_reader`]. Chunk hash mismatches
/// (tampering) surface as [`std::io::ErrorKind::InvalidData`].
pub struct BlobReader<'s, S> {
    cursor: BlobCursor<'s, S>,
    current: Bytes,
    pos: usize,
    /// Length the `BlobRef` promised; checked when the chunk stream ends,
    /// so a reference whose `len` disagrees with its chunk tree fails
    /// loudly instead of silently truncating (the same check
    /// `PosBlob::read_all` performs).
    expected_len: u64,
    streamed: u64,
}

impl<'s, S: ChunkStore> BlobReader<'s, S> {
    pub(crate) fn open(store: &'s S, blob: &BlobRef) -> DbResult<Self> {
        Ok(BlobReader {
            cursor: BlobCursor::new(store, blob).map_err(DbError::Node)?,
            current: Bytes::new(),
            pos: 0,
            expected_len: blob.len,
            streamed: 0,
        })
    }
}

impl<S: ChunkStore> std::io::Read for BlobReader<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        loop {
            if self.pos < self.current.len() {
                let n = (self.current.len() - self.pos).min(buf.len());
                buf[..n].copy_from_slice(&self.current[self.pos..self.pos + n]);
                self.pos += n;
                return Ok(n);
            }
            match self.cursor.next_chunk() {
                Ok(Some(chunk)) => {
                    self.streamed += chunk.len() as u64;
                    self.current = chunk;
                    self.pos = 0;
                }
                Ok(None) => {
                    if self.streamed != self.expected_len {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!(
                                "blob length {} does not match content {}",
                                self.expected_len, self.streamed
                            ),
                        ));
                    }
                    return Ok(0);
                }
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        e.to_string(),
                    ))
                }
            }
        }
    }
}

/// Materialize a whole blob by streaming its chunks (shared by
/// `ForkBase::blob_read` and `Snapshot::blob_read`). Verifies the total
/// length against the reference, like `PosBlob::read_all` did.
pub(crate) fn read_blob_to_vec<S: ChunkStore>(store: &S, blob: &BlobRef) -> DbResult<Vec<u8>> {
    let mut cursor = BlobCursor::new(store, blob).map_err(DbError::Node)?;
    let mut out = Vec::with_capacity(blob.len as usize);
    while let Some(chunk) = cursor.next_chunk().map_err(DbError::Node)? {
        out.extend_from_slice(&chunk);
    }
    if out.len() as u64 != blob.len {
        return Err(DbError::Node(forkbase_postree::NodeError::Malformed(
            format!(
                "blob length {} does not match content {}",
                blob.len,
                out.len()
            ),
        )));
    }
    Ok(out)
}
