//! [`Snapshot`]: an immutable, pinned view of one version of a key.
//!
//! Resolving a [`VersionSpec`] costs a branch-table lookup plus one FNode
//! fetch; a `Snapshot` performs that work once and then serves any number
//! of reads against the *same* version — repeated reads skip the head
//! lookup and FNode resolve entirely, and concurrent commits can never
//! shift the data under an open snapshot (versions are immutable).
//! Snapshots are cheaply clonable (the resolved FNode is shared behind an
//! `Arc`), so request handlers can fan one out across worker threads.

use std::io::Write;
use std::sync::Arc;

use bytes::Bytes;
use forkbase_postree::{MerkleProof, PosBlob, PosMap};
use forkbase_store::ChunkStore;
use forkbase_types::Value;

use super::cursor_ext::{read_blob_to_vec, BlobReader, ListStream, MapRange};
use super::{expect_map, store_io};
use super::{ForkBase, GetResult, HistoryEntry, VersionSpec};
use crate::error::{DbError, DbResult};
use crate::fnode::{FNode, Uid};

impl<S: ChunkStore> ForkBase<S> {
    /// Open an immutable view of `key` at `spec`.
    ///
    /// The spec is resolved and the FNode loaded exactly once; every read
    /// on the returned [`Snapshot`] reuses them. Because versions are
    /// immutable, concurrent **commits** can never change what a snapshot
    /// reads — the branch head moving on does not disturb it.
    ///
    /// Garbage collection is the one exception, as for every value handle
    /// in this API ([`GetResult`] included): [`ForkBase::gc`] reclaims
    /// chunks unreachable from any branch head, so if the snapshot's
    /// version is cut loose (its branch deleted or rewound) and a GC pass
    /// runs, later reads through the snapshot fail loudly with a
    /// missing-chunk error — never silently wrong data. Hold off GC, or
    /// keep the version reachable (e.g. under a branch), while long-lived
    /// snapshots are in flight.
    ///
    /// ```
    /// use forkbase::{ForkBase, PutOptions, VersionSpec};
    /// use forkbase_store::MemStore;
    /// use forkbase_types::Value;
    ///
    /// let db = ForkBase::new(MemStore::new());
    /// db.put("greeting", Value::string("hello"), &PutOptions::default())
    ///     .unwrap();
    /// let snap = db.snapshot("greeting", &VersionSpec::default()).unwrap();
    /// // The snapshot is pinned: later commits don't move it.
    /// db.put("greeting", Value::string("changed"), &PutOptions::default())
    ///     .unwrap();
    /// assert_eq!(snap.value().as_str(), Some("hello"));
    /// ```
    pub fn snapshot(&self, key: &str, spec: &VersionSpec) -> DbResult<Snapshot<'_, S>> {
        let uid = self.resolve(key, spec)?;
        self.snapshot_version(&uid)
    }

    /// Open a snapshot of an explicit historical version uid.
    pub fn snapshot_version(&self, uid: &Uid) -> DbResult<Snapshot<'_, S>> {
        let fnode = FNode::load(&self.store, uid)?;
        Ok(Snapshot {
            db: self,
            uid: *uid,
            fnode: Arc::new(fnode),
        })
    }
}

/// An immutable view of one version of a key, pinned to its uid.
///
/// Created by [`ForkBase::snapshot`] (or [`ForkBase::snapshot_version`]).
/// Carries the resolved [`FNode`], so repeated reads skip the branch-head
/// lookup and version fetch; clones share it. All read verbs have
/// counterparts here — the materializing ones ([`Snapshot::map_entries`])
/// and the streaming ones ([`Snapshot::map_range`],
/// [`Snapshot::list_iter`], [`Snapshot::blob_reader`]) that scan in
/// O(chunk) memory.
pub struct Snapshot<'db, S> {
    db: &'db ForkBase<S>,
    uid: Uid,
    fnode: Arc<FNode>,
}

impl<S> Clone for Snapshot<'_, S> {
    fn clone(&self) -> Self {
        Snapshot {
            db: self.db,
            uid: self.uid,
            fnode: Arc::clone(&self.fnode),
        }
    }
}

impl<'db, S: ChunkStore> Snapshot<'db, S> {
    /// The version uid this snapshot is pinned to.
    pub fn uid(&self) -> Uid {
        self.uid
    }

    /// The key this version belongs to.
    pub fn key(&self) -> &str {
        &self.fnode.key
    }

    /// The value at this version.
    pub fn value(&self) -> &Value {
        &self.fnode.value
    }

    /// Commit metadata of this version.
    pub fn meta(&self) -> HistoryEntry {
        HistoryEntry {
            uid: self.uid,
            author: self.fnode.author.clone(),
            message: self.fnode.message.clone(),
            logical_time: self.fnode.logical_time,
            bases: self.fnode.bases.clone(),
            value_type: self.fnode.value.value_type(),
        }
    }

    /// Convert into a [`GetResult`] (moves the value out when this is the
    /// only handle; clones otherwise).
    pub fn into_get_result(self) -> GetResult {
        let uid = self.uid;
        match Arc::try_unwrap(self.fnode) {
            Ok(fnode) => GetResult {
                value: fnode.value,
                uid,
            },
            Err(shared) => GetResult {
                value: shared.value.clone(),
                uid,
            },
        }
    }

    /// Look up one entry of a map/set value (`O(log N)` node fetches).
    pub fn map_get(&self, entry_key: &[u8]) -> DbResult<Option<Bytes>> {
        let tree = expect_map(&self.fnode.value)?;
        Ok(PosMap::open(self.db.store(), self.db.config().node, tree).get(entry_key)?)
    }

    /// All entries of a map/set value (materializing; prefer
    /// [`Self::map_range`] for large values).
    pub fn map_entries(&self) -> DbResult<Vec<(Bytes, Bytes)>> {
        self.map_iter()?.collect()
    }

    /// Entries with `start ≤ key < end` (either bound optional),
    /// materialized. The streaming equivalent is [`Self::map_range`].
    pub fn map_select(
        &self,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> DbResult<Vec<(Bytes, Bytes)>> {
        let tree = expect_map(&self.fnode.value)?;
        MapRange::open(self.db.store(), tree, start, end)?.collect()
    }

    /// Stream every entry of a map/set value in key order, holding at most
    /// one decoded leaf node in memory.
    pub fn map_iter(&self) -> DbResult<MapRange<'db, S>> {
        let tree = expect_map(&self.fnode.value)?;
        MapRange::open(self.db.store(), tree, None, None)
    }

    /// Stream map/set entries within a key range, e.g.
    /// `snap.map_range(b"a".as_slice()..b"b".as_slice())`. Accepts any
    /// standard range over byte-string-like bounds; memory held is one
    /// decoded leaf node, independent of the value or range size.
    pub fn map_range<B, R>(&self, range: R) -> DbResult<MapRange<'db, S>>
    where
        B: AsRef<[u8]>,
        R: std::ops::RangeBounds<B>,
    {
        use std::ops::Bound;
        let tree = expect_map(&self.fnode.value)?;
        // (bound, exclusive) for the start; (bound, inclusive) for the end.
        let start = match range.start_bound() {
            Bound::Unbounded => None,
            Bound::Included(b) => Some((b.as_ref(), false)),
            Bound::Excluded(b) => Some((b.as_ref(), true)),
        };
        let end = match range.end_bound() {
            Bound::Unbounded => None,
            Bound::Excluded(b) => Some((b.as_ref(), false)),
            Bound::Included(b) => Some((b.as_ref(), true)),
        };
        MapRange::open_bounds(self.db.store(), tree, start, end)
    }

    /// Stream the elements of a list value in order, one leaf node at a
    /// time.
    pub fn list_iter(&self) -> DbResult<ListStream<'db, S>> {
        match &self.fnode.value {
            Value::List(t) => ListStream::open(self.db.store(), *t),
            other => Err(DbError::TypeMismatch {
                expected: "list",
                found: other.value_type().name(),
            }),
        }
    }

    /// Stream a blob value through [`std::io::Read`] without materializing
    /// it: the reader fetches, verifies, and hands out one data chunk at a
    /// time, so copying a 64 MiB blob through an 8 KiB buffer never holds
    /// more than one chunk (plus the O(log N) index path) in memory.
    pub fn blob_reader(&self) -> DbResult<BlobReader<'db, S>> {
        let r = self.fnode.value.blob_ref().ok_or(DbError::TypeMismatch {
            expected: "blob",
            found: self.fnode.value.value_type().name(),
        })?;
        BlobReader::open(self.db.store(), &r)
    }

    /// Read the whole blob value (materializing; prefer
    /// [`Self::blob_reader`] for large blobs).
    pub fn blob_read(&self) -> DbResult<Vec<u8>> {
        let r = self.fnode.value.blob_ref().ok_or(DbError::TypeMismatch {
            expected: "blob",
            found: self.fnode.value.value_type().name(),
        })?;
        read_blob_to_vec(self.db.store(), &r)
    }

    /// Diff this snapshot against another (of the same or another key).
    pub fn diff(&self, other: &Snapshot<'_, S>) -> DbResult<super::ValueDiff> {
        if self.uid == other.uid {
            return Ok(super::ValueDiff::Identical);
        }
        self.db.diff_values(&self.fnode.value, &other.fnode.value)
    }

    /// Produce a Merkle proof that `entry_key` maps to its value (or is
    /// absent) in this version's map value; checkable against
    /// [`Self::uid`] by [`ForkBase::verify_entry_proof`].
    pub fn prove_entry(&self, entry_key: &[u8]) -> DbResult<MerkleProof> {
        let tree = expect_map(&self.fnode.value)?;
        Ok(forkbase_postree::prove_key(
            self.db.store(),
            tree,
            entry_key,
        )?)
    }

    /// Verify this version's value trees (§II-D).
    pub fn verify(&self) -> DbResult<()> {
        self.db.verify_value(&self.fnode.value)
    }

    /// Write this version's content to `out`: blobs and strings raw,
    /// maps/sets/lists as line-oriented text. Streams through the cursors,
    /// so a multi-gigabyte blob export holds one chunk at a time. Returns
    /// bytes written.
    pub fn export(&self, out: &mut dyn Write) -> DbResult<u64> {
        let value = &self.fnode.value;
        let mut written = 0u64;
        match value {
            Value::Blob(r) => {
                let blob = PosBlob::new(self.db.store(), self.db.config());
                let mut cursor = blob.cursor(r)?;
                while let Some(chunk) = cursor.next_chunk().map_err(DbError::Node)? {
                    out.write_all(&chunk).map_err(store_io)?;
                    written += chunk.len() as u64;
                }
                // Same length check `PosBlob::read_all` enforces: a ref
                // whose `len` lies about its chunk tree must not export
                // successfully.
                if written != r.len {
                    return Err(DbError::Node(forkbase_postree::NodeError::Malformed(
                        format!("blob length {} does not match content {written}", r.len),
                    )));
                }
            }
            Value::Str(s) => {
                out.write_all(s.as_bytes()).map_err(store_io)?;
                written += s.len() as u64;
            }
            Value::Map(_) | Value::Set(_) => {
                for item in self.map_iter()? {
                    let (k, v) = item?;
                    out.write_all(&k).map_err(store_io)?;
                    out.write_all(b"\t").map_err(store_io)?;
                    out.write_all(&v).map_err(store_io)?;
                    out.write_all(b"\n").map_err(store_io)?;
                    written += (k.len() + v.len() + 2) as u64;
                }
            }
            Value::List(_) => {
                for el in self.list_iter()? {
                    let el = el?;
                    out.write_all(&el).map_err(store_io)?;
                    out.write_all(b"\n").map_err(store_io)?;
                    written += (el.len() + 1) as u64;
                }
            }
            other => {
                let s = other.summary();
                out.write_all(s.as_bytes()).map_err(store_io)?;
                written += s.len() as u64;
            }
        }
        Ok(written)
    }
}
