//! [`WriteBatch`]: atomic multi-key commits.
//!
//! A batch collects puts, compound map edits, and branch deletions across
//! any number of `(key, branch)` pairs, then commits them in one step:
//!
//! 1. every touched head stripe is locked in **stripe-index order**
//!    (deduplicated), the same deadlock-free discipline `merge` uses for
//!    its two stripes — so concurrent batches and merges can never wait on
//!    each other in a cycle;
//! 2. all new FNodes are built against the locked heads and staged;
//! 3. the staged chunks land in the store through a **single
//!    [`ChunkStore::put_batch`]** round-trip (one lock acquisition per
//!    shard, at most one fsync on a `FileStore`);
//! 4. every head is swung inside **one** ref-table write section — or, if
//!    any step failed, none are.
//!
//! Readers that look at multiple heads through [`ForkBase::heads`] (one
//! consistent read of the ref table) therefore observe either all of a
//! batch's updates or none of them: no torn multi-key states. The
//! already-written FNode chunks of a failed batch are unreferenced and
//! reclaimed by the next [`crate::gc::collect`].

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use forkbase_postree::{MapEdit, PosBlob, PosMap};
use forkbase_store::ChunkStore;
use forkbase_types::Value;
use parking_lot::MutexGuard;

use super::{expect_map, CommitResult, ForkBase, PutOptions};
use crate::error::{DbError, DbResult};
use crate::fnode::{self, FNode, Uid};
use std::sync::atomic::Ordering;

/// One staged operation of a [`WriteBatch`].
///
/// Options are staged behind an [`Arc`] interned per batch (see
/// [`WriteBatch::intern_opts`]): staging an op costs one refcount bump, not
/// three `String` clones, which is what made a 16-key MemStore batch lose
/// to sequential puts before.
enum BatchOp {
    /// Commit a value as the new head of `(key, opts.branch)`.
    Put {
        key: String,
        value: Value,
        opts: Arc<PutOptions>,
    },
    /// Chunk `content` into a blob value at commit time, then commit it.
    PutBlob {
        key: String,
        content: Bytes,
        opts: Arc<PutOptions>,
    },
    /// Apply map edits to the head value of `(key, opts.branch)`.
    MapEdits {
        key: String,
        edits: Vec<MapEdit>,
        opts: Arc<PutOptions>,
    },
    /// Delete a branch ref (versions remain, like `delete_branch`).
    DeleteBranch { key: String, branch: String },
}

impl BatchOp {
    fn key_branch(&self) -> (&str, &str) {
        match self {
            BatchOp::Put { key, opts, .. }
            | BatchOp::PutBlob { key, opts, .. }
            | BatchOp::MapEdits { key, opts, .. } => (key, &opts.branch),
            BatchOp::DeleteBranch { key, branch } => (key, branch),
        }
    }
}

/// Per-operation outcome of a committed [`WriteBatch`], in batch order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOutcome {
    /// A put/map-edit landed this commit.
    Committed(CommitResult),
    /// A branch ref was removed.
    Deleted {
        /// The key whose branch was deleted.
        key: String,
        /// The deleted branch.
        branch: String,
    },
}

impl BatchOutcome {
    /// The commit result, if this outcome was a commit.
    pub fn commit(&self) -> Option<&CommitResult> {
        match self {
            BatchOutcome::Committed(c) => Some(c),
            BatchOutcome::Deleted { .. } => None,
        }
    }
}

/// A collection of writes across many keys, committed atomically.
///
/// Build with [`ForkBase::write_batch`], stage operations, then
/// [`WriteBatch::commit`]. Operations on the **same** `(key, branch)`
/// chain within the batch: a later put's base is the earlier put's
/// freshly created version.
///
/// ```
/// use forkbase::{ForkBase, PutOptions};
/// use forkbase_store::MemStore;
/// use forkbase_types::Value;
///
/// let db = ForkBase::new(MemStore::new());
/// let mut batch = db.write_batch();
/// batch
///     .put("account/alice", Value::Int(90), &PutOptions::default())
///     .put("account/bob", Value::Int(110), &PutOptions::default());
/// let outcomes = batch.commit().unwrap();
/// assert_eq!(outcomes.len(), 2);
/// // Both heads moved together: a concurrent reader using `db.heads`
/// // sees either neither commit or both, never a torn transfer.
/// assert_eq!(
///     db.heads(&[("account/alice", "master"), ("account/bob", "master")])
///         .unwrap()
///         .len(),
///     2
/// );
/// ```
pub struct WriteBatch<'db, S> {
    db: &'db ForkBase<S>,
    ops: Vec<BatchOp>,
    /// Distinct option sets staged so far, most recent last. Almost every
    /// batch uses one (or very few) option sets, so staging an op is a
    /// short scan plus an `Arc` clone instead of cloning three `String`s.
    opts_pool: Vec<Arc<PutOptions>>,
}

/// How many recent distinct option sets [`WriteBatch::intern_opts`]
/// compares against before giving up and allocating a fresh `Arc`. Keeps
/// staging O(1) even for adversarial batches where every op carries
/// different options.
const OPTS_POOL_SCAN: usize = 8;

/// A fast, non-cryptographic string hasher (FxHash-style multiply-xor)
/// for the per-op pair index. SipHash (the `HashMap` default) costs more
/// than the lookup it guards on short keys; nothing here is
/// attacker-controlled state that outlives the batch.
#[derive(Default)]
struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

impl<S: ChunkStore> ForkBase<S> {
    /// Start collecting an atomic multi-key write batch.
    pub fn write_batch(&self) -> WriteBatch<'_, S> {
        WriteBatch {
            db: self,
            ops: Vec::new(),
            opts_pool: Vec::new(),
        }
    }
}

/// Intern `opts` into `pool` behind an `Arc`: ops staged with the same
/// options share one allocation instead of each cloning the strings.
/// Shared by [`WriteBatch`] and [`crate::cluster::ClusterWriteBatch`].
pub(crate) fn intern_opts(pool: &mut Vec<Arc<PutOptions>>, opts: &PutOptions) -> Arc<PutOptions> {
    if let Some(hit) = pool
        .iter()
        .rev()
        .take(OPTS_POOL_SCAN)
        .find(|o| ***o == *opts)
    {
        return Arc::clone(hit);
    }
    let interned = Arc::new(opts.clone());
    pool.push(Arc::clone(&interned));
    interned
}

impl<'db, S: ChunkStore> WriteBatch<'db, S> {
    /// See [`intern_opts`].
    fn intern_opts(&mut self, opts: &PutOptions) -> Arc<PutOptions> {
        intern_opts(&mut self.opts_pool, opts)
    }

    /// Stage a `Put` of `value` on `(key, opts.branch)`.
    pub fn put(&mut self, key: impl Into<String>, value: Value, opts: &PutOptions) -> &mut Self {
        let opts = self.intern_opts(opts);
        self.ops.push(BatchOp::Put {
            key: key.into(),
            value,
            opts,
        });
        self
    }

    /// Stage a blob commit: `content` is chunked at commit time (under the
    /// GC gate, like [`ForkBase::put_blob`]).
    pub fn put_blob(
        &mut self,
        key: impl Into<String>,
        content: Bytes,
        opts: &PutOptions,
    ) -> &mut Self {
        let opts = self.intern_opts(opts);
        self.ops.push(BatchOp::PutBlob {
            key: key.into(),
            content,
            opts,
        });
        self
    }

    /// Stage a compound map edit against the head of `(key, opts.branch)`
    /// (read head value → apply edits → commit), like
    /// [`ForkBase::put_map_edits`].
    pub fn map_edits(
        &mut self,
        key: impl Into<String>,
        edits: Vec<MapEdit>,
        opts: &PutOptions,
    ) -> &mut Self {
        let opts = self.intern_opts(opts);
        self.ops.push(BatchOp::MapEdits {
            key: key.into(),
            edits,
            opts,
        });
        self
    }

    /// Stage a branch deletion.
    pub fn delete_branch(
        &mut self,
        key: impl Into<String>,
        branch: impl Into<String>,
    ) -> &mut Self {
        self.ops.push(BatchOp::DeleteBranch {
            key: key.into(),
            branch: branch.into(),
        });
        self
    }

    /// Number of staged operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch has no staged operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Commit every staged operation atomically; returns per-operation
    /// outcomes in batch order.
    ///
    /// All touched head stripes are acquired in index order, all new
    /// FNodes are staged through one [`ChunkStore::put_batch`], and every
    /// head swings inside a single ref-table write section — or none do,
    /// if any operation fails. See the module docs for the protocol.
    pub fn commit(self) -> DbResult<Vec<BatchOutcome>> {
        let db = self.db;
        let mut ops = self.ops;
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        // Validate names before touching any lock.
        for op in &ops {
            let (key, branch) = op.key_branch();
            ForkBase::<S>::validate_name("key", key)?;
            ForkBase::<S>::validate_name("branch", branch)?;
        }

        let _gc = db.gc_gate.read();

        // Chunk blob contents BEFORE any head stripe is taken: chunking is
        // content-addressed and independent of heads, and a large blob
        // would otherwise stall every writer sharing a stripe with this
        // batch for the whole chunking run (the non-batch `put_blob` makes
        // the same choice). Must happen under the GC gate, so the freshly
        // written trees cannot be swept before the heads swing.
        for op in &mut ops {
            if let BatchOp::PutBlob { key, content, opts } = op {
                let blob = PosBlob::new(&db.store, db.cfg);
                let value = Value::Blob(blob.write_bytes(std::mem::take(content))?);
                *op = BatchOp::Put {
                    key: std::mem::take(key),
                    value,
                    opts: Arc::clone(opts),
                };
            }
        }

        // Detach map-edit lists before the ops are (immutably) borrowed
        // for the rest of the commit: `PosMap::apply` consumes its edits,
        // and cloning a large edit list at commit time would reintroduce
        // exactly the per-op copying this path avoids. Only allocated when
        // a map-edit op exists, so the common all-puts batch skips it.
        let mut edit_lists: Vec<Option<Vec<MapEdit>>> = Vec::new();
        if ops.iter().any(|op| matches!(op, BatchOp::MapEdits { .. })) {
            edit_lists = ops
                .iter_mut()
                .map(|op| match op {
                    BatchOp::MapEdits { edits, .. } => Some(std::mem::take(edits)),
                    _ => None,
                })
                .collect();
        }

        // Index the distinct (key, branch) pairs once (cheap FxHash — this
        // runs per op), so the per-op work below is a vector index instead
        // of a repeated lookup. `distinct` borrows straight from the ops;
        // no owned pair strings exist anywhere in the commit path — the op
        // loop encodes versions from borrowed parts and the final
        // ref-table write allocates only for genuinely new keys/branches.
        let (distinct, op_pair): (Vec<(&str, &str)>, Vec<usize>) = {
            let mut pair_index: HashMap<(&str, &str), usize, FxBuildHasher> =
                HashMap::with_capacity_and_hasher(ops.len(), FxBuildHasher::default());
            let mut distinct: Vec<(&str, &str)> = Vec::with_capacity(ops.len());
            let op_pair: Vec<usize> = ops
                .iter()
                .map(|op| {
                    let pair = op.key_branch();
                    *pair_index.entry(pair).or_insert_with(|| {
                        distinct.push(pair);
                        distinct.len() - 1
                    })
                })
                .collect();
            (distinct, op_pair)
        };

        // Lock every touched stripe in index order (deduplicated): the
        // same total order merge uses, so no lock cycle can form.
        let mut stripes: Vec<usize> = distinct
            .iter()
            .map(|(key, branch)| ForkBase::<S>::head_stripe(key, branch))
            .collect();
        stripes.sort_unstable();
        stripes.dedup();
        let _guards: Vec<MutexGuard<'_, ()>> =
            stripes.iter().map(|&i| db.head_locks[i].lock()).collect();

        // One consistent read of the current heads (the stripes are held,
        // so these cannot move under the batch).
        let (mut heads, key_existed): (Vec<Option<Uid>>, Vec<bool>) = {
            let branches = db.branches.read();
            distinct
                .iter()
                .map(|(key, branch)| {
                    let kb = branches.get(*key);
                    (kb.and_then(|m| m.get(*branch)).copied(), kb.is_some())
                })
                .unzip()
        };

        // Build every new version against the locked heads. The ops are
        // only borrowed: FNode encodings are produced straight from
        // borrowed parts ([`fnode::encode_parts_with_uid`]) — no owned
        // `FNode` is materialized and no key/author/message string is
        // cloned per op. `heads` tracks in-batch chaining: a later op on
        // the same (key, branch) bases on the earlier op's version; `None`
        // marks a (possibly in-batch) deleted or absent branch.
        let mut keys_created: Vec<usize> = Vec::new(); // pair indices of new keys put to
        let mut staged_chunks: Vec<(Uid, Bytes)> = Vec::with_capacity(ops.len());
        let mut outcomes: Vec<BatchOutcome> = Vec::with_capacity(ops.len());
        // Per-pair value of the latest in-batch commit: later map-edit ops
        // on the same branch must read the staged head's value from here —
        // its FNode chunk is not in the store until the put_batch below.
        // Only tracked for pairs some map-edit op actually targets, so the
        // common all-puts batch never clones a value.
        let mut staged_values: Vec<Option<Value>> = vec![None; distinct.len()];
        let mut needs_value: Vec<bool> = vec![false; distinct.len()];
        for (op, &p) in ops.iter().zip(&op_pair) {
            if matches!(op, BatchOp::MapEdits { .. }) {
                needs_value[p] = true;
            }
        }

        // Classify a missing head the way `delete_branch` does: missing
        // key vs missing branch, where a key counts as present if an
        // earlier batch op created it.
        let missing_head_err =
            |created: &[usize], pair: usize, key: &str, branch: &str| -> DbError {
                if !key_existed[pair] && !created.iter().any(|&p| distinct[p].0 == key) {
                    DbError::NoSuchKey(key.to_string())
                } else {
                    DbError::NoSuchBranch {
                        key: key.to_string(),
                        branch: branch.to_string(),
                    }
                }
            };

        for ((op_idx, op), &pair) in ops.iter().enumerate().zip(&op_pair) {
            match op {
                BatchOp::DeleteBranch { key, branch } => {
                    if heads[pair].is_none() {
                        return Err(missing_head_err(&keys_created, pair, key, branch));
                    }
                    heads[pair] = None;
                    staged_values[pair] = None;
                    outcomes.push(BatchOutcome::Deleted {
                        key: key.clone(),
                        branch: branch.clone(),
                    });
                }
                BatchOp::Put { key, value, opts } => {
                    let (uid, branch) =
                        commit_one(db, &mut staged_chunks, key, value, heads[pair], opts);
                    if needs_value[pair] {
                        staged_values[pair] = Some(value.clone());
                    }
                    heads[pair] = Some(uid);
                    if !key_existed[pair] {
                        keys_created.push(pair);
                    }
                    outcomes.push(BatchOutcome::Committed(CommitResult { uid, branch }));
                }
                BatchOp::PutBlob { .. } => {
                    unreachable!("blob ops were rewritten to puts before locking")
                }
                BatchOp::MapEdits { key, opts, .. } => {
                    if heads[pair].is_none() {
                        return Err(missing_head_err(&keys_created, pair, key, &opts.branch));
                    }
                    // Base value: the in-batch staged head if one exists
                    // (its FNode is not in the store yet), else the stored
                    // head's.
                    let base_value = match &staged_values[pair] {
                        Some(v) => v.clone(),
                        None => FNode::load(&db.store, &heads[pair].expect("checked above"))?.value,
                    };
                    let tree = expect_map(&base_value)?;
                    let edits = edit_lists[op_idx].take().expect("detached in pre-pass");
                    let updated = PosMap::open(&db.store, db.cfg.node, tree).apply(edits)?;
                    let value = match base_value {
                        Value::Set(_) => Value::Set(updated.tree()),
                        _ => Value::Map(updated.tree()),
                    };
                    let (uid, branch) =
                        commit_one(db, &mut staged_chunks, key, &value, heads[pair], opts);
                    staged_values[pair] = Some(value);
                    heads[pair] = Some(uid);
                    outcomes.push(BatchOutcome::Committed(CommitResult { uid, branch }));
                }
            }
        }

        // One store round-trip for every new FNode (value trees were
        // batched by their own builders above).
        db.store.put_batch(staged_chunks)?;

        // The commit point: swing every head (or drop every deleted ref)
        // inside a single write section. A reader holding the ref table —
        // `heads`, `dump_refs` — sees all of these updates or none.
        // Steady-state head swings mutate in place; owned strings are
        // allocated only for keys/branches that did not exist before.
        let mut branches = db.branches.write();
        for (&(key, branch), head) in distinct.iter().zip(&heads) {
            let key_emptied = match (head, branches.get_mut(key)) {
                (Some(uid), Some(kb)) => {
                    if let Some(slot) = kb.get_mut(branch) {
                        *slot = *uid;
                    } else {
                        kb.insert(branch.to_string(), *uid);
                    }
                    false
                }
                (Some(uid), None) => {
                    branches.insert(
                        key.to_string(),
                        BTreeMap::from([(branch.to_string(), *uid)]),
                    );
                    false
                }
                (None, Some(kb)) => {
                    kb.remove(branch);
                    kb.is_empty()
                }
                (None, None) => false,
            };
            // Same rule as `delete_branch`: a key with no branches left
            // ceases to exist, so `list_keys` never reports phantom names
            // after branch-heavy churn (e.g. the fork-sandbox reaper).
            if key_emptied {
                branches.remove(key);
            }
        }
        Ok(outcomes)
    }
}

/// Encode one commit version against `head` straight from borrowed parts
/// — no owned `FNode`, no string clones — stage its chunk, and return the
/// uid plus the target branch for the outcome. Byte-identical to what
/// `FNode::encode_with_uid` would produce (pinned by
/// `fnode::tests::borrowed_encoding_is_byte_identical`).
fn commit_one<S: ChunkStore>(
    db: &ForkBase<S>,
    staged_chunks: &mut Vec<(Uid, Bytes)>,
    key: &str,
    value: &Value,
    head: Option<Uid>,
    opts: &PutOptions,
) -> (Uid, String) {
    let base;
    let bases: &[Uid] = match head {
        Some(uid) => {
            base = [uid];
            &base
        }
        None => &[],
    };
    let (uid, bytes) = fnode::encode_parts_with_uid(
        key,
        value,
        bases,
        &opts.author,
        &opts.message,
        db.clock.fetch_add(1, Ordering::Relaxed),
    );
    staged_chunks.push((uid, Bytes::from(bytes)));
    (uid, opts.branch.clone())
}
